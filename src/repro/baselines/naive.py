"""Brute-force full disjunction: the correctness oracle.

The full disjunction is, by Definition 2.1, exactly the set of *maximal* JCC
tuple sets.  This module materialises every JCC tuple set by breadth-first
growth from singletons and keeps the maximal ones.  The cost is exponential in
the number of relations, which is fine for the small instances used in tests
(and is precisely why the paper's algorithm exists).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.relational.database import Database
from repro.core.approx_join import ApproximateJoinFunction
from repro.core.tupleset import TupleSet


def all_jcc_tuple_sets(database: Database) -> List[TupleSet]:
    """Every non-empty JCC tuple set of the database (exponential!)."""
    all_tuples = list(database.tuples())
    seen: Set[TupleSet] = set()
    frontier: List[TupleSet] = []
    for t in all_tuples:
        singleton = TupleSet.singleton(t)
        seen.add(singleton)
        frontier.append(singleton)
    while frontier:
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for t in all_tuples:
                if t in current:
                    continue
                if current.can_absorb(t):
                    grown = current.with_tuple(t)
                    if grown not in seen:
                        seen.add(grown)
                        next_frontier.append(grown)
        frontier = next_frontier
    return sorted(seen, key=lambda ts: ts.sort_key())


def _keep_maximal(tuple_sets: List[TupleSet]) -> List[TupleSet]:
    maximal: List[TupleSet] = []
    for candidate in tuple_sets:
        if any(candidate != other and candidate.issubset(other) for other in tuple_sets):
            continue
        maximal.append(candidate)
    return maximal


def naive_full_disjunction(database: Database) -> List[TupleSet]:
    """``FD(R)`` by brute force: all JCC tuple sets, keeping only the maximal ones."""
    return _keep_maximal(all_jcc_tuple_sets(database))


def all_approx_tuple_sets(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
) -> List[TupleSet]:
    """Every non-empty connected tuple set with ``A(T) ≥ τ`` (exponential!).

    Acceptability of ``A`` makes breadth-first growth complete: every
    qualifying set can be reached through qualifying subsets.
    """
    all_tuples = list(database.tuples())
    seen: Set[TupleSet] = set()
    frontier: List[TupleSet] = []
    for t in all_tuples:
        singleton = TupleSet.singleton(t)
        if join_function(singleton) >= threshold:
            seen.add(singleton)
            frontier.append(singleton)
    while frontier:
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for t in all_tuples:
                if t in current or t.relation_name in current.relations:
                    continue
                grown = current.with_tuple(t)
                if grown in seen:
                    continue
                if grown.is_connected and join_function(grown) >= threshold:
                    seen.add(grown)
                    next_frontier.append(grown)
        frontier = next_frontier
    return sorted(seen, key=lambda ts: ts.sort_key())


def naive_approx_full_disjunction(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
) -> List[TupleSet]:
    """``AFD(R, A, τ)`` by brute force (the approximate correctness oracle)."""
    return _keep_maximal(all_approx_tuple_sets(database, join_function, threshold))
