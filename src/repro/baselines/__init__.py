"""Baseline algorithms the paper compares against, plus a correctness oracle.

* :mod:`repro.baselines.naive` — brute-force enumeration of all maximal JCC
  tuple sets; exponential, used as the ground-truth oracle in tests.
* :mod:`repro.baselines.batch` — a batch, polynomial-total-time algorithm in
  the spirit of Kanza & Sagiv [3]: it produces no output until the whole full
  disjunction has been computed and recomputes every result once per member
  tuple (see DESIGN.md §4 for the substitution rationale).
* :mod:`repro.baselines.outerjoin` — the outerjoin-sequence approach of
  Rajaraman & Ullman [2], applicable to γ-acyclic schemas only.
* :mod:`repro.baselines.acyclicity` — α- and γ-acyclicity tests for relation
  schemas, used to decide when the outerjoin baseline is applicable.
"""

from repro.baselines.naive import naive_full_disjunction, all_jcc_tuple_sets
from repro.baselines.batch import BatchFD, batch_full_disjunction
from repro.baselines.outerjoin import (
    exists_correct_outerjoin_order,
    outerjoin_sequence,
)
from repro.baselines.acyclicity import is_alpha_acyclic, is_gamma_acyclic, schema_hypergraph

__all__ = [
    "naive_full_disjunction",
    "all_jcc_tuple_sets",
    "BatchFD",
    "batch_full_disjunction",
    "outerjoin_sequence",
    "exists_correct_outerjoin_order",
    "is_alpha_acyclic",
    "is_gamma_acyclic",
    "schema_hypergraph",
]
