"""The outerjoin-sequence baseline of Rajaraman & Ullman [2].

Reference [2] computes the full disjunction of a *γ-acyclic* set of relations
by a sequence of binary full outerjoins (followed by removal of subsumed
rows).  The approach breaks down outside the γ-acyclic class — no outerjoin
order produces the full disjunction — which is exactly why the paper's
algorithm, applicable to arbitrary connected relations, is needed.

To compare against ``IncrementalFD`` at the tuple-set level, the outerjoin
here is computed over *provenance-carrying rows*: every intermediate row
remembers the set of source tuples it was assembled from, so the final result
is a set of tuple sets directly comparable with ``FD(R)``.

Two entry points:

* :func:`outerjoin_sequence` — evaluate the outerjoin sequence for a given
  relation order and return the resulting maximal tuple sets;
* :func:`exists_correct_outerjoin_order` — search all relation orders for one
  whose outerjoin sequence equals a reference result (used by experiment E9 to
  show that some order works on γ-acyclic schemas and none works on a cyclic
  one).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Set

from repro.relational.database import Database
from repro.relational.nulls import NULL, is_null
from repro.core.tupleset import TupleSet


def _padded_value(tuple_set: TupleSet, attribute: str) -> object:
    """The value of ``attribute`` in the padded row of ``tuple_set`` (null if absent)."""
    if attribute in tuple_set.attributes:
        return tuple_set.attribute_value(attribute)
    return NULL


def _combines(tuple_set: TupleSet, accumulated_attributes: Set[str], candidate) -> bool:
    """Outerjoin match condition between a padded row and a new tuple.

    The natural-join predicate over the attributes shared by the accumulated
    schema and the candidate's schema: both sides non-null and equal.  Nulls
    never match, as in the paper (and in SQL).
    """
    shared = accumulated_attributes & set(candidate.schema.attribute_set)
    if not shared:
        return False
    for attribute in shared:
        mine = _padded_value(tuple_set, attribute)
        theirs = candidate[attribute]
        if is_null(mine) or is_null(theirs) or mine != theirs:
            return False
    return True


def _remove_subsumed(tuple_sets: Iterable[TupleSet]) -> List[TupleSet]:
    unique: List[TupleSet] = []
    seen = set()
    for tuple_set in tuple_sets:
        if tuple_set not in seen and len(tuple_set) > 0:
            seen.add(tuple_set)
            unique.append(tuple_set)
    maximal: List[TupleSet] = []
    for candidate in unique:
        if any(candidate != other and candidate.issubset(other) for other in unique):
            continue
        maximal.append(candidate)
    return maximal


def outerjoin_sequence(
    database: Database,
    order: Optional[Sequence[str]] = None,
) -> List[TupleSet]:
    """Evaluate ``(((R_{o1} ⟗ R_{o2}) ⟗ R_{o3}) ⟗ …)`` and return maximal tuple sets.

    ``order`` lists relation names; it defaults to database order.  The
    result is cleaned of subsumed tuple sets, as [2] prescribes, so on
    γ-acyclic schemas (and a suitable order) it equals ``FD(R)``.
    """
    if order is None:
        order = database.relation_names
    if set(order) != set(database.relation_names) or len(order) != len(database):
        raise ValueError(
            f"order {list(order)!r} is not a permutation of the database relations"
        )

    first_relation = database.relation(order[0])
    state: List[TupleSet] = [TupleSet.singleton(t) for t in first_relation]
    accumulated_attributes: Set[str] = set(first_relation.schema.attribute_set)

    for name in order[1:]:
        relation = database.relation(name)
        next_state: List[TupleSet] = []
        matched_right = set()
        for tuple_set in state:
            matched = False
            for candidate in relation:
                if _combines(tuple_set, accumulated_attributes, candidate):
                    matched = True
                    matched_right.add(candidate)
                    next_state.append(tuple_set.with_tuple(candidate))
            if not matched:
                next_state.append(tuple_set)
        for candidate in relation:
            if candidate not in matched_right:
                next_state.append(TupleSet.singleton(candidate))
        state = next_state
        accumulated_attributes |= set(relation.schema.attribute_set)

    return _remove_subsumed(state)


def exists_correct_outerjoin_order(
    database: Database,
    reference: Iterable[TupleSet],
    max_orders: Optional[int] = None,
) -> Optional[List[str]]:
    """Search for an outerjoin order whose result equals ``reference``.

    Returns the first matching order, or ``None`` when no order works (which
    is what happens beyond the γ-acyclic class).  ``max_orders`` caps the
    number of permutations tried, for large databases.
    """
    target = frozenset(reference)
    tried = 0
    for order in itertools.permutations(database.relation_names):
        if max_orders is not None and tried >= max_orders:
            return None
        tried += 1
        produced = frozenset(outerjoin_sequence(database, list(order)))
        if produced == target:
            return list(order)
    return None
