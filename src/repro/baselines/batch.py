"""A batch baseline in the spirit of Kanza & Sagiv's algorithm [3].

The paper compares ``IncrementalFD`` against the PODS 2003 algorithm of
Kanza and Sagiv, whose two relevant properties are:

1. it is a *batch* algorithm — "does not return any tuples until all
   processing is complete (and cannot easily be adapted to do so)";
2. its total runtime is a higher-degree polynomial, ``O(s²·n⁵·f²)`` against
   ``O(s·n³·f²)`` for the driver built on ``IncrementalFD``, largely because
   every result is recomputed once per member tuple and duplicate elimination
   scans the accumulated result set.

The original pseudocode is not reproduced in the paper, so this module
implements a behavioural stand-in with exactly those two properties (see
DESIGN.md §4): it runs a full pass per relation *without* the early
"contains a tuple of an earlier relation" skip, buffers everything, and
eliminates duplicates at the end with a quadratic subsumption scan.  The
result set is identical to ``FD(R)``; only the cost profile differs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.relational.database import Database
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.tupleset import TupleSet


@dataclass
class BatchStatistics:
    """Work counters of one :class:`BatchFD` run."""

    raw_results: int = 0
    duplicate_results: int = 0
    final_results: int = 0
    dedup_comparisons: int = 0
    per_pass: List[FDStatistics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "raw_results": self.raw_results,
            "duplicate_results": self.duplicate_results,
            "final_results": self.final_results,
            "dedup_comparisons": self.dedup_comparisons,
            "elapsed_seconds": self.elapsed_seconds,
        }


class BatchFD:
    """Batch computation of ``FD(R)``: nothing is delivered before everything is done."""

    def __init__(self, database: Database, use_index: bool = False):
        self._database = database
        self._use_index = use_index
        self.statistics = BatchStatistics()

    def compute(self) -> List[TupleSet]:
        """Compute the whole full disjunction and only then return it."""
        started = time.perf_counter()
        buffered: List[TupleSet] = []
        for relation in self._database.relations:
            pass_statistics = FDStatistics()
            # Every pass is run to completion; results are buffered, never
            # streamed, and no pass skips results found by earlier passes.
            for result in incremental_fd(
                self._database,
                relation.name,
                use_index=self._use_index,
                statistics=pass_statistics,
            ):
                buffered.append(result)
            self.statistics.per_pass.append(pass_statistics)
        self.statistics.raw_results = len(buffered)

        # Quadratic duplicate elimination over the buffered results: the
        # behaviour the paper attributes to the batch algorithm.
        unique: List[TupleSet] = []
        for candidate in buffered:
            duplicate = False
            for kept in unique:
                self.statistics.dedup_comparisons += 1
                if candidate == kept:
                    duplicate = True
                    break
            if duplicate:
                self.statistics.duplicate_results += 1
            else:
                unique.append(candidate)
        self.statistics.final_results = len(unique)
        self.statistics.elapsed_seconds = time.perf_counter() - started
        return unique


def batch_full_disjunction(
    database: Database,
    use_index: bool = False,
    statistics: Optional[BatchStatistics] = None,
) -> List[TupleSet]:
    """Convenience wrapper around :class:`BatchFD`."""
    algorithm = BatchFD(database, use_index=use_index)
    results = algorithm.compute()
    if statistics is not None:
        statistics.raw_results = algorithm.statistics.raw_results
        statistics.duplicate_results = algorithm.statistics.duplicate_results
        statistics.final_results = algorithm.statistics.final_results
        statistics.dedup_comparisons = algorithm.statistics.dedup_comparisons
        statistics.elapsed_seconds = algorithm.statistics.elapsed_seconds
        statistics.per_pass = algorithm.statistics.per_pass
    return results
