"""α- and γ-acyclicity of relation schemas.

Rajaraman and Ullman [2] showed that the full disjunction of a set of
relations can be computed by a sequence of binary full outerjoins exactly when
the schema hypergraph is **γ-acyclic** (in Fagin's hierarchy of acyclicity
degrees).  This module decides that property so the outerjoin baseline knows
when it is applicable, and also provides the classic GYO test for the weaker
α-acyclicity, which is handy for describing generated workloads.

The γ-acyclicity test enumerates candidate γ-cycles directly from Fagin's
definition, which is exponential in the number of relations; the databases in
this reproduction have a handful of relations, so the brute force is entirely
adequate and trivially correct.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Sequence, Union

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: A hypergraph: edge name -> set of attributes.
Hypergraph = Dict[str, FrozenSet[str]]


def schema_hypergraph(source: Union[Database, Iterable[Relation], Iterable[Schema]]) -> Hypergraph:
    """Build the schema hypergraph of a database (or of schemas/relations)."""
    hypergraph: Hypergraph = {}
    if isinstance(source, Database):
        items: Iterable = source.relations
    else:
        items = source
    for index, item in enumerate(items):
        if isinstance(item, Relation):
            hypergraph[item.name] = frozenset(item.schema.attribute_set)
        elif isinstance(item, Schema):
            hypergraph[f"R{index + 1}"] = frozenset(item.attribute_set)
        else:
            hypergraph[f"R{index + 1}"] = frozenset(item)
    return hypergraph


def is_alpha_acyclic(source) -> bool:
    """GYO reduction: repeatedly remove ears until nothing is left (α-acyclicity)."""
    hypergraph = dict(schema_hypergraph(source))
    edges: Dict[str, set] = {name: set(attributes) for name, attributes in hypergraph.items()}
    changed = True
    while changed and edges:
        changed = False
        # Rule 1: remove attributes that appear in exactly one edge.
        attribute_counts: Dict[str, int] = {}
        for attributes in edges.values():
            for attribute in attributes:
                attribute_counts[attribute] = attribute_counts.get(attribute, 0) + 1
        for name, attributes in edges.items():
            lonely = {a for a in attributes if attribute_counts[a] == 1}
            if lonely:
                attributes -= lonely
                changed = True
        # Rule 2: remove empty edges and edges contained in another edge.
        names = list(edges)
        for name in names:
            if name not in edges:
                continue
            attributes = edges[name]
            if not attributes:
                del edges[name]
                changed = True
                continue
            for other_name, other_attributes in edges.items():
                if other_name != name and attributes <= other_attributes:
                    del edges[name]
                    changed = True
                    break
    return not edges


def _gamma_cycle_exists(hypergraph: Hypergraph, length: int) -> bool:
    """Search for a γ-cycle using exactly ``length`` distinct edges."""
    names = list(hypergraph)
    for edge_sequence in itertools.permutations(names, length):
        edges: List[FrozenSet[str]] = [hypergraph[name] for name in edge_sequence]
        # Candidate attributes x_i ∈ S_i ∩ S_{i+1} (indices mod length).
        position_options: List[List[str]] = []
        feasible = True
        for index in range(length):
            nxt = (index + 1) % length
            shared = edges[index] & edges[nxt]
            if not shared:
                feasible = False
                break
            position_options.append(sorted(shared))
        if not feasible:
            continue
        for attributes in itertools.product(*position_options):
            if len(set(attributes)) != length:
                continue  # the x_i must be distinct
            # For 1 <= i <= length-1 (all but the last), x_i must belong to no
            # edge of the *cycle* other than S_i and S_{i+1}; the last
            # attribute x_m is unconstrained, which is what separates γ-cycles
            # from β-cycles.
            valid = True
            for index in range(length - 1):
                attribute = attributes[index]
                for other_index in range(length):
                    if other_index in (index, (index + 1) % length):
                        continue
                    if attribute in edges[other_index]:
                        valid = False
                        break
                if not valid:
                    break
            if valid:
                return True
    return False


def is_gamma_acyclic(source) -> bool:
    """Fagin's γ-acyclicity: no γ-cycle of any length ``m ≥ 3`` exists.

    A γ-cycle is a sequence ``(S_1, x_1, S_2, x_2, …, S_m, x_m, S_1)`` with
    ``m ≥ 3``, distinct edges ``S_i``, distinct attributes ``x_i`` where
    ``x_i ∈ S_i ∩ S_{i+1}`` and every ``x_i`` except the last belongs to no
    other edge.
    """
    hypergraph = schema_hypergraph(source)
    # Duplicate edges (same attribute set under different names) collapse: a
    # γ-cycle never needs two identical edges, so deduplicate for speed.
    unique: Hypergraph = {}
    seen = set()
    for name, attributes in hypergraph.items():
        if attributes not in seen:
            seen.add(attributes)
            unique[name] = attributes
    for length in range(3, len(unique) + 1):
        if _gamma_cycle_exists(unique, length):
            return False
    return True
