"""``ApproxIncrementalFD`` and ``ApproxGetNextResult`` (Figs. 5 and 6).

Given an *acceptable* and *efficiently computable* approximate join function
``A`` (see :mod:`repro.core.approx_join`) and a threshold ``τ``, the
``(A, τ)``-approximate full disjunction ``AFD(R, A, τ)`` (Definition 6.2)
contains the maximal tuple sets ``T`` with ``A(T) ≥ τ``.  The algorithms here
compute it in incremental polynomial time (Theorem 6.6), mirroring the exact
algorithms with three changes, marked ``*`` in the paper's figures:

* initialization only admits singletons ``{t}`` with ``A({t}) ≥ τ``;
* every ``JCC(·)`` test becomes ``A(·) ≥ τ``;
* Line 8 may yield *several* maximal candidate subsets per outside tuple
  (Example 6.3), supplied by ``A.candidate_extensions``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.relational.database import Database
from repro.relational.nulls import is_null
from repro.relational.operators import combined_schema, pad_tuple_set
from repro.core.approx_join import ApproximateJoinFunction
from repro.core.incremental import AnchorSpec, FDStatistics, resolve_anchor
from repro.core.store import CompleteStore, ListIncompletePool, record_store_statistics
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet


def approx_maximally_extend(
    tuple_set: TupleSet,
    join_function: ApproximateJoinFunction,
    threshold: float,
    scanner: TupleScanner,
    statistics: Optional[FDStatistics] = None,
) -> TupleSet:
    """Lines 2–6 of ``ApproxGetNextResult``: extend while ``A(T ∪ {t_g}) ≥ τ``.

    Because ``A`` is acceptable, any maximal set of ``AFD`` that contains the
    current set can be reached by such single-tuple steps, so the fixpoint is
    maximal (see the discussion after Definition 6.4).
    """
    current = tuple_set
    changed = True
    while changed:
        changed = False
        if statistics is not None:
            statistics.extension_passes += 1
        for candidate in scanner.scan():
            if candidate in current:
                continue
            if candidate.relation_name in current.relations:
                continue
            grown = current.with_tuple(candidate)
            if grown.is_connected and join_function(grown) >= threshold:
                current = grown
                changed = True
    return current


def approx_get_next_result(
    database: Database,
    anchor: str,
    join_function: ApproximateJoinFunction,
    threshold: float,
    incomplete: ListIncompletePool,
    complete: CompleteStore,
    scanner: Optional[TupleScanner] = None,
    statistics: Optional[FDStatistics] = None,
) -> TupleSet:
    """One call of ``ApproxGetNextResult`` (Fig. 6)."""
    if scanner is None:
        scanner = TupleScanner(database)

    # Line 1.
    result = incomplete.pop()

    # Lines 2-6 (starred): extend while the approximate join stays above τ.
    result = approx_maximally_extend(result, join_function, threshold, scanner, statistics)

    # Lines 7-18.
    for outside in scanner.scan():
        if outside in result:
            continue
        # Line 8 (starred): all maximal qualifying subsets containing t_b.
        candidates = join_function.candidate_extensions(result, outside, threshold)
        for candidate in candidates:
            if statistics is not None:
                statistics.candidates_generated += 1
            anchor_tuple = candidate.tuple_from(anchor)
            if anchor_tuple is None:
                if statistics is not None:
                    statistics.candidates_without_anchor += 1
                continue
            if complete.contains_superset(candidate, anchor=anchor_tuple):
                if statistics is not None:
                    statistics.candidates_subsumed += 1
                continue
            merged = False
            for waiting in incomplete.candidates(candidate):
                union = waiting.union(candidate)
                # Line 14 (starred): merge when A(S ∪ T') ≥ τ.
                if union.is_connected and join_function(union) >= threshold:
                    incomplete.replace(waiting, union)
                    merged = True
                    if statistics is not None:
                        statistics.candidates_merged += 1
                    break
            if merged:
                continue
            incomplete.add(candidate)
            if statistics is not None:
                statistics.candidates_inserted += 1

    return result


def approx_incremental_fd(
    database: Database,
    anchor: AnchorSpec,
    join_function: ApproximateJoinFunction,
    threshold: float,
    use_index: bool = False,
    scanner: Optional[TupleScanner] = None,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[TupleSet]:
    """``ApproxIncrementalFD(R, i, A, τ)`` (Fig. 5): generate ``AFD_i(R, A, τ)``.

    ``backend`` schedules each ``ApproxGetNextResult`` step through the
    execution layer (:mod:`repro.exec`); ``None`` is the serial reference.
    """
    if not (0.0 <= threshold <= 1.0):
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    anchor_name = resolve_anchor(database, anchor)
    if scanner is None:
        scanner = TupleScanner(database)
    catalog = database.catalog()
    if backend is None:
        next_result = approx_get_next_result
    else:
        from repro.exec import resolve_backend

        next_result = resolve_backend(backend).approx_next_result

    incomplete = ListIncompletePool(anchor_name, use_index=use_index)
    complete = CompleteStore(anchor_name, use_index=use_index)

    # Lines 1-4 (starred line 3): only singletons that themselves qualify.
    for t in database.relation(anchor_name):
        singleton = TupleSet.singleton(t, catalog=catalog)
        if join_function(singleton) >= threshold:
            incomplete.add(singleton)

    try:
        while incomplete:
            result = next_result(
                database,
                anchor_name,
                join_function,
                threshold,
                incomplete,
                complete,
                scanner,
                statistics,
            )
            complete.add(result)
            if statistics is not None:
                statistics.results += 1
                statistics.tuple_reads = scanner.tuple_reads
                statistics.scan_passes = scanner.passes
            yield result
    finally:
        # Record store counters on every exit, including abandonment.
        record_store_statistics(
            statistics, ("incomplete", incomplete), ("complete", complete)
        )


def approx_full_disjunction_sets(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[TupleSet]:
    """Generate every member of ``AFD(R, A, τ)`` exactly once (Corollary 6.7).

    The independent per-relation ``ApproxIncrementalFD`` passes are scheduled
    by ``backend`` (``None`` means the serial reference), exactly like the
    exact driver's singleton passes — the sharded backend fans them out to
    its process pool.
    """
    from repro.exec import resolve_backend

    backend = resolve_backend(backend)
    yield from backend.run_approx_passes(
        database,
        join_function,
        threshold,
        use_index=use_index,
        statistics=statistics,
    )


def approx_full_disjunction(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[TupleSet]:
    """Materialise ``AFD(R, A, τ)`` as a list of tuple sets."""
    return list(
        approx_full_disjunction_sets(
            database,
            join_function,
            threshold,
            use_index=use_index,
            statistics=statistics,
            backend=backend,
        )
    )


class ApproximateFullDisjunction:
    """High-level handle on the ``(A, τ)``-approximate full disjunction."""

    def __init__(
        self,
        database: Database,
        join_function: ApproximateJoinFunction,
        threshold: float,
        use_index: bool = False,
        backend=None,
    ):
        self._database = database
        self._join_function = join_function
        self._threshold = threshold
        self._use_index = use_index
        self._backend = backend
        self.statistics = FDStatistics()
        self._cached: Optional[List[TupleSet]] = None

    @property
    def threshold(self) -> float:
        return self._threshold

    def __iter__(self) -> Iterator[TupleSet]:
        return approx_full_disjunction_sets(
            self._database,
            self._join_function,
            self._threshold,
            use_index=self._use_index,
            backend=self._backend,
        )

    def compute(self) -> List[TupleSet]:
        """Compute and cache the full approximate result."""
        if self._cached is None:
            self.statistics = FDStatistics()
            self._cached = approx_full_disjunction(
                self._database,
                self._join_function,
                self._threshold,
                use_index=self._use_index,
                statistics=self.statistics,
                backend=self._backend,
            )
        return list(self._cached)

    def scores(self) -> Dict[TupleSet, float]:
        """The approximate-join value ``A(T)`` of every result."""
        return {tuple_set: self._join_function(tuple_set) for tuple_set in self.compute()}

    def padded_rows(self) -> List[Dict[str, object]]:
        """Render results as null-padded rows over the union schema."""
        schema = combined_schema(self._database.relations)
        return [pad_tuple_set(tuple_set, schema) for tuple_set in self.compute()]

    def pretty(self) -> str:
        """Render the approximate result with per-row ``A`` values."""
        schema = combined_schema(self._database.relations)
        header = ["tuple set", "A"] + list(schema.attributes)
        rows = []
        for tuple_set in sorted(self.compute(), key=lambda ts: ts.sort_key()):
            padded = pad_tuple_set(tuple_set, schema)
            labels = "{" + ", ".join(sorted(t.label for t in tuple_set)) + "}"
            rows.append(
                [labels, f"{self._join_function(tuple_set):.2f}"]
                + ["⊥" if is_null(padded[a]) else str(padded[a]) for a in schema.attributes]
            )
        widths = [len(h) for h in header]
        for row in rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        lines = [
            "  ".join(h.ljust(widths[idx]) for idx, h in enumerate(header)),
            "  ".join("-" * widths[idx] for idx in range(len(header))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
        return "\n".join(lines)
