"""Initialization strategies for ``Incomplete`` (Section 7, "Minimizing repeated work").

Computing the whole full disjunction runs ``IncrementalFD`` once per relation.
With the default initialization every result containing ``j`` tuples is
recomputed ``j`` times.  Section 7 proposes alternative initializations of
``Incomplete`` that reuse the results of previous passes; all of them must
respect the conditions of Remarks 4.3 and 4.5:

(i)   every initial tuple set is join consistent and connected;
(ii)  every tuple of ``R_i`` appears in some initial tuple set;
(iii) no two initial tuple sets are contained in the same member of ``FD_i``.

Three strategies are provided (the names follow the paper's enumeration):

``singletons``
    The default of Fig. 1: ``{t}`` for every ``t ∈ R_i``; every pass is
    independent and duplicates are suppressed by the "contains an earlier
    relation's tuple" test.

``previous-results``
    The paper's second option: seed pass ``i`` with the previously returned
    tuple sets that contain a tuple of ``R_i``, plus singletons for the tuples
    of ``R_i`` not covered by any previous result.  ``Complete`` is shared
    across passes and the scan loops skip the relations ``R_1,…,R_{i-1}``.

``reduced-previous``
    The paper's third option: take the previously returned tuple sets, drop
    their tuples of earlier relations, keep those that still contain a tuple
    of ``R_i``, extend them greedily using only tuples of later relations, add
    singletons for uncovered ``R_i`` tuples and remove initial sets contained
    in other initial sets.

With the two reuse strategies a produced result may fail to be maximal in the
full disjunction (its maximal extension goes through an earlier relation); the
driver therefore filters results that are contained in a previously printed
result, as prescribed by the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.relational.database import Database
from repro.relational.tuples import Tuple
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet

#: Names of the supported strategies, in the order the paper presents them.
STRATEGIES = ("singletons", "previous-results", "reduced-previous")


class RestrictedScanner:
    """A scanner view that skips a fixed set of relations.

    Used by the reuse strategies, whose scan loops only consider the relations
    ``R_i, …, R_n`` (the candidate and extension tuples of earlier relations
    can only lead to results already printed in earlier passes).
    """

    def __init__(self, inner: TupleScanner, skip_relations: Set[str]):
        self._inner = inner
        self._skip = set(skip_relations)

    def scan(self) -> Iterator[Tuple]:
        return self._inner.scan(skip_relations=self._skip)

    @property
    def tuple_reads(self) -> int:
        return self._inner.tuple_reads

    @property
    def passes(self) -> int:
        return self._inner.passes

    @property
    def database(self) -> Database:
        return self._inner.database

    def cost_summary(self) -> dict:
        return self._inner.cost_summary()


def singleton_sets(database: Database, anchor_name: str, catalog=None) -> List[TupleSet]:
    """The default initialization: ``{t}`` for every ``t ∈ R_i``."""
    return [
        TupleSet.singleton(t, catalog=catalog) for t in database.relation(anchor_name)
    ]


def covered_tuples(previous_results: Iterable[TupleSet], anchor_name: str) -> Set[Tuple]:
    """The tuples of ``R_i`` appearing in some previously returned tuple set."""
    covered: Set[Tuple] = set()
    for result in previous_results:
        member = result.tuple_from(anchor_name)
        if member is not None:
            covered.add(member)
    return covered


def previous_results_sets(
    database: Database,
    anchor_name: str,
    previous_results: Sequence[TupleSet],
    catalog=None,
) -> List[TupleSet]:
    """Second strategy: previous results with an ``R_i`` tuple + uncovered singletons."""
    initial: List[TupleSet] = [
        result for result in previous_results if result.contains_tuple_from(anchor_name)
    ]
    covered = covered_tuples(previous_results, anchor_name)
    for t in database.relation(anchor_name):
        if t not in covered:
            initial.append(TupleSet.singleton(t, catalog=catalog))
    return initial


def _greedy_extend(
    seed: TupleSet,
    database: Database,
    allowed_relations: Set[str],
) -> TupleSet:
    """Extend ``seed`` maximally using only tuples of ``allowed_relations``."""
    current = seed
    changed = True
    while changed:
        changed = False
        for relation in database:
            if relation.name not in allowed_relations:
                continue
            for t in relation:
                if t not in current and current.can_absorb(t):
                    current = current.with_tuple(t)
                    changed = True
    return current


def reduced_previous_sets(
    database: Database,
    anchor_name: str,
    previous_results: Sequence[TupleSet],
    catalog=None,
) -> List[TupleSet]:
    """Third strategy: reduce previous results to later relations and re-extend them."""
    anchor_index = database.index_of(anchor_name)
    earlier = {relation.name for relation in database.relations[:anchor_index]}
    later = {relation.name for relation in database.relations[anchor_index + 1:]}
    keep_relations = {relation.name for relation in database.relations[anchor_index:]}

    candidates: List[TupleSet] = []
    for result in previous_results:
        reduced = result.restrict_to_relations(keep_relations)
        if not reduced.contains_tuple_from(anchor_name):
            continue
        if len(reduced) == 0:
            continue
        if not reduced.is_jcc:
            # Dropping the earlier relations may disconnect the set; keep the
            # connected component of the anchor tuple, which is JCC.
            anchor_tuple = reduced.tuple_from(anchor_name)
            others = reduced.difference(TupleSet.singleton(anchor_tuple))
            reduced = others.maximal_jcc_subset_with(anchor_tuple)
        extended = _greedy_extend(reduced, database, later)
        candidates.append(extended)

    covered = covered_tuples(previous_results, anchor_name)
    for t in database.relation(anchor_name):
        if t not in covered:
            candidates.append(TupleSet.singleton(t, catalog=catalog))

    # Remove initial sets contained in another initial set (retains the O(f)
    # space bound, as the paper notes), and drop duplicates.
    unique: List[TupleSet] = []
    seen = set()
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        unique.append(candidate)
    kept: List[TupleSet] = []
    for idx, candidate in enumerate(unique):
        contained = any(
            idx != jdx and candidate.issubset(other) for jdx, other in enumerate(unique)
        )
        if not contained:
            kept.append(candidate)
    return kept


def initial_sets(
    strategy: str,
    database: Database,
    anchor_name: str,
    previous_results: Sequence[TupleSet],
    catalog=None,
) -> List[TupleSet]:
    """Dispatch to the initialization strategy named ``strategy``.

    ``catalog`` interns the produced seed sets so a run started from them
    stays on the bitset :class:`TupleSet` representation throughout.
    """
    if strategy == "singletons":
        return singleton_sets(database, anchor_name, catalog=catalog)
    if strategy == "previous-results":
        return previous_results_sets(database, anchor_name, previous_results, catalog=catalog)
    if strategy == "reduced-previous":
        return reduced_previous_sets(database, anchor_name, previous_results, catalog=catalog)
    raise ValueError(
        f"unknown initialization strategy {strategy!r}; expected one of {STRATEGIES}"
    )


def earlier_relations(database: Database, anchor_name: str) -> Set[str]:
    """The names of the relations preceding ``anchor_name`` in database order."""
    anchor_index = database.index_of(anchor_name)
    return {relation.name for relation in database.relations[:anchor_index]}
