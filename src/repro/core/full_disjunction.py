"""Computing the whole full disjunction ``FD(R)`` (Corollary 4.9).

``FD(R)`` is the union of ``FD_i(R)`` over every relation ``R_i``, so the
driver runs ``IncrementalFD`` once per relation.  Because a tuple set
containing ``j`` tuples belongs to ``j`` of the ``FD_i``, the driver
suppresses duplicates: with the default initialization a result of pass ``i``
is emitted only when it contains no tuple of ``R_1, …, R_{i-1}`` (exactly the
check the paper describes after Theorem 4.8); with the reuse strategies of
Section 7 a result is emitted only when it is not contained in a previously
emitted result.

The module exposes both a generator (:func:`full_disjunction_sets`) for
streaming consumption — the reason the algorithm exists — and a convenience
class (:class:`FullDisjunction`) that also renders results as padded rows, as
in Table 2 of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.relational.database import Database
from repro.relational.nulls import NULL, is_null
from repro.relational.operators import combined_schema, pad_tuple_set
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.core.incremental import (
    FDStatistics,
    get_next_result,
)
from repro.core.initialization import (
    STRATEGIES,
    RestrictedScanner,
    earlier_relations,
    initial_sets,
)
from repro.core.scanner import make_scanner
from repro.core.store import CompleteStore, ListIncompletePool, record_store_statistics
from repro.core.tupleset import TupleSet


def full_disjunction_sets(
    database: Database,
    use_index: bool = False,
    initialization: str = "singletons",
    block_size: Optional[int] = None,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[TupleSet]:
    """Generate every tuple set of ``FD(R)`` exactly once.

    Parameters
    ----------
    database:
        The relations ``R_1, …, R_n`` (in database order).
    use_index:
        Enable the Section 7 hash index on ``Complete``/``Incomplete``.
    initialization:
        One of :data:`repro.core.initialization.STRATEGIES`.
    block_size:
        When given, tuples are scanned block-at-a-time (Section 7
        "block-based execution"); results are identical.
    statistics:
        Optional counters accumulated across all passes.
    backend:
        The :class:`~repro.exec.base.ExecutionBackend` (or its name —
        ``"serial"``, ``"batched"``, ``"sharded"``) that schedules the work.
        All backends produce the same result set; ``None`` means serial.
    """
    from repro.exec import resolve_backend

    if initialization not in STRATEGIES:
        raise ValueError(
            f"unknown initialization strategy {initialization!r}; expected one of {STRATEGIES}"
        )
    backend = resolve_backend(backend)
    if initialization == "singletons":
        # Independent per-relation passes: the backend owns the schedule
        # (serial loop, batched probes, or a process-pool fan-out).
        yield from backend.run_singleton_passes(
            database, use_index=use_index, block_size=block_size, statistics=statistics
        )
    else:
        yield from _run_reusing_passes(
            database,
            use_index=use_index,
            initialization=initialization,
            block_size=block_size,
            statistics=statistics,
            backend=backend,
        )


def _run_reusing_passes(
    database: Database,
    use_index: bool,
    initialization: str,
    block_size: Optional[int],
    statistics: Optional[FDStatistics],
    backend=None,
) -> Iterator[TupleSet]:
    """The Section 7 reuse strategies: shared ``Complete``, restricted scans.

    The passes are *not* independent here (each seeds from the previous
    results and shares ``Complete``), so the pass loop stays sequential and
    only the per-step work is dispatched through the backend.
    """
    next_result = get_next_result if backend is None else backend.next_result
    produced: List[TupleSet] = []
    catalog = database.catalog()
    shared_complete = CompleteStore(anchor_relation=None, use_index=use_index)
    try:
        for index, relation in enumerate(database.relations):
            anchor_name = relation.name
            skip = earlier_relations(database, anchor_name)
            scanner = RestrictedScanner(make_scanner(database, block_size), skip)
            pass_statistics = FDStatistics() if statistics is not None else None

            incomplete = ListIncompletePool(anchor_name, use_index=use_index)
            for seed in initial_sets(
                initialization, database, anchor_name, produced, catalog=catalog
            ):
                incomplete.add(seed)

            try:
                while incomplete:
                    result = next_result(
                        database,
                        anchor_name,
                        incomplete,
                        shared_complete,
                        scanner,
                        pass_statistics,
                    )
                    anchor_tuple = result.tuple_from(anchor_name)
                    already_covered = shared_complete.contains_superset(
                        result, anchor=anchor_tuple
                    )
                    shared_complete.add(result)
                    if pass_statistics is not None:
                        pass_statistics.results += 1
                    if already_covered:
                        # Either the result was produced by an earlier pass
                        # verbatim, or its maximal extension (through an
                        # earlier relation) was.
                        continue
                    produced.append(result)
                    yield result
            finally:
                # Record pass counters on every exit, including abandonment.
                if statistics is not None and pass_statistics is not None:
                    pass_statistics.tuple_reads = scanner.tuple_reads
                    pass_statistics.scan_passes = scanner.passes
                    pass_statistics.block_reads = getattr(scanner, "block_reads", 0)
                    record_store_statistics(pass_statistics, ("incomplete", incomplete))
                    statistics.merge(pass_statistics)
    finally:
        # The shared Complete store is recorded once, on every exit.
        if statistics is not None:
            record_store_statistics(statistics, ("complete", shared_complete))


def full_disjunction(
    database: Database,
    use_index: bool = False,
    initialization: str = "singletons",
    block_size: Optional[int] = None,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[TupleSet]:
    """Materialise ``FD(R)`` as a list of tuple sets (see :func:`full_disjunction_sets`)."""
    return list(
        full_disjunction_sets(
            database,
            use_index=use_index,
            initialization=initialization,
            block_size=block_size,
            statistics=statistics,
            backend=backend,
        )
    )


def first_k(
    database: Database,
    k: int,
    use_index: bool = False,
    initialization: str = "singletons",
    block_size: Optional[int] = None,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[TupleSet]:
    """Return ``k`` (arbitrary) members of ``FD(R)``, stopping all work early.

    This is the operation Theorem 4.10 bounds by ``O(s²·n⁴·k²)``: the
    generator is simply abandoned after ``k`` results.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return []
    results: List[TupleSet] = []
    for result in full_disjunction_sets(
        database,
        use_index=use_index,
        initialization=initialization,
        block_size=block_size,
        statistics=statistics,
        backend=backend,
    ):
        results.append(result)
        if len(results) == k:
            break
    return results


class FullDisjunction:
    """High-level, reusable handle on the full disjunction of a database.

    Examples
    --------
    >>> from repro.workloads.tourist import tourist_database
    >>> fd = FullDisjunction(tourist_database())
    >>> len(fd.compute())
    6
    """

    def __init__(
        self,
        database: Database,
        use_index: bool = False,
        initialization: str = "singletons",
        block_size: Optional[int] = None,
        backend=None,
    ):
        self._database = database
        self._use_index = use_index
        self._initialization = initialization
        self._block_size = block_size
        self._backend = backend
        self.statistics = FDStatistics()
        self._cached: Optional[List[TupleSet]] = None

    @property
    def database(self) -> Database:
        return self._database

    def __iter__(self) -> Iterator[TupleSet]:
        """Stream the members of ``FD(R)`` (no caching)."""
        return full_disjunction_sets(
            self._database,
            use_index=self._use_index,
            initialization=self._initialization,
            block_size=self._block_size,
            backend=self._backend,
        )

    def compute(self) -> List[TupleSet]:
        """Compute and cache the full result."""
        if self._cached is None:
            self.statistics = FDStatistics()
            self._cached = list(
                full_disjunction_sets(
                    self._database,
                    use_index=self._use_index,
                    initialization=self._initialization,
                    block_size=self._block_size,
                    statistics=self.statistics,
                    backend=self._backend,
                )
            )
        return list(self._cached)

    def first(self, k: int) -> List[TupleSet]:
        """Return the first ``k`` results produced (incremental retrieval)."""
        return first_k(
            self._database,
            k,
            use_index=self._use_index,
            initialization=self._initialization,
            block_size=self._block_size,
            backend=self._backend,
        )

    def result_schema(self) -> Schema:
        """The union schema over which padded rows are rendered (as in Table 2)."""
        return combined_schema(self._database.relations)

    def padded_rows(self) -> List[Dict[str, object]]:
        """Render every result as a null-padded row (the last columns of Table 2)."""
        schema = self.result_schema()
        return [pad_tuple_set(tuple_set, schema) for tuple_set in self.compute()]

    def to_relation(self, name: str = "FD") -> Relation:
        """Materialise the padded rows as a relation."""
        schema = self.result_schema()
        relation = Relation(name, schema, label_prefix="fd")
        for row in self.padded_rows():
            relation.add([row[attribute] for attribute in schema.attributes])
        return relation

    def pretty(self) -> str:
        """Render the result in the style of Table 2: tuple sets plus padded columns."""
        schema = self.result_schema()
        header = ["tuple set"] + list(schema.attributes)
        rows = []
        for tuple_set in sorted(self.compute(), key=lambda ts: ts.sort_key()):
            row = pad_tuple_set(tuple_set, schema)
            labels = "{" + ", ".join(sorted(t.label for t in tuple_set)) + "}"
            rows.append(
                [labels]
                + ["⊥" if is_null(row[attribute]) else str(row[attribute]) for attribute in schema.attributes]
            )
        widths = [len(h) for h in header]
        for row in rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        lines = [
            "  ".join(h.ljust(widths[idx]) for idx, h in enumerate(header)),
            "  ".join("-" * widths[idx] for idx in range(len(header))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
        return "\n".join(lines)
