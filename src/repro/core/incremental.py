"""``IncrementalFD`` and ``GetNextResult`` (Figs. 1 and 2 of the paper).

``incremental_fd(database, anchor)`` computes ``FD_i(R)``: the tuple sets of
the full disjunction that contain a tuple of the anchor relation ``R_i``.  It
is a generator — each result is delivered as soon as it is produced, which is
the whole point of the paper: the algorithm runs in *incremental polynomial
time* (Theorem 4.10), so the first ``k`` answers arrive after polynomial work
in the input and ``k``, long before the (possibly exponential) full result is
complete.

The structure follows the paper's pseudocode line by line:

``IncrementalFD(R, i)`` (Fig. 1)
    1.  ``Complete`` ← empty; ``Incomplete`` ← ``{ {t} | t ∈ R_i }``
    2.  while ``Incomplete`` is not empty:
    3.      ``T`` ← ``GetNextResult(R, i, Incomplete, Complete)``
    4.      print ``T``; append ``T`` to ``Complete``

``GetNextResult(R, i, Incomplete, Complete)`` (Fig. 2)
    1.  remove a tuple set ``T`` from ``Incomplete``
    2–6.   extend ``T`` maximally: repeatedly add any tuple ``t_g`` with
           ``JCC(T ∪ {t_g})`` until a full pass adds nothing
    7.  for each tuple ``t_b ∉ T``:
    8.      ``T'`` ← the maximal subset of ``T ∪ {t_b}`` containing ``t_b``
             that is join consistent and connected  (footnote 3)
    9.      if ``T'`` contains a tuple from ``R_i``:
    10–11.      if ``T'`` is contained in a member of ``Complete``: skip
    12–15.      else if some ``S ∈ Incomplete`` has ``JCC(S ∪ T')``:
                    replace ``S`` by ``S ∪ T'``
    16–18.      else: insert ``T'`` into ``Incomplete``
    19. return ``T``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Union,
)

from repro.relational.database import Database
from repro.relational.errors import DatabaseError
from repro.core.store import (
    CompleteStore,
    ListIncompletePool,
    PriorityIncompletePool,
    record_store_statistics,
)
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet


def _is_numeric(value: object) -> bool:
    """True for the accumulating ``extras`` types: int/float, but not bool."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class FDStatistics:
    """Work counters of one ``IncrementalFD`` run (or one pass of the driver).

    ``results`` counts the results *produced* (added to ``Complete``);
    ``results_emitted`` counts the results actually delivered to the caller.
    The two differ where production and delivery diverge: the ranked
    threshold path (a result produced at a rank tie straddling the threshold
    boundary is recorded in ``Complete`` — it was derived, and must suppress
    re-derivations — but never emitted) and *unranked* streaming delta
    passes (a re-derived old result is produced again but never re-emitted).
    The ranked engine — delta passes included — follows Fig. 3's Line 17
    convention instead: a duplicate popped through another queue is
    discarded before either counter moves, so ``results`` counts distinct
    productions there.
    """

    results: int = 0
    results_emitted: int = 0
    extension_passes: int = 0
    candidates_generated: int = 0
    candidates_subsumed: int = 0
    candidates_merged: int = 0
    candidates_inserted: int = 0
    candidates_without_anchor: int = 0
    tuple_reads: int = 0
    scan_passes: int = 0
    block_reads: int = 0
    extras: dict = field(default_factory=dict)

    def merge(self, other: "FDStatistics") -> "FDStatistics":
        """Accumulate another statistics object into this one (returns self).

        Numeric ``extras`` values accumulate; any other pairing — strings,
        booleans, or a numeric value meeting a non-numeric one — resolves
        deterministically to the incoming (``other``) value, last writer
        wins.  The distinction matters for cross-process statistics merging,
        where every worker ships its own ``extras`` dict.
        """
        self.results += other.results
        self.results_emitted += other.results_emitted
        self.extension_passes += other.extension_passes
        self.candidates_generated += other.candidates_generated
        self.candidates_subsumed += other.candidates_subsumed
        self.candidates_merged += other.candidates_merged
        self.candidates_inserted += other.candidates_inserted
        self.candidates_without_anchor += other.candidates_without_anchor
        self.tuple_reads += other.tuple_reads
        self.scan_passes += other.scan_passes
        self.block_reads += other.block_reads
        for key, value in other.extras.items():
            existing = self.extras.get(key, 0 if _is_numeric(value) else None)
            if _is_numeric(value) and _is_numeric(existing):
                self.extras[key] = existing + value
            else:
                self.extras[key] = value
        return self

    def as_dict(self) -> dict:
        return {
            "results": self.results,
            "results_emitted": self.results_emitted,
            "extension_passes": self.extension_passes,
            "candidates_generated": self.candidates_generated,
            "candidates_subsumed": self.candidates_subsumed,
            "candidates_merged": self.candidates_merged,
            "candidates_inserted": self.candidates_inserted,
            "candidates_without_anchor": self.candidates_without_anchor,
            "tuple_reads": self.tuple_reads,
            "scan_passes": self.scan_passes,
            "block_reads": self.block_reads,
            **self.extras,
        }


AnchorSpec = Union[int, str]

#: Either of the Incomplete pool implementations accepted by ``get_next_result``.
IncompletePool = Union[ListIncompletePool, PriorityIncompletePool]


def resolve_anchor(database: Database, anchor: AnchorSpec) -> str:
    """Normalise an anchor given as a relation name or a zero-based index."""
    if isinstance(anchor, str):
        if anchor not in database:
            raise DatabaseError(f"no relation named {anchor!r}")
        return anchor
    return database.relation_at(anchor).name


def maximally_extend(
    tuple_set: TupleSet,
    scanner: TupleScanner,
    statistics: Optional[FDStatistics] = None,
) -> TupleSet:
    """Lines 2–6 of ``GetNextResult``: extend ``tuple_set`` with every tuple
    that keeps it join consistent and connected, until a fixpoint.

    The paper scans the whole database repeatedly; since a result holds at
    most one tuple per relation, at most ``n`` passes are needed.
    """
    current = tuple_set
    changed = True
    while changed:
        changed = False
        if statistics is not None:
            statistics.extension_passes += 1
        for candidate in scanner.scan():
            if candidate in current:
                continue
            if current.can_absorb(candidate):
                current = current.with_tuple(candidate)
                changed = True
    return current


def get_next_result(
    database: Database,
    anchor: str,
    incomplete: IncompletePool,
    complete: CompleteStore,
    scanner: Optional[TupleScanner] = None,
    statistics: Optional[FDStatistics] = None,
    anchor_tuples: Optional[AbstractSet] = None,
) -> TupleSet:
    """One call of ``GetNextResult`` (Fig. 2): produce the next result of ``FD_i``.

    The ``incomplete`` pool decides the extraction order: FIFO for plain
    ``IncrementalFD``, highest-rank-first for ``PriorityIncrementalFD``.

    ``anchor_tuples`` restricts the pass to an *anchor bucket range*: when
    given, the Line 9 test requires the candidate's anchor tuple to be a
    member of the set, not merely a tuple of the anchor relation.  This is
    exactly the paper's algorithm run over a database in which ``R_i`` has
    been split into sub-relations — sound because two distinct tuples of one
    relation are never join consistent (so a tuple set holds at most one
    ``R_i`` tuple, every pool merge is anchor-local, and the split pass
    produces precisely the ``FD_i`` members anchored in the range, once
    each).  The sharded backend's bucket-grained fan-out is built on this.
    """
    if scanner is None:
        scanner = TupleScanner(database)

    # Line 1: remove a tuple set from Incomplete.
    result = incomplete.pop()

    # Lines 2-6: extend it maximally.
    result = maximally_extend(result, scanner, statistics)

    # Lines 7-18: derive candidate tuple sets from the tuples left out.
    for outside in scanner.scan():
        if outside in result:
            continue
        candidate = result.maximal_jcc_subset_with(outside)
        if statistics is not None:
            statistics.candidates_generated += 1
        # Line 9: only candidates containing a tuple of the anchor relation
        # (and, under a bucket-range restriction, of the anchor bucket) matter.
        anchor_tuple = candidate.tuple_from(anchor)
        if anchor_tuple is None or (
            anchor_tuples is not None and anchor_tuple not in anchor_tuples
        ):
            if statistics is not None:
                statistics.candidates_without_anchor += 1
            continue
        # Lines 10-11: already covered by a printed result?
        if complete.contains_superset(candidate, anchor=anchor_tuple):
            if statistics is not None:
                statistics.candidates_subsumed += 1
            continue
        # Lines 12-15: can it be merged into a waiting tuple set?
        merged = False
        for waiting in incomplete.candidates(candidate):
            if waiting.union_is_jcc(candidate):
                incomplete.replace(waiting, waiting.union(candidate))
                merged = True
                if statistics is not None:
                    statistics.candidates_merged += 1
                break
        if merged:
            continue
        # Lines 16-18: otherwise it starts a new entry of Incomplete.
        incomplete.add(candidate)
        if statistics is not None:
            statistics.candidates_inserted += 1

    # Line 19.
    return result


#: Signature of the per-iteration callback of ``incremental_fd``.
IterationCallback = Callable[[int, TupleSet, IncompletePool, CompleteStore], None]


def incremental_fd(
    database: Database,
    anchor: AnchorSpec,
    use_index: bool = False,
    scanner: Optional[TupleScanner] = None,
    initial: Optional[Iterable[TupleSet]] = None,
    statistics: Optional[FDStatistics] = None,
    on_initialized: Optional[Callable[[IncompletePool, CompleteStore], None]] = None,
    on_iteration: Optional[IterationCallback] = None,
    complete: Optional[CompleteStore] = None,
    backend=None,
    anchor_tuples: Optional[Iterable] = None,
) -> Iterator[TupleSet]:
    """``IncrementalFD(R, i)`` (Fig. 1): generate ``FD_i(R)`` one tuple set at a time.

    Parameters
    ----------
    database:
        The relations ``R = {R_1, ..., R_n}``.
    anchor:
        The relation ``R_i``: its name or zero-based index.  Every generated
        tuple set contains exactly one tuple of this relation.
    use_index:
        Enable the Section 7 hash index on the ``Complete``/``Incomplete``
        containers.
    scanner:
        How to read ``Tuples(R)``; defaults to a fresh tuple-at-a-time
        scanner.  Pass a :class:`~repro.core.scanner.BlockScanner` for the
        block-based execution of Section 7.
    initial:
        Alternative initialization of ``Incomplete`` (Section 7, "minimizing
        repeated work").  Defaults to the singleton sets ``{t}`` for every
        ``t ∈ R_i``.  The caller is responsible for respecting the conditions
        of Remarks 4.3 and 4.5.
    statistics:
        Optional counters to fill in.
    on_initialized / on_iteration:
        Hooks used by the trace harness (Table 3) and by tests: called after
        initialization and after each result is produced.
    complete:
        An externally managed ``Complete`` store (the Section 7 strategies
        keep one store across all ``n`` passes).  Defaults to a fresh store.
    backend:
        The :class:`~repro.exec.base.ExecutionBackend` (or its name) whose
        ``next_result`` schedules each step; ``None`` is the serial
        reference step, :func:`get_next_result`.
    anchor_tuples:
        Restrict the pass to the *anchor bucket range* holding exactly these
        ``R_i`` tuples: ``Incomplete`` starts from their singletons only and
        the Line 9 test requires the anchor tuple to be one of them.  This
        is the paper's algorithm over a database in which ``R_i`` is split
        into sub-relations (see :func:`get_next_result`), and yields exactly
        the ``FD_i`` members anchored in the range, once each.  The sharded
        backend fans a pass out as one such range per worker task.

    Yields
    ------
    TupleSet
        Each member of ``FD_i(R)``, exactly once (Theorem 4.6).
    """
    anchor_name = resolve_anchor(database, anchor)
    if statistics is not None:
        from repro.core.kernels import tag_kernel

        tag_kernel(statistics)
    if scanner is None:
        scanner = TupleScanner(database)
    catalog = database.catalog()
    if backend is None:
        next_result = get_next_result
    else:
        from repro.exec import resolve_backend

        next_result = resolve_backend(backend).next_result

    bucket = None
    if anchor_tuples is not None:
        bucket = frozenset(anchor_tuples)

    incomplete = ListIncompletePool(anchor_name, use_index=use_index)
    owned_complete = complete is None
    if owned_complete:
        complete = CompleteStore(anchor_name, use_index=use_index)

    # Lines 1-4: initialization of the two lists.  Initial sets are interned
    # against the catalog so every set the run derives from them carries the
    # bitset representation.  Under a bucket restriction the seeds are the
    # bucket's singletons only, in scan order.
    from repro.obs.tracing import trace_span

    with trace_span("engine.initialize", "engine", anchor=anchor_name):
        if initial is None:
            initial = (
                TupleSet.singleton(t, catalog=catalog)
                for t in database.relation(anchor_name)
                if bucket is None or t in bucket
            )
        for tuple_set in initial:
            incomplete.add(tuple_set.attach_catalog(catalog))
    if on_initialized is not None:
        on_initialized(incomplete, complete)

    iteration = 0
    try:
        # Line 5: loop until Incomplete is exhausted.
        while incomplete:
            iteration += 1
            if bucket is None:
                # The positional call keeps custom backends that predate the
                # bucket restriction working unchanged.
                result = next_result(
                    database, anchor_name, incomplete, complete, scanner, statistics
                )
            else:
                result = next_result(
                    database,
                    anchor_name,
                    incomplete,
                    complete,
                    scanner,
                    statistics,
                    anchor_tuples=bucket,
                )
            # Lines 7-8: print the result and remember it in Complete.
            complete.add(result)
            if statistics is not None:
                statistics.results += 1
                statistics.results_emitted += 1
                statistics.tuple_reads = scanner.tuple_reads
                statistics.scan_passes = scanner.passes
            if on_iteration is not None:
                on_iteration(iteration, result, incomplete, complete)
            yield result
    finally:
        # Record store counters on every exit — exhaustion, an abandoned
        # generator (first-k retrieval) or an error — exactly once.
        if owned_complete:
            record_store_statistics(
                statistics, ("incomplete", incomplete), ("complete", complete)
            )
        else:
            # A shared Complete store is recorded by its owner, once.
            record_store_statistics(statistics, ("incomplete", incomplete))
