"""Scanners: how the algorithms read ``Tuples(R)``.

Every loop of ``GetNextResult`` iterates over the tuples of the database.  The
scanner abstraction centralises that iteration so that

* the number of tuple reads and full passes can be counted (the benchmarks use
  these as machine-independent work measures), and
* the *block-based* execution of Section 7 can be plugged in: a
  :class:`BlockScanner` fetches tuples a block at a time and counts block
  fetches, modelling the I/O behaviour of an implementation inside a database
  system, while producing exactly the same tuple stream.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.relational.database import Database
from repro.relational.tuples import Tuple


class TupleScanner:
    """Tuple-at-a-time scanner over ``Tuples(R)`` (the paper's default execution)."""

    def __init__(self, database: Database):
        self._database = database
        self.tuple_reads = 0
        self.passes = 0

    @property
    def database(self) -> Database:
        return self._database

    def scan(self, skip_relations: Optional[set] = None) -> Iterator[Tuple]:
        """Yield every tuple of the database, counting the pass and each read.

        ``skip_relations`` optionally omits whole relations; the
        initialization strategies of Section 7 restrict some passes to the
        relations ``R_{i+1}, ..., R_n``.
        """
        self.passes += 1
        for relation in self._database:
            if skip_relations and relation.name in skip_relations:
                continue
            for t in relation:
                self.tuple_reads += 1
                yield t

    def cost_summary(self) -> dict:
        """The scanner's work counters, for benchmark reporting."""
        return {"tuple_reads": self.tuple_reads, "passes": self.passes}


class BlockScanner(TupleScanner):
    """Block-at-a-time scanner (Section 7, "block-based execution").

    Tuples are delivered in the same order as :class:`TupleScanner`, but they
    are fetched in blocks of ``block_size`` tuples per relation and the number
    of block fetches is recorded.  ``block_reads`` is the I/O measure the
    block-based benchmarks report.
    """

    def __init__(self, database: Database, block_size: int):
        super().__init__(database)
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.block_reads = 0

    def scan_blocks(self, skip_relations: Optional[set] = None) -> Iterator[List[Tuple]]:
        """Yield the database as a sequence of blocks, counting block fetches."""
        self.passes += 1
        for relation in self._database:
            if skip_relations and relation.name in skip_relations:
                continue
            block: List[Tuple] = []
            for t in relation:
                block.append(t)
                if len(block) == self.block_size:
                    self.block_reads += 1
                    self.tuple_reads += len(block)
                    yield block
                    block = []
            if block:
                self.block_reads += 1
                self.tuple_reads += len(block)
                yield block

    def scan(self, skip_relations: Optional[set] = None) -> Iterator[Tuple]:
        """Yield every tuple, fetched block by block.

        ``scan_blocks`` counts the pass and the block fetches.
        """
        for block in self.scan_blocks(skip_relations):
            yield from block

    def cost_summary(self) -> dict:
        summary = super().cost_summary()
        summary["block_reads"] = self.block_reads
        summary["block_size"] = self.block_size
        return summary


def make_scanner(database: Database, block_size: Optional[int]) -> TupleScanner:
    """The scanner for one pass: tuple-at-a-time, or block-based (Section 7)."""
    if block_size is None:
        return TupleScanner(database)
    return BlockScanner(database, block_size)
