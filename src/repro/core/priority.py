"""``PriorityIncrementalFD`` (Fig. 3): ranked retrieval of full disjunctions.

For a ranking function ``f`` that is *monotonically c-determined* (see
:mod:`repro.core.ranking`), ``priority_incremental_fd`` emits the members of
``FD(R)`` in non-increasing rank order, so the top-``(k, f)`` problem is
solved in polynomial time in the input and ``k`` (Theorem 5.5), and the
``(τ, f)``-threshold problem by stopping at the first result below the
threshold (Remark 5.6).

The structure mirrors Fig. 3:

1.  For every relation ``R_i`` build a priority queue ``Incomplete_i`` holding
    all JCC tuple sets of size at most ``c`` that contain a tuple of ``R_i``
    (Lines 3–4), then merge queue members whose union is JCC until no pair can
    be merged (Lines 5–8) — this re-establishes the invariant of Remark 4.5.
2.  Repeatedly pick the queue whose top has the highest rank (Lines 10–15),
    call ``GetNextResult`` on it, and print the produced result unless it was
    already printed (Line 17); ``Complete`` is shared by all the queues.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple as TupleType

from repro.relational.database import Database
from repro.core.incremental import FDStatistics, get_next_result
from repro.core.store import CompleteStore, PriorityIncompletePool, record_store_statistics
from repro.core.ranking import RankingFunction, enumerate_connected_subsets
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet

#: A ranked result: the tuple set together with its rank.
RankedResult = TupleType[TupleSet, float]


def _merge_queue_members(pool: PriorityIncompletePool) -> None:
    """Lines 5–8 of Fig. 3: merge queue members whose union is JCC, to a fixpoint.

    After the merge no two members of the queue can be contained in the same
    member of ``FD_i`` (two such members would share the ``R_i`` tuple and be
    join consistent, hence mergeable).
    """
    changed = True
    while changed:
        changed = False
        members: List[TupleSet] = list(pool)
        for idx, first in enumerate(members):
            if first not in pool:
                continue
            for second in members[idx + 1:]:
                if second not in pool or first not in pool:
                    continue
                if first == second:
                    continue
                if first.union_is_jcc(second):
                    merged = first.union(second)
                    # Remove both members and insert the union once.
                    pool.replace(first, merged)
                    if second in pool and second != merged:
                        pool.replace(second, merged)
                    changed = True
                    first = merged


def build_priority_pools(
    database: Database,
    ranking: RankingFunction,
    use_index: bool = False,
) -> List[PriorityIncompletePool]:
    """Initialization of Fig. 3: one merged priority queue per relation."""
    ranking.require_monotonically_c_determined()
    catalog = database.catalog()
    pools: List[PriorityIncompletePool] = []
    for relation in database.relations:
        pool = PriorityIncompletePool(relation.name, ranking, use_index=use_index)
        for tuple_set in enumerate_connected_subsets(
            database, relation.name, ranking.c, catalog=catalog
        ):
            pool.add(tuple_set)
        _merge_queue_members(pool)
        pools.append(pool)
    return pools


def priority_incremental_fd(
    database: Database,
    ranking: RankingFunction,
    k: Optional[int] = None,
    threshold: Optional[float] = None,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[RankedResult]:
    """Generate ``FD(R)`` in non-increasing rank order.

    Parameters
    ----------
    database:
        The relations ``R_1, …, R_n``.
    ranking:
        A monotonically c-determined ranking function (otherwise
        :class:`~repro.relational.errors.RankingError` is raised — see
        Proposition 5.1 for why this restriction is necessary).
    k:
        Stop after ``k`` distinct results (the top-``(k, f)`` problem).
        ``None`` means produce the whole full disjunction in ranking order.
    threshold:
        Stop as soon as no remaining result can rank at least ``threshold``
        (the ``(τ, f)``-threshold problem of Remark 5.6).
    use_index:
        Enable the Section 7 hash index on the queues and on ``Complete``.
    statistics:
        Optional counters to fill in.
    backend:
        The :class:`~repro.exec.base.ExecutionBackend` (or its name) whose
        ``next_result`` schedules each step.  The output *order* is
        backend-independent: rank extraction happens here, and the batched
        step is exactly order-equivalent to the serial one.

    Yields
    ------
    (TupleSet, float)
        Each member of ``FD(R)`` with its rank, highest rank first.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    ranking.require_monotonically_c_determined()
    if k == 0:
        return

    if backend is None:
        next_result = get_next_result
    else:
        from repro.exec import resolve_backend

        next_result = resolve_backend(backend).next_result

    pools = build_priority_pools(database, ranking, use_index=use_index)
    anchors = [relation.name for relation in database.relations]
    complete = CompleteStore(anchor_relation=None, use_index=use_index)
    scanner = TupleScanner(database)

    try:
        yield from _priority_loop(
            database, ranking, pools, anchors, complete, scanner,
            k, threshold, statistics, next_result,
        )
    finally:
        # Record store counters on every exit — exhaustion, the k or
        # threshold stop, or an abandoned generator — exactly once.
        record_store_statistics(
            statistics, ("complete", complete), *(("incomplete", p) for p in pools)
        )


def _priority_loop(
    database, ranking, pools, anchors, complete, scanner, k, threshold, statistics,
    next_result=get_next_result,
):
    printed = 0
    while True:
        # Lines 10-15: find the queue whose top has the highest rank.
        best_index = None
        best_score = None
        for index, pool in enumerate(pools):
            score = pool.peek_score()
            if score is None:
                continue
            if best_score is None or score > best_score:
                best_score = score
                best_index = index
        if best_index is None:
            return  # every queue is exhausted
        if threshold is not None and best_score < threshold:
            # No remaining result can reach the threshold: every member of
            # FD(R) still to be produced has a c-sized witness subset stored
            # in some queue, whose rank bounds the member's rank from below
            # only; monotonicity gives the upper bound via Lemma 5.4.
            return

        result = next_result(
            database,
            anchors[best_index],
            pools[best_index],
            complete,
            scanner,
            statistics,
        )
        if result in complete:
            # Line 17: the same result was already produced via another queue.
            continue
        complete.add(result)
        if statistics is not None:
            statistics.results += 1
            statistics.tuple_reads = scanner.tuple_reads
            statistics.scan_passes = scanner.passes

        score = ranking(result)
        if threshold is not None and score < threshold:
            # Possible only through ties at the threshold boundary; skip but
            # keep scanning, sibling queue tops may still reach the threshold.
            continue
        yield result, score
        printed += 1
        if k is not None and printed >= k:
            return


def top_k(
    database: Database,
    ranking: RankingFunction,
    k: int,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[RankedResult]:
    """The top-``(k, f)`` full-disjunction problem (Theorem 5.5)."""
    return list(
        priority_incremental_fd(
            database, ranking, k=k, use_index=use_index,
            statistics=statistics, backend=backend,
        )
    )


def above_threshold(
    database: Database,
    ranking: RankingFunction,
    threshold: float,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[RankedResult]:
    """The ``(τ, f)``-threshold full-disjunction problem (Remark 5.6)."""
    return list(
        priority_incremental_fd(
            database, ranking, threshold=threshold, use_index=use_index,
            statistics=statistics, backend=backend,
        )
    )
