"""``PriorityIncrementalFD`` (Fig. 3): ranked retrieval of full disjunctions.

For a ranking function ``f`` that is *monotonically c-determined* (see
:mod:`repro.core.ranking`), ``priority_incremental_fd`` emits the members of
``FD(R)`` in non-increasing rank order, so the top-``(k, f)`` problem is
solved in polynomial time in the input and ``k`` (Theorem 5.5), and the
``(τ, f)``-threshold problem by stopping at the first result below the
threshold (Remark 5.6).

The structure mirrors Fig. 3:

1.  For every relation ``R_i`` build a priority queue ``Incomplete_i`` holding
    all JCC tuple sets of size at most ``c`` that contain a tuple of ``R_i``
    (Lines 3–4), then merge queue members whose union is JCC until no pair can
    be merged (Lines 5–8) — this re-establishes the invariant of Remark 4.5.
2.  Repeatedly pick the queue whose top has the highest rank (Lines 10–15),
    call ``GetNextResult`` on it, and print the produced result unless it was
    already printed (Line 17); ``Complete`` is shared by all the queues.

The queue machinery lives in an explicit :class:`PriorityState` object rather
than loop locals, so the whole engine state — the per-relation priority
queues, the shared ``Complete`` store and the scanner — survives between
pulls.  That is what makes the state *resumable*: a first-k client stops the
:meth:`PriorityState.results` generator mid-stream and continues later, and
the streaming maintainer (:mod:`repro.service.delta`) pushes an arrival's
qualifying size-≤c subsets into the live queues
(:meth:`PriorityState.ingest`) and drains only the genuinely new results
instead of rebuilding the queues from scratch.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple as TupleType

from repro.relational.database import Database
from repro.relational.tuples import Tuple
from repro.core.incremental import FDStatistics, get_next_result
from repro.core.store import CompleteStore, PriorityIncompletePool
from repro.core.ranking import (
    RankingFunction,
    canonical_rank_key,
    enumerate_connected_subsets,
    enumerate_connected_subsets_containing,
)
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet

#: A ranked result: the tuple set together with its rank.
RankedResult = TupleType[TupleSet, float]


def _merge_queue_members(pool: PriorityIncompletePool) -> None:
    """Lines 5–8 of Fig. 3: merge queue members whose union is JCC, to a fixpoint.

    After the merge no two members of the queue can be contained in the same
    member of ``FD_i`` (two such members would share the ``R_i`` tuple and be
    join consistent, hence mergeable).
    """
    changed = True
    while changed:
        changed = False
        members: List[TupleSet] = list(pool)
        for idx, first in enumerate(members):
            if first not in pool:
                continue
            for second in members[idx + 1:]:
                if second not in pool or first not in pool:
                    continue
                if first == second:
                    continue
                if first.union_is_jcc(second):
                    merged = first.union(second)
                    # Remove both members and insert the union once.
                    pool.replace(first, merged)
                    if second in pool and second != merged:
                        pool.replace(second, merged)
                    changed = True
                    first = merged


def build_priority_pools(
    database: Database,
    ranking: RankingFunction,
    use_index: bool = False,
) -> List[PriorityIncompletePool]:
    """Initialization of Fig. 3: one merged priority queue per relation."""
    ranking.require_monotonically_c_determined()
    catalog = database.catalog()
    pools: List[PriorityIncompletePool] = []
    for relation in database.relations:
        pool = PriorityIncompletePool(relation.name, ranking, use_index=use_index)
        for tuple_set in enumerate_connected_subsets(
            database, relation.name, ranking.c, catalog=catalog
        ):
            pool.add(tuple_set)
        _merge_queue_members(pool)
        pools.append(pool)
    return pools


class PriorityState:
    """The explicit, resumable engine state of ``PriorityIncrementalFD``.

    Owns everything Fig. 3 keeps between iterations: the per-relation
    priority queues (built eagerly, Lines 3–8), the shared ``Complete``
    store, and the tuple scanner.  :meth:`results` is the Fig. 3 main loop
    reading and mutating this state — stopping the generator and calling
    :meth:`results` again continues exactly where the previous pull left
    off, which is what the serving layer's pausable sessions rely on.

    Under streaming ingest the state stays live across arrivals:
    :meth:`ingest` pushes each arrival's qualifying size-≤c connected
    subsets into the queues (the delta counterpart of Lines 3–4; everything
    not containing an arrival was already enumerated when the queues were
    built) and a subsequent :meth:`drain_new` re-derives only results
    anchored at the arrivals — mirroring the unranked delta argument that
    every genuinely new result contains the arrival.
    """

    def __init__(
        self,
        database: Database,
        ranking: RankingFunction,
        use_index: bool = False,
        statistics: Optional[FDStatistics] = None,
        backend=None,
    ):
        ranking.require_monotonically_c_determined()
        if backend is None:
            self._next_result = get_next_result
        else:
            from repro.exec import resolve_backend

            self._next_result = resolve_backend(backend).next_result
        self.database = database
        self.ranking = ranking
        self.use_index = use_index
        self.statistics = statistics
        if statistics is not None:
            from repro.core.kernels import tag_kernel

            tag_kernel(statistics)
        self.pools = build_priority_pools(database, ranking, use_index=use_index)
        self.anchors = [relation.name for relation in database.relations]
        self.complete = CompleteStore(anchor_relation=None, use_index=use_index)
        self.scanner = TupleScanner(database)
        #: Results emitted by :meth:`results` so far (across all pulls).
        self.printed = 0
        #: Arrival tuples seeded through :meth:`ingest` so far.
        self.arrivals_seeded = 0
        # Store-counter totals already flushed into ``statistics.extras`` —
        # record_statistics() charges only the delta since the last flush,
        # so resumable use (record, resume, record again) never double-counts.
        self._flushed_totals: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # the main loop (Lines 9-17)
    # ------------------------------------------------------------------ #
    def _best_queue(self) -> TupleType[Optional[int], Optional[float]]:
        """Lines 10-15: the queue whose top has the highest rank."""
        best_index = None
        best_score = None
        for index, pool in enumerate(self.pools):
            score = pool.peek_score()
            if score is None:
                continue
            if best_score is None or score > best_score:
                best_score = score
                best_index = index
        return best_index, best_score

    def results(
        self, k: Optional[int] = None, threshold: Optional[float] = None
    ) -> Iterator[RankedResult]:
        """Generate the remaining results in non-increasing rank order.

        ``k`` bounds the results emitted *by this call*; the queue state is
        shared, so interleaved or repeated calls continue one stream.
        """
        statistics = self.statistics
        emitted = 0
        while True:
            best_index, best_score = self._best_queue()
            if best_index is None:
                return  # every queue is exhausted
            if threshold is not None and best_score < threshold:
                # No remaining result can reach the threshold: every member of
                # FD(R) still to be produced has a c-sized witness subset
                # stored in some queue, whose rank bounds the member's rank
                # from below only; monotonicity gives the upper bound via
                # Lemma 5.4.
                return

            result = self._next_result(
                self.database,
                self.anchors[best_index],
                self.pools[best_index],
                self.complete,
                self.scanner,
                statistics,
            )
            if result in self.complete:
                # Line 17: the same result was already produced via another
                # queue (or, after ingest, re-derived from an old seed).
                continue
            self.complete.add(result)
            if statistics is not None:
                statistics.results += 1
                statistics.tuple_reads = self.scanner.tuple_reads
                statistics.scan_passes = self.scanner.passes

            score = self.ranking(result)
            if threshold is not None and score < threshold:
                # Possible only through ties at the threshold boundary: the
                # result was produced (and must stay in Complete to suppress
                # re-derivations) but is never emitted — counted in
                # ``results``, not in ``results_emitted``.  Keep scanning,
                # sibling queue tops may still reach the threshold.
                continue
            if statistics is not None:
                statistics.results_emitted += 1
            yield result, score
            self.printed += 1
            emitted += 1
            if k is not None and emitted >= k:
                return

    # ------------------------------------------------------------------ #
    # streaming ingest (ranked delta maintenance)
    # ------------------------------------------------------------------ #
    def ingest(self, fresh_tuples: Sequence[Tuple]) -> int:
        """Seed the live queues with the arrivals' qualifying subsets.

        The tuples must already be in the database (appended through
        :meth:`~repro.relational.database.Database.add_tuple`).  For each
        arrival ``t``, every JCC subset of size ≤ c containing ``t`` is
        pushed into the queue of every relation it holds a tuple of —
        exactly the members the Lines 3–4 initialization would now include
        but did not when the queues were built — and the touched queues are
        re-merged to a fixpoint (Lines 5–8, Remark 4.5).  Returns the number
        of subsets seeded.
        """
        catalog = self.database.catalog()
        seeded = set()
        touched = set()
        for t in fresh_tuples:
            for subset in enumerate_connected_subsets_containing(
                self.database, t, self.ranking.c, catalog=catalog
            ):
                for index, anchor_name in enumerate(self.anchors):
                    if subset.contains_tuple_from(anchor_name):
                        if subset not in self.pools[index]:
                            self.pools[index].add(subset)
                            seeded.add(subset)
                        touched.add(index)
        for index in touched:
            _merge_queue_members(self.pools[index])
        self.arrivals_seeded += len(fresh_tuples)
        return len(seeded)

    def retract(self, dead_tuples: Sequence[Tuple]) -> List[TupleSet]:
        """Streaming deletion: evict dead queue members, retract dead results.

        The tuples must already be tombstoned in the database's catalog
        (removed through :meth:`~repro.relational.database.Database.remove_tuple`).
        Every queued subset containing a dead tuple is evicted — it could
        never extend into a result of the post-deletion database — and every
        stored ``Complete`` result containing one is dropped so it stops
        suppressing the subsets it used to cover.  Returns the retracted
        results in their original emission order; re-deriving what the
        retractions unblock is the caller's job (the streaming maintainer
        extends each retracted result's surviving components).
        """
        for pool in self.pools:
            pool.discard_containing(dead_tuples)
        catalog = self.database.catalog()
        return self.complete.retract_containing(dead_tuples, catalog=catalog)

    def drain_new(self) -> List[RankedResult]:
        """Drain the queues and return the genuinely new results, rank first.

        Old results re-derived from the seeds are suppressed by the shared
        ``Complete`` store (Line 17); the new ones — all containing an
        arrival, since a maximal set without one was maximal before the
        arrival too — are returned sorted by ``(-score, sort key)``, the
        canonical rank order a full ranked recompute would emit them in.

        Complete only relative to a drained base run: until the base stream
        has been exhausted, ``Complete`` cannot distinguish "new" from "not
        yet derived".
        """
        produced = list(self.results())
        produced.sort(key=canonical_rank_key)
        return produced

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def record_statistics(self) -> None:
        """Flush the store counters into ``statistics.extras`` (delta-safe).

        Charges only the growth since the previous flush, so callers may
        record at every pause point of a resumable run — the generator's
        ``finally``, the maintainer's close — without double-counting.
        """
        if self.statistics is None:
            return
        containers = [("complete", self.complete)]
        containers.extend(("incomplete", pool) for pool in self.pools)
        for prefix, container in containers:
            current = container.statistics.as_dict()
            flushed = self._flushed_totals.setdefault(id(container), {})
            for key, value in current.items():
                delta = value - flushed.get(key, 0)
                if delta:
                    name = f"{prefix}_{key}"
                    self.statistics.extras[name] = (
                        self.statistics.extras.get(name, 0) + delta
                    )
            self._flushed_totals[id(container)] = current


def priority_incremental_fd(
    database: Database,
    ranking: RankingFunction,
    k: Optional[int] = None,
    threshold: Optional[float] = None,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[RankedResult]:
    """Generate ``FD(R)`` in non-increasing rank order.

    Parameters
    ----------
    database:
        The relations ``R_1, …, R_n``.
    ranking:
        A monotonically c-determined ranking function (otherwise
        :class:`~repro.relational.errors.RankingError` is raised — see
        Proposition 5.1 for why this restriction is necessary).
    k:
        Stop after ``k`` distinct results (the top-``(k, f)`` problem).
        ``None`` means produce the whole full disjunction in ranking order.
    threshold:
        Stop as soon as no remaining result can rank at least ``threshold``
        (the ``(τ, f)``-threshold problem of Remark 5.6).
    use_index:
        Enable the Section 7 hash index on the queues and on ``Complete``.
    statistics:
        Optional counters to fill in.
    backend:
        The :class:`~repro.exec.base.ExecutionBackend` (or its name) whose
        ``next_result`` schedules each step.  The output *order* is
        backend-independent: rank extraction happens here, and the batched
        step is exactly order-equivalent to the serial one.

    Yields
    ------
    (TupleSet, float)
        Each member of ``FD(R)`` with its rank, highest rank first.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    ranking.require_monotonically_c_determined()
    if k == 0:
        return

    state = PriorityState(
        database, ranking, use_index=use_index, statistics=statistics,
        backend=backend,
    )
    try:
        yield from state.results(k=k, threshold=threshold)
    finally:
        # Record store counters on every exit — exhaustion, the k or
        # threshold stop, or an abandoned generator — exactly once.
        state.record_statistics()


def top_k(
    database: Database,
    ranking: RankingFunction,
    k: int,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[RankedResult]:
    """The top-``(k, f)`` full-disjunction problem (Theorem 5.5)."""
    return list(
        priority_incremental_fd(
            database, ranking, k=k, use_index=use_index,
            statistics=statistics, backend=backend,
        )
    )


def above_threshold(
    database: Database,
    ranking: RankingFunction,
    threshold: float,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> List[RankedResult]:
    """The ``(τ, f)``-threshold full-disjunction problem (Remark 5.6)."""
    return list(
        priority_incremental_fd(
            database, ranking, threshold=threshold, use_index=use_index,
            statistics=statistics, backend=backend,
        )
    )
