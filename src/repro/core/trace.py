"""Execution traces of ``IncrementalFD`` (reproduces Table 3 of the paper).

Table 3 shows the contents of ``Incomplete`` and ``Complete`` after the
initialization of ``IncrementalFD({Climates, Accommodations, Sites}, 1)`` and
after each of its six iterations.  :func:`trace_incremental_fd` records
exactly that information for any database and anchor relation, and
:func:`format_trace` renders it as an aligned text table in the same layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.relational.database import Database
from repro.core.incremental import AnchorSpec, incremental_fd, resolve_anchor
from repro.core.tupleset import TupleSet


@dataclass
class TraceSnapshot:
    """The state of the two lists at one point of the execution."""

    label: str
    incomplete: List[TupleSet] = field(default_factory=list)
    complete: List[TupleSet] = field(default_factory=list)

    def incomplete_labels(self) -> List[frozenset]:
        """The members of ``Incomplete`` as frozensets of tuple labels."""
        return [tuple_set.labels() for tuple_set in self.incomplete]

    def complete_labels(self) -> List[frozenset]:
        """The members of ``Complete`` as frozensets of tuple labels."""
        return [tuple_set.labels() for tuple_set in self.complete]


@dataclass
class ExecutionTrace:
    """All snapshots of one ``IncrementalFD`` run, plus the produced results."""

    anchor: str
    snapshots: List[TraceSnapshot] = field(default_factory=list)
    results: List[TupleSet] = field(default_factory=list)

    def snapshot(self, label: str) -> TraceSnapshot:
        """Return the snapshot with the given label (e.g. ``"Iteration 3"``)."""
        for snap in self.snapshots:
            if snap.label == label:
                return snap
        raise KeyError(f"no snapshot labelled {label!r}")

    @property
    def iterations(self) -> int:
        """Number of loop iterations (equals the number of results, Theorem 4.6)."""
        return len(self.results)


def trace_incremental_fd(
    database: Database,
    anchor: AnchorSpec,
    use_index: bool = False,
) -> ExecutionTrace:
    """Run ``IncrementalFD(R, i)`` and record the lists after each iteration."""
    anchor_name = resolve_anchor(database, anchor)
    trace = ExecutionTrace(anchor=anchor_name)

    def on_initialized(incomplete, complete) -> None:
        trace.snapshots.append(
            TraceSnapshot(
                label="Initialization",
                incomplete=incomplete.as_list(),
                complete=complete.as_list(),
            )
        )

    def on_iteration(iteration, result, incomplete, complete) -> None:
        trace.snapshots.append(
            TraceSnapshot(
                label=f"Iteration {iteration}",
                incomplete=incomplete.as_list(),
                complete=complete.as_list(),
            )
        )

    for result in incremental_fd(
        database,
        anchor_name,
        use_index=use_index,
        on_initialized=on_initialized,
        on_iteration=on_iteration,
    ):
        trace.results.append(result)
    return trace


def _render_sets(tuple_sets: Sequence[TupleSet]) -> List[str]:
    return ["{" + ", ".join(sorted(t.label for t in ts)) + "}" for ts in tuple_sets]


def format_trace(trace: ExecutionTrace, max_columns: Optional[int] = None) -> str:
    """Render an :class:`ExecutionTrace` in the layout of Table 3.

    Each snapshot becomes a column; the upper block lists ``Incomplete`` and
    the lower block lists ``Complete``.
    """
    snapshots = trace.snapshots if max_columns is None else trace.snapshots[:max_columns]
    columns = [snap.label for snap in snapshots]
    incomplete_rows = max((len(snap.incomplete) for snap in snapshots), default=0)
    complete_rows = max((len(snap.complete) for snap in snapshots), default=0)

    grid: List[List[str]] = []
    grid.append([""] + columns)
    for row_index in range(incomplete_rows):
        row = ["Incomplete" if row_index == 0 else ""]
        for snap in snapshots:
            rendered = _render_sets(snap.incomplete)
            row.append(rendered[row_index] if row_index < len(rendered) else "")
        grid.append(row)
    for row_index in range(complete_rows):
        row = ["Complete" if row_index == 0 else ""]
        for snap in snapshots:
            rendered = _render_sets(snap.complete)
            row.append(rendered[row_index] if row_index < len(rendered) else "")
        grid.append(row)

    widths = [max(len(row[idx]) for row in grid) for idx in range(len(grid[0]))]
    lines = []
    for row_index, row in enumerate(grid):
        lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
        if row_index == 0:
            lines.append("  ".join("-" * widths[idx] for idx in range(len(row))))
    return "\n".join(lines)
