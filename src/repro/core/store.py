"""Indexed ``Complete``/``Incomplete`` store layer (Section 7).

The paper stores both containers as linked lists and, in Section 7,
recommends replacing them with hash tables keyed by the member tuple of the
anchor relation ``R_i``, so that the subsumption test (Line 11) and the merge
test (Line 14) of ``GetNextResult`` only scan the tuple sets that share the
candidate's ``R_i`` tuple.  This module is the engine's unified store
subsystem implementing that recommendation on top of the interned
:class:`~repro.core.tupleset.TupleSet` representation:

* :class:`CompleteStore` — already-printed results.  Stored sets are indexed
  **twice**: by every member tuple (the Section 7 hash index) and, within
  each bucket, by their relation set.  A superset probe therefore touches
  only the bucket of its anchor tuple, skips whole relation-set groups that
  cannot contain a superset, and decides each remaining candidate with one
  bitmask comparison.
* :class:`ListIncompletePool` / :class:`PriorityIncompletePool` — the
  ``Incomplete`` containers, extending the reference implementations in
  :mod:`repro.core.pools` (which own the paper's positional and heap
  semantics) with the instrumented anchor-bucket merge probe.

:class:`CompleteStore` is a from-scratch reimplementation — its probe
strategy genuinely differs from the reference — while the two pools
deliberately *subclass* the reference classes so the extraction semantics
exist in exactly one place.  All containers fill in a
:class:`~repro.core.pools.PoolStatistics`, the machine-independent work
measure the benchmarks (E1, E6) report: ``sets_scanned`` counts subset/merge
tests actually performed, ``bucket_probes`` counts index buckets and
relation-set groups inspected, and ``full_scans`` counts probes that had to
fall back to a full traversal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.relational.tuples import Tuple
from repro.core.kernels import active_kernel
from repro.core.pools import (
    ListIncompletePool as _ReferenceListIncompletePool,
    PoolStatistics,
    PriorityIncompletePool as _ReferencePriorityIncompletePool,
)
from repro.core.tupleset import TupleSet
from repro.obs.tracing import trace_span

__all__ = [
    "PoolStatistics",
    "CompleteStore",
    "ListIncompletePool",
    "PriorityIncompletePool",
    "record_store_statistics",
    "probe_counters",
]


class CompleteStore:
    """The ``Complete`` list: results already printed, dual-indexed.

    Parameters
    ----------
    anchor_relation:
        Name of the relation ``R_i`` whose member tuple keys the hash index.
        Only used when ``use_index`` is true.  In the priority algorithm the
        store is shared by all indexes; the superset probe then passes the
        anchor tuple explicitly.
    use_index:
        When true, stored sets are hashed by *every* member tuple (Section 7)
        and grouped by relation set within each bucket; superset probes are
        restricted to the bucket of the probe's anchor tuple and to the
        groups whose relation set contains the probe's.
    """

    def __init__(self, anchor_relation: Optional[str] = None, use_index: bool = False):
        self._anchor_relation = anchor_relation
        self._use_index = use_index
        self._sets: List[TupleSet] = []
        self._members = set()
        # tuple -> relation set -> stored sets holding that tuple.
        self._buckets: Dict[Tuple, Dict[FrozenSet[str], List[TupleSet]]] = {}
        # (anchor, relations) -> packed group matrix, owned by the kernel.
        # Groups only grow between retractions, so entries extend in place
        # and the whole cache is dropped whenever a retraction reshapes the
        # buckets.
        self._kernel_cache: Dict = {}
        self.statistics = PoolStatistics()

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[TupleSet]:
        return iter(self._sets)

    def __contains__(self, tuple_set: TupleSet) -> bool:
        return tuple_set in self._members

    def add(self, tuple_set: TupleSet) -> None:
        """Store a printed result."""
        self._sets.append(tuple_set)
        self._members.add(tuple_set)
        self.statistics.additions += 1
        self.statistics.peak_size = max(self.statistics.peak_size, len(self._sets))
        if self._use_index:
            relations = tuple_set.relations
            for t in tuple_set:
                self._buckets.setdefault(t, {}).setdefault(relations, []).append(tuple_set)

    def contains_superset(self, probe: TupleSet, anchor: Optional[Tuple] = None) -> bool:
        """Line 11 of ``GetNextResult``: is ``probe`` contained in a stored set?"""
        if self._use_index:
            key = anchor
            if key is None and self._anchor_relation is not None:
                key = probe.tuple_from(self._anchor_relation)
            if key is not None:
                groups = self._buckets.get(key)
                if not groups:
                    return False
                probe_relations = probe.relations
                for relations, group in groups.items():
                    self.statistics.bucket_probes += 1
                    # A stored set can only contain the probe when its
                    # relation set contains the probe's.
                    if not probe_relations <= relations:
                        continue
                    for stored in group:
                        self.statistics.sets_scanned += 1
                        if probe.issubset(stored):
                            return True
                return False
            # Fall back to a full scan when no anchor tuple is available.
        self.statistics.full_scans += 1
        for stored in self._sets:
            self.statistics.sets_scanned += 1
            if probe.issubset(stored):
                return True
        return False

    def contains_superset_batch(
        self, probes: List[TupleSet], anchor: Optional[Tuple] = None
    ) -> List[bool]:
        """Line 11 of ``GetNextResult`` for a whole anchor bucket at once.

        All ``probes`` share the same anchor tuple, so with the index enabled
        the bucket (and each of its relation-set groups) is fetched **once**
        for the entire batch instead of once per probe — the amortization the
        batched execution backend is built on.  The per-probe answers are
        identical to calling :meth:`contains_superset` on each probe
        (``Complete`` never changes during one ``GetNextResult`` call, so
        batching cannot observe a different store state), and ``sets_scanned``
        counts the same subset tests; only ``bucket_probes`` drops.
        """
        # Span at bucket granularity only: the per-probe serial path is the
        # per-step hot loop and stays untraced.
        with trace_span("store.batch_probe", "store", probes=len(probes)):
            if self._use_index and anchor is not None:
                answers = [False] * len(probes)
                groups = self._buckets.get(anchor)
                if not groups:
                    return answers
                kernel = active_kernel()
                unanswered = len(probes)
                for relations, group in groups.items():
                    self.statistics.bucket_probes += 1
                    # A stored set can only contain a probe whose relation set
                    # its own contains; the kernel sees only the open probes.
                    open_indices = [
                        index
                        for index, probe in enumerate(probes)
                        if not answers[index] and probe.relations <= relations
                    ]
                    if open_indices:
                        group_answers, scanned = kernel.batch_contains_superset(
                            group,
                            [probes[index] for index in open_indices],
                            cache=self._kernel_cache,
                            cache_key=(anchor, relations),
                        )
                        self.statistics.sets_scanned += scanned
                        for index, hit in zip(open_indices, group_answers):
                            if hit:
                                answers[index] = True
                                unanswered -= 1
                    if not unanswered:
                        break  # every probe found a superset; mirror the serial early return
                return answers
            return [
                self.contains_superset(probe, anchor=anchor) for probe in probes
            ]

    def as_list(self) -> List[TupleSet]:
        """The stored sets in insertion (printing) order."""
        return list(self._sets)

    def retract_containing(self, dead_tuples, catalog=None) -> List[TupleSet]:
        """Drop every stored set holding a dead tuple; return them in order.

        The non-monotone counterpart of :meth:`add`: after a deletion, every
        stored result containing a tombstoned tuple is no longer an answer
        and must stop subsuming new candidates.  Victims are found through
        the anchor-tuple buckets when the index is on (one lookup per dead
        tuple) and by a liveness sweep otherwise — on interned sets the
        per-set test is one ``AND`` of the member bitmask against the
        catalog's tombstone set
        (:meth:`~repro.core.tupleset.TupleSet.contains_tombstoned`); nothing
        is re-interned and surviving sets keep their ids.  Returned in
        insertion (emission) order, deduplicated, which is the order the
        serving layer retracts them in.
        """
        dead = set(dead_tuples)
        if not dead or not self._sets:
            return []
        span = trace_span("store.retract", "store", dead=len(dead))
        victims = set()
        if self._use_index:
            for t in dead:
                groups = self._buckets.pop(t, None)
                if groups:
                    for group in groups.values():
                        victims.update(group)
        elif catalog is not None:
            members = list(self._members)
            flags = active_kernel().batch_contains_tombstoned(members, catalog)
            victims = {s for s, hit in zip(members, flags) if hit}
        else:
            members = list(self._members)
            flags = active_kernel().batch_contains_dead(members, dead)
            victims = {s for s, hit in zip(members, flags) if hit}
        if not victims:
            span.close()
            return []
        # Retractions reshape the groups, so the packed group matrices are
        # rebuilt from scratch on the next probe.
        self._kernel_cache.clear()
        retracted: List[TupleSet] = []
        seen = set()
        for stored in self._sets:
            if stored in victims and stored not in seen:
                retracted.append(stored)
                seen.add(stored)
        self._sets = [stored for stored in self._sets if stored not in victims]
        touched = set()
        for stored in victims:
            self._members.discard(stored)
            self.statistics.removals += 1
            touched.update(stored.tuples)
        if self._use_index:
            for t in touched - dead:
                groups = self._buckets.get(t)
                if not groups:
                    continue
                for relations in list(groups):
                    kept = [s for s in groups[relations] if s not in victims]
                    if kept:
                        groups[relations] = kept
                    else:
                        del groups[relations]
                if not groups:
                    del self._buckets[t]
        span.annotate(retracted=len(retracted))
        span.close()
        return retracted


class ListIncompletePool(_ReferenceListIncompletePool):
    """The reference ``Incomplete`` list with an instrumented merge probe.

    Extraction, insertion and replacement semantics are inherited verbatim
    from :class:`repro.core.pools.ListIncompletePool`; only the Line 14
    probe is overridden to count bucket probes and full-scan fallbacks.
    """

    def candidates(self, probe: TupleSet) -> List[TupleSet]:
        """Member sets that might merge with ``probe`` (Line 14 probe).

        With the index enabled only the bucket of ``probe``'s anchor tuple is
        returned; a set with a different ``R_i`` tuple can never merge with
        ``probe`` because their union would hold two tuples of ``R_i``.
        """
        if self._use_index:
            anchor = self._anchor_of(probe)
            if anchor is not None:
                self.statistics.bucket_probes += 1
                bucket = list(self._buckets.get(anchor, ()))
                self.statistics.sets_scanned += len(bucket)
                return bucket
        self.statistics.full_scans += 1
        live = list(self._items)
        self.statistics.sets_scanned += len(live)
        return live


class PriorityIncompletePool(_ReferencePriorityIncompletePool):
    """The reference priority ``Incomplete_i`` queue with an instrumented probe.

    Rank extraction and tie-breaking are inherited verbatim from
    :class:`repro.core.pools.PriorityIncompletePool`; only the Line 14 probe
    is overridden to count bucket probes and full-scan fallbacks.
    """

    def candidates(self, probe: TupleSet) -> List[TupleSet]:
        """Member sets that might merge with ``probe`` (see :class:`ListIncompletePool`)."""
        if self._use_index:
            anchor = self._anchor_of(probe)
            if anchor is not None:
                self.statistics.bucket_probes += 1
                bucket = [s for s in self._buckets.get(anchor, ()) if s in self._members]
                self.statistics.sets_scanned += len(bucket)
                return bucket
        self.statistics.full_scans += 1
        live = list(self._members)
        self.statistics.sets_scanned += len(live)
        return live


def record_store_statistics(statistics, *containers) -> None:
    """Accumulate container counters into ``FDStatistics.extras``.

    ``statistics`` is an :class:`~repro.core.incremental.FDStatistics` (or
    anything with an ``extras`` dict); the benchmark tables (E1, E6) read the
    aggregated ``*_sets_scanned`` keys from there.  Containers may be passed
    as ``(prefix, container)`` pairs or bare (the class name is used).
    """
    if statistics is None:
        return
    for entry in containers:
        if isinstance(entry, tuple):
            prefix, container = entry
        else:
            container = entry
            prefix = type(container).__name__.lower()
        for key, value in container.statistics.as_dict().items():
            name = f"{prefix}_{key}"
            statistics.extras[name] = statistics.extras.get(name, 0) + value


def probe_counters(statistics):
    """Total ``(bucket_probes, full_scans)`` across all recorded containers.

    The inverse view of :func:`record_store_statistics`: it prefixes every
    container's counters (``complete_bucket_probes``,
    ``incomplete_full_scans``, …); this sums them back up as the store-layer
    work measure the benchmark tables report next to ``sets_scanned``.
    """
    extras = statistics.extras
    bucket_probes = sum(
        value for key, value in extras.items() if key.endswith("_bucket_probes")
    )
    full_scans = sum(
        value for key, value in extras.items() if key.endswith("_full_scans")
    )
    return bucket_probes, full_scans
