"""The big-int reference kernel: the serial engine's loops, verbatim.

This kernel is the executable specification of the kernel interface, the
same way the dict/BFS tuple-set path is the specification of the bitset
path: each operation is the exact per-candidate Python loop the serial
engine runs (or ran, before the loops moved here), including the early
breaks that the work counters observe.  The packed kernel is tested against
it operation by operation and falls back to it whenever an input is outside
the packed representation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple as TupleType

from repro.core.kernels.base import Kernel


class BigintKernel(Kernel):
    """Per-candidate loops over Python big-int bitmasks (the reference)."""

    name = "bigint"

    def batch_contains_superset(
        self, group, probes, cache: Optional[dict] = None, cache_key=None
    ) -> TupleType[List[bool], int]:
        answers: List[bool] = []
        scanned = 0
        for probe in probes:
            hit = False
            for stored in group:
                scanned += 1
                if probe.issubset(stored):
                    hit = True
                    break
            answers.append(hit)
        return answers, scanned

    def first_jcc_union(self, waiting_list: Sequence, candidate) -> int:
        for index, waiting in enumerate(waiting_list):
            if waiting.union_is_jcc(candidate):
                return index
        return -1

    def batch_can_absorb(self, catalog, id_mask: int, relation_mask: int, gids):
        flags: List[bool] = []
        for gid in gids:
            if id_mask & ~catalog.consistent_mask(gid):
                flags.append(False)
                continue
            adjacency = catalog.adjacency_mask(catalog.relation_of_tuple(gid))
            flags.append(bool(adjacency & relation_mask))
        return flags

    def batch_contains_tombstoned(self, sets, catalog) -> List[bool]:
        return [tuple_set.contains_tombstoned(catalog) for tuple_set in sets]

    def batch_contains_dead(self, sets, dead) -> List[bool]:
        dead = dead if isinstance(dead, (set, frozenset)) else set(dead)
        return [any(t in dead for t in tuple_set) for tuple_set in sets]

    def maximally_extend(self, tuple_set, scanner, statistics=None):
        from repro.core.incremental import maximally_extend

        return maximally_extend(tuple_set, scanner, statistics)

    def popcount(self, mask: int) -> int:
        return bin(mask).count("1")
