"""The packed kernel: bitset inner loops on NumPy ``uint64`` word arrays.

The big-int representation answers one candidate per Python bytecode loop
iteration; this module answers a whole batch per NumPy array operation.  The
data layout is a columnar mirror of the catalog's bitmatrices
(:class:`PackedMirror`): every big-int bitmask becomes a row of ``uint64``
little-endian words, so a mask of ``n`` tuples occupies ``ceil(n/64)`` words
and the engine's predicates become word-wise ``AND``/``ANDN`` reductions
over contiguous arrays.

Layout invariant: for every mask ``m`` and width ``w``,
``pack_int(m, w)`` is exactly ``m.to_bytes(w*8, 'little')`` viewed as
``<u8`` words — so ``unpack_to_int(pack_int(m, w)) == m`` and the packed
rows can always be checked bit-for-bit against the catalog's big ints
(``tests/core/test_kernels.py`` does).

The mirror is created lazily by :meth:`Catalog.packed_mirror
<repro.relational.catalog.Catalog.packed_mirror>` and maintained
*incrementally* by the catalog's ``append_tuple``/``tombstone`` hooks:
appending a tuple writes one packed row and ORs one bit-column
(amortized O(n/64) words via capacity doubling), a tombstone sets one bit.
Interned tuple sets cache their own packed row in a ``TupleSet`` slot, built
on first use and padded when the id space grows.

Every operation here obeys the parity contract of
:mod:`repro.core.kernels.base`: inputs the packed representation cannot
express (uninterned sets, mixed catalogs, uncatalogued tuples, ambiguous
dead-tuple incarnations) are delegated to the big-int reference kernel for
that call, so answers — and the serial-equivalent ``scanned`` counts — are
identical by construction, not by luck.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple as TupleType

import numpy as np

from repro.core.kernels.base import Kernel
from repro.core.kernels.bigint import BigintKernel

#: All packed arrays use explicit little-endian words so ``pack_int`` /
#: ``unpack_to_int`` round-trip through ``int.to_bytes(..., "little")`` on
#: any host byte order.
U64 = np.dtype("<u8")

_ONE = np.uint64(1)


def words_for(bits: int) -> int:
    """Words needed for ``bits`` bit positions (at least one)."""
    return max(1, (bits + 63) >> 6)


def pack_int(mask: int, width: int) -> np.ndarray:
    """A big-int bitmask as ``width`` little-endian ``uint64`` words (read-only)."""
    return np.frombuffer(mask.to_bytes(width * 8, "little"), dtype=U64)


def unpack_to_int(words: np.ndarray) -> int:
    """The inverse of :func:`pack_int`."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


def unpack_bits(mask: int, bits: int) -> np.ndarray:
    """A big-int bitmask as a boolean array of ``bits`` positions."""
    if bits <= 0:
        return np.zeros(0, dtype=bool)
    raw = np.frombuffer(mask.to_bytes((bits + 7) >> 3, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:bits].astype(bool)


def take_bits(words: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """The bits of a packed row at positions ``idx``, as booleans."""
    shifts = (idx & 63).astype(U64)
    return ((words[idx >> 6] >> shifts) & _ONE).astype(bool)


def popcount_words(words: np.ndarray) -> int:
    """Word-wise population count of a packed array."""
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return int(bitwise_count(words).sum())
    return int(np.unpackbits(np.ascontiguousarray(words).view(np.uint8)).sum())


def set_words(tuple_set, width: int) -> np.ndarray:
    """The packed row of an interned tuple set, cached on the set itself.

    The cached row only ever needs to *grow* (dense ids are append-only), so
    a cached row at least ``width`` words wide is sliced, a narrower one is
    rebuilt and re-cached.
    """
    row = tuple_set._packed_row
    if row is None or row.shape[0] < width:
        row = pack_int(tuple_set._id_mask, width)
        tuple_set._packed_row = row
    return row[:width]


class PackedMirror:
    """The catalog's bitmatrices as packed ``uint64`` arrays, kept in sync.

    Built once from the catalog's big ints, then maintained incrementally by
    the catalog's append/tombstone hooks.  Arrays are over-allocated
    (capacity doubling in both rows and words), with ``n``/``width`` marking
    the logical extent, so streaming appends stay amortized O(row).

    Two backings share every kernel code path — the arrays differ only in
    where their bytes live:

    ``backing="ram"``
        Anonymous ``np.zeros`` allocations (the original mirror).
    ``backing="mmap"``
        Views over a :class:`~repro.relational.catalog_file.MirrorFile`
        mapping, so the matrices page in on demand, survive the process, and
        are shared zero-copy with sharded workers via the OS page cache.
        Appends additionally write the tuple's payload entry to the file and
        growth delegates to the file's ftruncate-and-remap doubling.

    Answers and ``sets_scanned`` counts are identical across backings by
    construction: :class:`PackedKernel` reads the same attributes either way.
    """

    __slots__ = (
        "n",
        "width",
        "r_words",
        "consistent",
        "dead",
        "relation_tuples",
        "tuple_relation",
        "adjacency",
        "backing",
        "file",
        "version",
    )

    def __init__(self, catalog, backing: str = "ram", path: Optional[str] = None,
                 delete_on_close: bool = False):
        if backing not in ("ram", "mmap"):
            raise ValueError(f"backing must be 'ram' or 'mmap', got {backing!r}")
        n = catalog.tuple_count
        r = catalog.relation_count
        self.n = n
        self.width = words_for(n)
        self.r_words = words_for(max(r, 1))
        self.backing = backing
        self.version = 0
        row_cap = max(n, 16)
        if backing == "mmap":
            if path is None:
                raise ValueError("the mmap backing needs a file path")
            from repro.relational.catalog_file import MirrorFile

            self.file = MirrorFile.create(
                path,
                row_cap=row_cap,
                word_cap=self.width,
                relation_count=r,
                r_words=self.r_words,
                meta=catalog.mirror_meta(),
                delete_on_close=delete_on_close,
            )
            self._bind_file_arrays()
        else:
            self.file = None
            self.consistent = np.zeros((row_cap, self.width), dtype=U64)
            self.dead = np.zeros(self.width, dtype=U64)
            self.relation_tuples = np.zeros((max(r, 1), self.width), dtype=U64)
            self.adjacency = np.zeros((max(r, 1), self.r_words), dtype=U64)
            self.tuple_relation = np.zeros(row_cap, dtype=np.int64)
        for gid in range(n):
            self.consistent[gid, :self.width] = pack_int(
                catalog.consistent_mask(gid), self.width
            )
        self.dead[:self.width] = pack_int(catalog.dead_mask, self.width)
        for rid in range(r):
            self.relation_tuples[rid, :self.width] = pack_int(
                catalog.relation_tuples_mask(rid), self.width
            )
            self.adjacency[rid, :self.r_words] = pack_int(
                catalog.adjacency_mask(rid), self.r_words
            )
        for gid in range(n):
            self.tuple_relation[gid] = catalog.relation_of_tuple(gid)
        if self.file is not None:
            for gid in range(n):
                self.file.append_payload(catalog.payload_entry(gid))
            self.file.set_counts(n, self.width)
            self.file.flush()

    @classmethod
    def attached(cls, mirror_file) -> "PackedMirror":
        """Wrap an already-populated mirror file (the worker side).

        No catalog big ints are read — the file's header supplies the
        logical extents and the mapped sections supply the matrices, so
        attaching is O(1) regardless of database size.
        """
        self = object.__new__(cls)
        self.backing = "mmap"
        self.version = 0
        self.file = mirror_file
        self.n = mirror_file.n
        self.width = mirror_file.width
        self.r_words = mirror_file.r_words
        self._bind_file_arrays()
        return self

    @property
    def path(self) -> Optional[str]:
        """The backing file's path (``None`` for the RAM backing)."""
        return None if self.file is None else self.file.path

    def _bind_file_arrays(self) -> None:
        self.consistent = self.file.consistent
        self.relation_tuples = self.file.relation_tuples
        self.adjacency = self.file.adjacency
        self.dead = self.file.dead
        self.tuple_relation = self.file.tuple_relation

    def _grow(self, need_rows: int, need_words: int) -> None:
        if self.file is not None:
            self.file.grow(need_rows, need_words)
            self._bind_file_arrays()
            return
        row_cap, word_cap = self.consistent.shape
        new_rows = row_cap
        while new_rows < need_rows:
            new_rows *= 2
        new_words = word_cap
        while new_words < need_words:
            new_words *= 2
        if new_rows != row_cap or new_words != word_cap:
            grown = np.zeros((new_rows, new_words), dtype=U64)
            grown[:self.n, :self.width] = self.consistent[:self.n, :self.width]
            self.consistent = grown
            relation = np.zeros((self.relation_tuples.shape[0], new_words), dtype=U64)
            relation[:, :self.width] = self.relation_tuples[:, :self.width]
            self.relation_tuples = relation
            dead = np.zeros(new_words, dtype=U64)
            dead[:self.width] = self.dead[:self.width]
            self.dead = dead
            tuple_relation = np.zeros(new_rows, dtype=np.int64)
            tuple_relation[:self.n] = self.tuple_relation[:self.n]
            self.tuple_relation = tuple_relation

    def append_row(self, gid: int, mask: int, rid: int, payload=None) -> None:
        """Mirror ``Catalog.append_tuple``: one new row plus one bit-column.

        With the mmap backing the tuple's ``payload`` entry rides into the
        file's payload region and the header's logical counts advance, so
        the file is attachable after every append — the streaming-ingest
        contract of the in-RAM mirror, preserved on disk.
        """
        if self.file is not None and self.file.readonly:
            from repro.relational.catalog_file import MirrorFileError

            raise MirrorFileError(
                f"cannot append through a read-only mirror mapping ({self.file.path})"
            )
        width = words_for(gid + 1)
        self._grow(gid + 1, width)
        self.width = max(self.width, width)
        self.consistent[gid, :self.width] = pack_int(mask, self.width)
        bit = _ONE << np.uint64(gid & 63)
        word = gid >> 6
        if mask:
            rows = np.flatnonzero(unpack_bits(mask, gid))
            self.consistent[rows, word] |= bit
        self.relation_tuples[rid, word] |= bit
        self.tuple_relation[gid] = rid
        self.n = gid + 1
        self.version += 1
        if self.file is not None:
            if payload is not None and self.file.append_payload(payload):
                self._bind_file_arrays()
            self.file.set_counts(self.n, self.width)

    def tombstone(self, gid: int) -> None:
        """Mirror ``Catalog.tombstone``: one bit in the dead words."""
        if self.file is not None and self.file.readonly:
            from repro.relational.catalog_file import MirrorFileError

            raise MirrorFileError(
                f"cannot tombstone through a read-only mirror mapping ({self.file.path})"
            )
        self.dead[gid >> 6] |= _ONE << np.uint64(gid & 63)
        self.version += 1
        if self.file is not None:
            self.file.mark_dirty()

    def dead_words(self) -> np.ndarray:
        return self.dead[:self.width]

    def consistent_row(self, gid: int) -> np.ndarray:
        return self.consistent[gid, :self.width]

    def row_as_int(self, gid: int) -> int:
        """The consistency row as a big int (parity checks in tests)."""
        return unpack_to_int(self.consistent_row(gid))


class _GroupMatrix:
    """The packed (negated) rows of one store group, grown append-only.

    ``CompleteStore`` groups only ever *gain* sets between retractions (the
    store clears its kernel cache on retract), so the matrix extends by the
    suffix on each probe.  ``ensure`` returns ``None`` when a group member is
    outside the packed representation — the caller then falls back whole.
    """

    __slots__ = ("catalog", "width", "negated", "built")

    def __init__(self, catalog, width: int):
        self.catalog = catalog
        self.width = width
        self.negated = np.zeros((0, width), dtype=U64)
        self.built = 0

    def ensure(self, group) -> Optional[np.ndarray]:
        if self.built < len(group):
            fresh = group[self.built:]
            for stored in fresh:
                if stored._id_mask is None or stored._catalog is not self.catalog:
                    return None
            rows = np.vstack([~set_words(stored, self.width) for stored in fresh])
            self.negated = np.vstack([self.negated, rows]) if self.built else rows
            self.built = len(group)
        return self.negated


class PackedKernel(Kernel):
    """Vectorized batch operations over the packed-word representation."""

    name = "packed"

    #: Empirical regime cutoffs (measured by
    #: ``benchmarks/bench_e13_kernels.py``): below each one the big-int
    #: reference is faster — a CPython big-int ``AND`` is already one C
    #: call, so vectorization only pays once a whole batch amortizes the
    #: NumPy dispatch and row-gathering — and the call delegates.  Same
    #: answers either way, per the parity contract.  ``inf`` marks ops
    #: where the reference won at every measured size: the early-breaking
    #: Line-14 merge probe and the one-AND-per-set tombstone sweep.  The
    #: vectorized forms stay available (parity tests zero the cutoffs) for
    #: workloads wide enough to tip the balance.
    MIN_GROUP = 64  #: batch_contains_superset — stored sets in the bucket
    MIN_WAITING = float("inf")  #: first_jcc_union — waiting sets per probe
    #: first_jcc_union cutoff when the catalog serves rows from a mapped
    #: mirror file (``Catalog.rows_mapped``): each big-int mask read then
    #: unpacks packed words on demand, so the reference loop pays an
    #: unpack per pair while the vectorized form reads ``mirror.consistent``
    #: rows in place — the crossover collapses to "always vectorize".
    MIN_WAITING_MAPPED = 1
    MIN_TOMBSTONED = float("inf")  #: batch_contains_tombstoned — sets per sweep
    MIN_DEAD = 64  #: batch_contains_dead — sets per equality sweep
    MIN_EXTEND = 256  #: maximally_extend — catalogued tuples

    #: first_jcc_union evaluates this many waiting sets per array op; the
    #: serial loop stops at the first merge partner, so chunking bounds the
    #: wasted vector work to one chunk past the match.
    WAITING_CHUNK = 256

    def __init__(self):
        self._reference = BigintKernel()

    # -------------------------------------------------------------- #
    # subsumption (Line 11)
    # -------------------------------------------------------------- #
    def batch_contains_superset(
        self, group, probes, cache: Optional[dict] = None, cache_key=None
    ) -> TupleType[List[bool], int]:
        if not probes or not group:
            return [False] * len(probes), 0
        if len(group) < self.MIN_GROUP:
            return self._reference.batch_contains_superset(group, probes)
        first = probes[0]
        catalog = first._catalog if first._id_mask is not None else None
        if catalog is None or any(
            p._id_mask is None or p._catalog is not catalog for p in probes
        ):
            return self._reference.batch_contains_superset(group, probes)
        width = words_for(catalog.tuple_count)
        entry = cache.get(cache_key) if cache is not None else None
        if entry is None or entry.catalog is not catalog or entry.width != width:
            entry = _GroupMatrix(catalog, width)
            if cache is not None:
                cache[cache_key] = entry
        negated = entry.ensure(group)
        if negated is None:
            if cache is not None:
                cache.pop(cache_key, None)
            return self._reference.batch_contains_superset(group, probes)
        probe_rows = np.vstack([set_words(p, width) for p in probes])
        # subset[i, j]: no probe-i bit falls outside stored set j.
        subset = ~np.any(probe_rows[:, None, :] & negated[None, :, :], axis=2)
        size = len(group)
        answers: List[bool] = []
        scanned = 0
        for hits in subset:
            if hits.any():
                answers.append(True)
                # The serial loop breaks at the first superset: it scanned
                # that stored set and everything before it.
                scanned += int(np.argmax(hits)) + 1
            else:
                answers.append(False)
                scanned += size
        return answers, scanned

    # -------------------------------------------------------------- #
    # merge probe (Line 14)
    # -------------------------------------------------------------- #
    def first_jcc_union(self, waiting_list: Sequence, candidate) -> int:
        if not waiting_list:
            return -1
        catalog = candidate._catalog if candidate._id_mask is not None else None
        min_waiting = self.MIN_WAITING
        if catalog is not None and catalog.rows_mapped:
            min_waiting = self.MIN_WAITING_MAPPED
        if len(waiting_list) < min_waiting:
            return self._reference.first_jcc_union(waiting_list, candidate)
        if catalog is None or not candidate._tuples:
            return self._reference.first_jcc_union(waiting_list, candidate)
        mirror = catalog.packed_mirror()
        width = mirror.width
        gids = np.flatnonzero(unpack_bits(candidate._id_mask, mirror.n))
        negated = ~mirror.consistent[gids, :width]
        shifts = (gids & 63).astype(U64)
        words = gids >> 6
        candidate_words = set_words(candidate, width)
        relation_mask = candidate._relation_mask
        chunk_size = max(1, self.WAITING_CHUNK)
        for start in range(0, len(waiting_list), chunk_size):
            chunk = waiting_list[start : start + chunk_size]
            # Fill a preallocated chunk matrix (``vstack`` re-validates and
            # copies every row through ``atleast_2d`` — measurable at this
            # call rate) and validate each waiting set on the way: any set
            # that is uncatalogued or foreign drops the whole probe to the
            # reference, which recomputes from scratch (pure function).
            rows = np.empty((len(chunk), width), dtype=U64)
            for j, w in enumerate(chunk):
                if w._id_mask is None or w._catalog is not catalog or not w._tuples:
                    return self._reference.first_jcc_union(waiting_list, candidate)
                rows[j] = set_words(w, width)
            # pair_bad[j, c]: some member of waiting j is inconsistent with
            # candidate member c (the consistency matrix also charges a
            # second tuple of c's relation here).
            pair_bad = np.any(rows[:, None, :] & negated[None, :, :], axis=2)
            # A candidate member already inside the waiting set is not
            # incoming.
            member = ((rows[:, words] >> shifts) & _ONE).astype(bool)
            consistent = ~np.any(pair_bad & ~member, axis=1)
            shares = np.any(rows & candidate_words[None, :], axis=1)
            for j in np.flatnonzero(consistent):
                if shares[j] or (chunk[j]._adjacent_relations & relation_mask):
                    return start + int(j)
        return -1

    # -------------------------------------------------------------- #
    # absorb test (Lines 2-6)
    # -------------------------------------------------------------- #
    def batch_can_absorb(self, catalog, id_mask: int, relation_mask: int, gids):
        mirror = catalog.packed_mirror()
        width = mirror.width
        gids = np.asarray(gids, dtype=np.int64)
        if gids.size == 0:
            return np.zeros(0, dtype=bool)
        row = pack_int(id_mask, width)
        inconsistent = np.any(row[None, :] & ~mirror.consistent[gids, :width], axis=1)
        relation_ids = mirror.tuple_relation[gids]
        relation_row = pack_int(relation_mask, mirror.r_words)
        adjacent = np.any(mirror.adjacency[relation_ids] & relation_row[None, :], axis=1)
        return ~inconsistent & adjacent

    def maximally_extend(self, tuple_set, scanner, statistics=None):
        catalog = tuple_set.catalog
        if (
            catalog is None
            or tuple_set._id_mask is None
            or not tuple_set._tuples
            or catalog.tuple_count < self.MIN_EXTEND
        ):
            return self._reference.maximally_extend(tuple_set, scanner, statistics)
        mirror = catalog.packed_mirror()
        width = mirror.width
        current_words = pack_int(tuple_set._id_mask, width).copy()
        adjacent_words = pack_int(tuple_set._adjacent_relations, mirror.r_words).copy()
        absorbed = False
        packed_ok = True
        current = tuple_set  # maintained only after a fallback switch
        changed = True
        while changed:
            changed = False
            if statistics is not None:
                statistics.extension_passes += 1
            # One materialized pass per iteration keeps every scanner
            # counter (passes, tuple/block reads) identical to the serial
            # tuple-at-a-time loop.
            order = list(scanner.scan())
            if packed_ok:
                resolved = [catalog.id_of(t) for t in order]
                if any(gid is None for gid in resolved):
                    packed_ok = False
                    if absorbed:
                        current = _materialize(catalog, current_words)
            if not packed_ok:
                for t in order:
                    if t in current:
                        continue
                    if current.can_absorb(t):
                        current = current.with_tuple(t)
                        changed = True
                continue
            gids = np.asarray(resolved, dtype=np.int64)
            consistent = ~np.any(
                current_words[None, :] & ~mirror.consistent[gids, :width], axis=1
            )
            relation_ids = mirror.tuple_relation[gids]
            # t is connectable iff bit rel(t) is set in the union of the
            # members' adjacency masks (adjacency is symmetric).
            connected = take_bits(adjacent_words, relation_ids)
            member = take_bits(current_words, gids)
            absorbable = consistent & connected & ~member
            position = 0
            while True:
                ahead = np.flatnonzero(absorbable[position:])
                if ahead.size == 0:
                    break
                index = position + int(ahead[0])
                gid = int(gids[index])
                current_words[gid >> 6] |= _ONE << np.uint64(gid & 63)
                absorbed = True
                changed = True
                # The serial loop keeps walking the same pass with the grown
                # set: tighten consistency, widen adjacency, and continue
                # from the next scan position.
                consistent &= take_bits(mirror.consistent_row(gid), gids)
                relation_row = mirror.adjacency[int(relation_ids[index])]
                adjacent_words |= relation_row
                connected |= take_bits(relation_row, relation_ids)
                member[index] = True
                absorbable = consistent & connected & ~member
                position = index + 1
        if not packed_ok:
            return current
        if not absorbed:
            return tuple_set
        return _materialize(catalog, current_words)

    # -------------------------------------------------------------- #
    # retraction sweeps
    # -------------------------------------------------------------- #
    def batch_contains_tombstoned(self, sets, catalog) -> List[bool]:
        if not sets:
            return []
        if not catalog.dead_mask:
            return [False] * len(sets)
        if len(sets) < self.MIN_TOMBSTONED:
            return self._reference.batch_contains_tombstoned(sets, catalog)
        width = words_for(catalog.tuple_count)
        dead_row = pack_int(catalog.dead_mask, width)
        flags: List[bool] = []
        packed_indices: List[int] = []
        packed_rows: List[np.ndarray] = []
        for index, tuple_set in enumerate(sets):
            if tuple_set._id_mask is not None and tuple_set._catalog is catalog:
                flags.append(False)
                packed_indices.append(index)
                packed_rows.append(set_words(tuple_set, width))
            else:
                flags.append(tuple_set.contains_tombstoned(catalog))
        if packed_rows:
            hits = np.any(np.vstack(packed_rows) & dead_row[None, :], axis=1)
            for index, hit in zip(packed_indices, hits):
                flags[index] = bool(hit)
        return flags

    def batch_contains_dead(self, sets, dead) -> List[bool]:
        dead = dead if isinstance(dead, (set, frozenset)) else set(dead)
        if not dead or not sets:
            return [False] * len(sets)
        if len(sets) < self.MIN_DEAD:
            return self._reference.batch_contains_dead(sets, dead)
        first = sets[0]
        catalog = first._catalog if first._id_mask is not None else None
        if catalog is None or any(
            s._id_mask is None or s._catalog is not catalog for s in sets
        ):
            return self._reference.batch_contains_dead(sets, dead)
        mask = 0
        dead_mask = catalog.dead_mask
        for t in dead:
            gid = catalog.id_of(t)
            if gid is None:
                # No catalogued tuple equals t, so no interned set holds it.
                continue
            if not (dead_mask >> gid) & 1:
                # t maps to a *live* incarnation: equality-based eviction is
                # ambiguous in ids, so answer by tuple equality instead.
                return self._reference.batch_contains_dead(sets, dead)
            mask |= 1 << gid
        width = words_for(catalog.tuple_count)
        rows = np.vstack([set_words(s, width) for s in sets])
        flags = np.any(rows & pack_int(mask, width)[None, :], axis=1)
        # A set may hold an *older* tombstoned incarnation equal to a dead
        # tuple under a different id; such sets intersect the remaining
        # tombstone bits and are re-checked by equality.
        suspect_mask = dead_mask & ~mask
        if suspect_mask:
            suspects = np.flatnonzero(
                np.any(rows & pack_int(suspect_mask, width)[None, :], axis=1) & ~flags
            )
            for index in suspects:
                if any(t in dead for t in sets[int(index)]):
                    flags[int(index)] = True
        return [bool(flag) for flag in flags]

    def popcount(self, mask: int) -> int:
        return popcount_words(pack_int(mask, words_for(max(mask.bit_length(), 1))))


def _materialize(catalog, current_words: np.ndarray):
    from repro.core.tupleset import TupleSet

    members = catalog.tuples_of_mask(unpack_to_int(current_words))
    return TupleSet(members, catalog=catalog)
