"""Kernel selection: ``REPRO_KERNEL={bigint,packed}`` with NumPy gating.

The store layer, the batched/sharded/async backends and the streaming
retraction path route their inner loops through one process-wide
:class:`~repro.core.kernels.base.Kernel`:

* ``bigint`` — the executable reference: per-candidate Python loops over
  big-int bitmasks (:mod:`repro.core.kernels.bigint`);
* ``packed`` — vectorized batches over NumPy ``uint64`` packed-word arrays
  (:mod:`repro.core.kernels.packed`).

Selection order: an explicit :func:`set_kernel`/:func:`use_kernel` override,
then the ``REPRO_KERNEL`` environment variable, then the default — ``packed``
when NumPy is importable, ``bigint`` otherwise.  Requesting ``packed``
without NumPy warns once and falls back to ``bigint``; NumPy itself is an
optional extra (``pip install repro[fast]``).  Resolution is lazy and
cached; worker processes of the sharded backend pin their kernel explicitly
to the parent's choice, and re-resolve from the environment otherwise.

Both kernels are observationally identical (see the parity contract in
:mod:`repro.core.kernels.base`), so the switch is a performance choice,
never a correctness one — exactly like the execution-backend switch.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Optional

from repro.core.kernels.base import Kernel
from repro.core.kernels.bigint import BigintKernel

__all__ = [
    "KERNELS",
    "Kernel",
    "BigintKernel",
    "numpy_available",
    "resolve_kernel",
    "active_kernel",
    "set_kernel",
    "use_kernel",
    "tag_kernel",
]

#: The selectable kernel names, reference first.
KERNELS = ("bigint", "packed")

_active: Optional[Kernel] = None
_requested: Optional[str] = None
_numpy_checked: Optional[bool] = None


def numpy_available() -> bool:
    """Whether NumPy can be imported (cached after the first attempt)."""
    global _numpy_checked
    if _numpy_checked is None:
        try:
            import numpy  # noqa: F401
        except Exception:
            _numpy_checked = False
        else:
            _numpy_checked = True
    return _numpy_checked


def _build(name: str) -> Kernel:
    if name == "packed":
        from repro.core.kernels.packed import PackedKernel

        return PackedKernel()
    return BigintKernel()


def resolve_kernel(spec: Optional[str] = None) -> Kernel:
    """Build the kernel for ``spec`` (or the override/environment/default).

    Raises ``ValueError`` for an unknown name; warns and degrades to the
    big-int reference when ``packed`` is requested without NumPy.
    """
    name = spec or _requested or os.environ.get("REPRO_KERNEL") or ""
    if not name:
        name = "packed" if numpy_available() else "bigint"
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {KERNELS}")
    if name == "packed" and not numpy_available():
        warnings.warn(
            "the packed kernel requires NumPy (pip install repro[fast]); "
            "falling back to the big-int reference kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        name = "bigint"
    return _build(name)


def active_kernel() -> Kernel:
    """The process-wide kernel, resolved lazily and cached."""
    global _active
    if _active is None:
        _active = resolve_kernel()
    return _active


def set_kernel(spec: Optional[str] = None) -> Kernel:
    """Pin the process-wide kernel (``None`` re-resolves from the environment)."""
    global _active, _requested
    _requested = spec
    _active = resolve_kernel(spec)
    return _active


@contextmanager
def use_kernel(spec: Optional[str]):
    """Temporarily run under another kernel (tests and benchmarks)."""
    global _active, _requested
    saved_active, saved_requested = _active, _requested
    try:
        yield set_kernel(spec)
    finally:
        _active, _requested = saved_active, saved_requested


def tag_kernel(statistics) -> None:
    """Record the active kernel in ``FDStatistics.extras`` (parity smokes read it)."""
    if statistics is not None:
        statistics.extras["kernel"] = active_kernel().name
