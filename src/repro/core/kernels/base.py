"""The kernel interface: batched bitset inner loops with a parity contract.

The engine's hot path is a small set of *batch* operations over interned
:class:`~repro.core.tupleset.TupleSet` bitmasks: subsumption probes over a
whole anchor-bucket group (Line 11 of ``GetNextResult``), the first mergeable
partner in an ``Incomplete`` bucket (Line 14), the absorb test of the
maximal-extension loop (Lines 2-6), and the liveness sweeps of the streaming
retraction path.  A :class:`Kernel` packages one implementation of those
operations; two are provided:

* :class:`~repro.core.kernels.bigint.BigintKernel` — the executable
  reference, looping over Python big-int masks exactly the way the serial
  engine does;
* :class:`~repro.core.kernels.packed.PackedKernel` — the vectorized
  implementation over NumPy ``uint64`` packed-word arrays, evaluating an
  entire batch in a handful of array operations.

**Parity contract.**  Every kernel must be *observationally identical* to
the big-int reference: the same answers, in the same order, and — where an
operation reports work (``batch_contains_superset``'s scanned count) — the
same counter values the serial per-candidate loop would have produced.  The
randomized three-way suite in ``tests/core/test_tupleset_equivalence.py``
and ``tests/core/test_kernels.py`` holds kernels to this contract; the
byte-identical-stream assertions in ``benchmarks/bench_e13_kernels.py`` hold
it end to end.  A kernel that cannot handle an input (uninterned sets, sets
interned in different catalogs, uncatalogued tuples) must *fall back* to the
reference behaviour for that call, never guess.

To add a kernel: subclass :class:`Kernel`, implement the six operations,
and register the name in :data:`repro.core.kernels.KERNELS` with a branch in
``resolve_kernel``.  Selection is process-wide via the ``REPRO_KERNEL``
environment variable (see :mod:`repro.core.kernels`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple as TupleType


class Kernel:
    """One implementation of the batched bitset inner loops."""

    #: Selection name, e.g. ``"bigint"`` or ``"packed"``.
    name: str = "abstract"

    def batch_contains_superset(
        self, group, probes, cache: Optional[dict] = None, cache_key=None
    ) -> TupleType[List[bool], int]:
        """Line 11 for one relation-set group: is each probe ⊆ some stored set?

        ``group`` is one relation-set group of an anchor bucket (insertion
        order); ``probes`` are the not-yet-answered probes whose relation set
        is contained in the group's.  Returns ``(answers, scanned)`` where
        ``scanned`` counts exactly the subset tests the serial early-break
        loop performs: for each probe, the index of its first superset plus
        one, or the full group size on a miss.  ``cache``/``cache_key`` let
        the store memoize the group's packed matrix across calls; kernels
        without such state ignore them.
        """
        raise NotImplementedError

    def first_jcc_union(self, waiting_list: Sequence, candidate) -> int:
        """Line 14: index of the first waiting set with ``JCC(S ∪ T')``, or -1."""
        raise NotImplementedError

    def batch_can_absorb(self, catalog, id_mask: int, relation_mask: int, gids):
        """Lines 2-6 absorb test for many candidate tuples against one set.

        ``id_mask``/``relation_mask`` describe the (interned, non-empty) set;
        ``gids`` are catalogued candidate tuple ids.  Membership and the
        empty-set convention are the caller's business — this answers the
        pure consistency-and-adjacency test.
        """
        raise NotImplementedError

    def batch_contains_tombstoned(self, sets, catalog) -> List[bool]:
        """Per-set liveness sweep: does the set hold a tuple dead in ``catalog``?"""
        raise NotImplementedError

    def batch_contains_dead(self, sets, dead) -> List[bool]:
        """Per-set eviction sweep: does the set hold a tuple equal to one in ``dead``?"""
        raise NotImplementedError

    def maximally_extend(self, tuple_set, scanner, statistics=None):
        """Lines 2-6 of ``GetNextResult``: extend to a fixpoint, in scan order."""
        raise NotImplementedError

    def popcount(self, mask: int) -> int:
        """Population count of a bitmask."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
