"""Reference ``Complete``/``Incomplete`` containers (retained specification).

The paper stores both containers as linked lists and, in Section 7,
recommends replacing them with hash tables keyed by the member tuple of the
anchor relation ``R_i``.  The engine now runs on the unified, dual-indexed
store subsystem in :mod:`repro.core.store` (anchor-tuple buckets plus
relation-set groups, over the interned bitset
:class:`~repro.core.tupleset.TupleSet` representation).

This module keeps the original, straightforward implementations — the same
public interface, backed by plain lists and single-level hash buckets.  They
are retained deliberately:

* as the executable reference the randomized equivalence tests
  (``tests/core/test_tupleset_equivalence.py``) run side by side with the
  indexed store, and
* for callers and experiments that want the paper's literal linked-list
  behaviour.

Three containers are provided:

* :class:`CompleteStore` — already-printed results; answers "is ``T'``
  contained in some stored set?".
* :class:`ListIncompletePool` — the ``Incomplete`` list of ``IncrementalFD``;
  positional list semantics matching the paper's linked list.
* :class:`PriorityIncompletePool` — the ``Incomplete_i`` priority queues of
  ``PriorityIncrementalFD``; extraction by highest rank.

All containers count the tuple sets they scan in a :class:`PoolStatistics`
(shared with :mod:`repro.core.store`), which the benchmarks use as a
machine-independent work measure.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.relational.tuples import Tuple
from repro.core.tupleset import TupleSet

__all__ = [
    "PoolStatistics",
    "CompleteStore",
    "ListIncompletePool",
    "PriorityIncompletePool",
]


class PoolStatistics:
    """Work counters shared by all containers (used by the benchmark harness).

    ``sets_scanned`` is the headline measure: the number of stored tuple sets
    actually subjected to a subsumption or merge test.  ``bucket_probes``
    counts hash-index buckets / relation-set groups inspected on the way, and
    ``full_scans`` counts probes that traversed the whole container (no index
    or no anchor available).
    """

    __slots__ = (
        "sets_scanned",
        "additions",
        "removals",
        "replacements",
        "peak_size",
        "bucket_probes",
        "full_scans",
    )

    def __init__(self) -> None:
        self.sets_scanned = 0
        self.additions = 0
        self.removals = 0
        self.replacements = 0
        self.peak_size = 0
        self.bucket_probes = 0
        self.full_scans = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sets_scanned": self.sets_scanned,
            "additions": self.additions,
            "removals": self.removals,
            "replacements": self.replacements,
            "peak_size": self.peak_size,
            "bucket_probes": self.bucket_probes,
            "full_scans": self.full_scans,
        }

    def __repr__(self) -> str:
        rendered = ", ".join(f"{key}={value}" for key, value in self.as_dict().items())
        return f"PoolStatistics({rendered})"


class CompleteStore:
    """The ``Complete`` list: results already printed.

    Parameters
    ----------
    anchor_relation:
        Name of the relation ``R_i`` whose member tuple keys the hash index.
        Only used when ``use_index`` is true.  In the priority algorithm the
        store is shared by all indexes; the superset probe then passes the
        anchor tuple explicitly.
    use_index:
        When true, stored sets are additionally hashed by *every* member
        tuple, and superset probes restricted to the bucket of the probe's
        anchor tuple (Section 7 optimization).
    """

    def __init__(self, anchor_relation: Optional[str] = None, use_index: bool = False):
        self._anchor_relation = anchor_relation
        self._use_index = use_index
        self._sets: List[TupleSet] = []
        self._members = set()
        self._buckets: Dict[Tuple, List[TupleSet]] = {}
        self.statistics = PoolStatistics()

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[TupleSet]:
        return iter(self._sets)

    def __contains__(self, tuple_set: TupleSet) -> bool:
        return tuple_set in self._members

    def add(self, tuple_set: TupleSet) -> None:
        """Store a printed result."""
        self._sets.append(tuple_set)
        self._members.add(tuple_set)
        self.statistics.additions += 1
        self.statistics.peak_size = max(self.statistics.peak_size, len(self._sets))
        if self._use_index:
            for t in tuple_set:
                self._buckets.setdefault(t, []).append(tuple_set)

    def _candidates(self, probe: TupleSet, anchor: Optional[Tuple]) -> Iterable[TupleSet]:
        if self._use_index:
            key = anchor
            if key is None and self._anchor_relation is not None:
                key = probe.tuple_from(self._anchor_relation)
            if key is not None:
                return self._buckets.get(key, ())
            # Fall back to a full scan when no anchor tuple is available.
        return self._sets

    def contains_superset(self, probe: TupleSet, anchor: Optional[Tuple] = None) -> bool:
        """Line 11 of ``GetNextResult``: is ``probe`` contained in a stored set?"""
        for stored in self._candidates(probe, anchor):
            self.statistics.sets_scanned += 1
            if probe.issubset(stored):
                return True
        return False

    def as_list(self) -> List[TupleSet]:
        """The stored sets in insertion (printing) order."""
        return list(self._sets)


class ListIncompletePool:
    """The ``Incomplete`` list of ``IncrementalFD``, with positional semantics.

    The list behaves like the paper's linked list: ``pop`` removes the head,
    ``replace`` keeps the replaced set's position, and newly inserted sets go
    where the ``extraction`` policy dictates.

    Parameters
    ----------
    anchor_relation:
        Name of ``R_i``; every member set contains exactly one tuple of this
        relation, which keys the optional hash index.
    use_index:
        Enable the Section 7 hash index for the merge probe of Line 14.
    extraction:
        ``"paper"`` (default) reproduces the traversal of the paper's worked
        example (Table 3): the head is removed and the candidates generated
        while processing it are inserted at the head, in generation order, so
        they are processed before older entries.  ``"fifo"`` appends new
        candidates at the tail; ``"lifo"`` removes from the tail.  The choice
        does not affect which tuple sets are produced, only their order.
    """

    EXTRACTION_ORDERS = ("paper", "fifo", "lifo")

    def __init__(
        self,
        anchor_relation: str,
        use_index: bool = False,
        extraction: str = "paper",
    ):
        if extraction not in self.EXTRACTION_ORDERS:
            raise ValueError(
                f"unknown extraction order {extraction!r}; expected one of {self.EXTRACTION_ORDERS}"
            )
        self._anchor_relation = anchor_relation
        self._use_index = use_index
        self._extraction = extraction
        self._items: List[TupleSet] = []
        self._members = set()
        self._insert_cursor = 0
        self._buckets: Dict[Tuple, List[TupleSet]] = {}
        self.statistics = PoolStatistics()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[TupleSet]:
        return iter(list(self._items))

    def __contains__(self, tuple_set: TupleSet) -> bool:
        return tuple_set in self._members

    def _anchor_of(self, tuple_set: TupleSet) -> Optional[Tuple]:
        return tuple_set.tuple_from(self._anchor_relation)

    def _index_add(self, tuple_set: TupleSet) -> None:
        if self._use_index:
            anchor = self._anchor_of(tuple_set)
            if anchor is not None:
                self._buckets.setdefault(anchor, []).append(tuple_set)

    def _index_discard(self, tuple_set: TupleSet) -> None:
        if self._use_index:
            anchor = self._anchor_of(tuple_set)
            if anchor is not None:
                bucket = self._buckets.get(anchor)
                if bucket is not None and tuple_set in bucket:
                    bucket.remove(tuple_set)

    def add(self, tuple_set: TupleSet) -> None:
        """Insert a tuple set (Line 18 of ``GetNextResult`` / initialization)."""
        if tuple_set in self._members:
            return
        if self._extraction == "paper":
            self._items.insert(self._insert_cursor, tuple_set)
            self._insert_cursor += 1
        else:
            self._items.append(tuple_set)
        self._members.add(tuple_set)
        self.statistics.additions += 1
        self.statistics.peak_size = max(self.statistics.peak_size, len(self._items))
        self._index_add(tuple_set)

    def pop(self) -> TupleSet:
        """Remove and return the next tuple set to extend (Line 1)."""
        if not self._items:
            raise IndexError("pop from an empty Incomplete pool")
        if self._extraction == "lifo":
            tuple_set = self._items.pop()
        else:
            tuple_set = self._items.pop(0)
        self._members.discard(tuple_set)
        self._index_discard(tuple_set)
        self._insert_cursor = 0
        self.statistics.removals += 1
        return tuple_set

    def candidates(self, probe: TupleSet) -> List[TupleSet]:
        """Member sets that might merge with ``probe`` (Line 14 probe).

        With the index enabled only the bucket of ``probe``'s anchor tuple is
        returned; a set with a different ``R_i`` tuple can never merge with
        ``probe`` because their union would hold two tuples of ``R_i``.
        """
        if self._use_index:
            anchor = self._anchor_of(probe)
            if anchor is not None:
                bucket = list(self._buckets.get(anchor, ()))
                self.statistics.sets_scanned += len(bucket)
                return bucket
        live = list(self._items)
        self.statistics.sets_scanned += len(live)
        return live

    def replace(self, old: TupleSet, new: TupleSet) -> None:
        """Replace ``old`` by ``new`` (Line 15), in place."""
        if old not in self._members:
            raise KeyError(f"{old!r} is not in the Incomplete pool")
        position = self._items.index(old)
        self._members.discard(old)
        self._index_discard(old)
        self.statistics.replacements += 1
        if new in self._members:
            # The union already exists elsewhere in the list; just drop ``old``.
            del self._items[position]
            if position < self._insert_cursor:
                self._insert_cursor -= 1
            return
        self._items[position] = new
        self._members.add(new)
        self._index_add(new)

    def discard_containing(self, dead_tuples) -> int:
        """Evict every queued set holding a dead tuple (streaming deletion).

        A queued set containing a deleted tuple can never extend into a
        result of the post-deletion database; it is dropped from the list,
        the membership set and the index in one sweep, without touching the
        surviving members.  Returns the number of sets evicted.
        """
        dead = set(dead_tuples)
        if not dead or not self._items:
            return 0
        from repro.core.kernels import active_kernel

        flags = active_kernel().batch_contains_dead(self._items, dead)
        kept: List[TupleSet] = []
        evicted = 0
        for tuple_set, hit in zip(self._items, flags):
            if hit:
                evicted += 1
                self._members.discard(tuple_set)
                self._index_discard(tuple_set)
                self.statistics.removals += 1
            else:
                kept.append(tuple_set)
        if evicted:
            self._items = kept
            self._insert_cursor = 0
        return evicted

    def as_list(self) -> List[TupleSet]:
        """The live member sets in list order (used by the trace harness)."""
        return list(self._items)



class PriorityIncompletePool:
    """The ``Incomplete_i`` priority queue of ``PriorityIncrementalFD``.

    Extraction returns the member set with the highest rank according to the
    supplied ranking function.  Ties are broken by insertion order, which
    keeps runs deterministic.
    """

    def __init__(
        self,
        anchor_relation: str,
        ranking: Callable[[TupleSet], float],
        use_index: bool = False,
    ):
        self._anchor_relation = anchor_relation
        self._ranking = ranking
        self._use_index = use_index
        self._heap: List = []
        self._members = set()
        self._counter = itertools.count()
        self._buckets: Dict[Tuple, List[TupleSet]] = {}
        self.statistics = PoolStatistics()

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self) -> Iterator[TupleSet]:
        return iter(list(self._members))

    def __contains__(self, tuple_set: TupleSet) -> bool:
        return tuple_set in self._members

    def _anchor_of(self, tuple_set: TupleSet) -> Optional[Tuple]:
        return tuple_set.tuple_from(self._anchor_relation)

    def add(self, tuple_set: TupleSet) -> None:
        """Insert a tuple set, keyed by its rank."""
        if tuple_set in self._members:
            return
        score = self._ranking(tuple_set)
        heapq.heappush(self._heap, (-score, next(self._counter), tuple_set))
        self._members.add(tuple_set)
        self.statistics.additions += 1
        self.statistics.peak_size = max(self.statistics.peak_size, len(self._members))
        if self._use_index:
            anchor = self._anchor_of(tuple_set)
            if anchor is not None:
                self._buckets.setdefault(anchor, []).append(tuple_set)

    def _prune(self) -> None:
        while self._heap and self._heap[0][2] not in self._members:
            heapq.heappop(self._heap)

    def peek_score(self) -> Optional[float]:
        """The rank of the highest-ranking member set, or ``None`` when empty."""
        self._prune()
        if not self._heap:
            return None
        return -self._heap[0][0]

    def peek(self) -> Optional[TupleSet]:
        """The highest-ranking member set, or ``None`` when empty."""
        self._prune()
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> TupleSet:
        """Remove and return the highest-ranking member set."""
        self._prune()
        if not self._heap:
            raise IndexError("pop from an empty priority Incomplete pool")
        _, _, tuple_set = heapq.heappop(self._heap)
        self._discard(tuple_set)
        self.statistics.removals += 1
        return tuple_set

    def _discard(self, tuple_set: TupleSet) -> None:
        self._members.discard(tuple_set)
        if self._use_index:
            anchor = self._anchor_of(tuple_set)
            if anchor is not None:
                bucket = self._buckets.get(anchor)
                if bucket is not None and tuple_set in bucket:
                    bucket.remove(tuple_set)

    def candidates(self, probe: TupleSet) -> List[TupleSet]:
        """Member sets that might merge with ``probe`` (see :class:`ListIncompletePool`)."""
        if self._use_index:
            anchor = self._anchor_of(probe)
            if anchor is not None:
                bucket = [s for s in self._buckets.get(anchor, ()) if s in self._members]
                self.statistics.sets_scanned += len(bucket)
                return bucket
        live = list(self._members)
        self.statistics.sets_scanned += len(live)
        return live

    def replace(self, old: TupleSet, new: TupleSet) -> None:
        """Replace ``old`` by ``new``; the new set is re-ranked."""
        if old not in self._members:
            raise KeyError(f"{old!r} is not in the Incomplete pool")
        self._discard(old)
        self.statistics.replacements += 1
        if new not in self._members:
            score = self._ranking(new)
            heapq.heappush(self._heap, (-score, next(self._counter), new))
            self._members.add(new)
            if self._use_index:
                anchor = self._anchor_of(new)
                if anchor is not None:
                    self._buckets.setdefault(anchor, []).append(new)

    def discard_containing(self, dead_tuples) -> int:
        """Evict every queued set holding a dead tuple (streaming deletion).

        See :meth:`ListIncompletePool.discard_containing`; the heap entries
        of evicted sets are pruned lazily, as for :meth:`pop`.
        """
        dead = set(dead_tuples)
        if not dead or not self._members:
            return 0
        from repro.core.kernels import active_kernel

        members = list(self._members)
        flags = active_kernel().batch_contains_dead(members, dead)
        victims = [tuple_set for tuple_set, hit in zip(members, flags) if hit]
        for tuple_set in victims:
            self._discard(tuple_set)
            self.statistics.removals += 1
        return len(victims)

    def as_list(self) -> List[TupleSet]:
        """The live member sets in descending rank order."""
        ordered = sorted(
            self._members, key=lambda tuple_set: (-self._ranking(tuple_set), tuple_set.sort_key())
        )
        return ordered
