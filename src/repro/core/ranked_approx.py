"""Ranked retrieval of approximate full disjunctions.

The end of Section 6 notes that ``ApproxIncrementalFD`` "can also be adapted
to return tuples in ranking order, for a monotonically c-determined ranking
function … by adapting it in the spirit of PriorityIncrementalFD".  This
module is that adaptation: per-relation priority queues seeded with every
connected tuple set of size at most ``c`` that qualifies under the approximate
join function, a shared ``Complete`` store, and extraction by highest rank,
with ``ApproxGetNextResult`` doing the per-step work.

The correctness ingredients are the same as for the exact ranked algorithm:

* every member of ``AFD(R, A, τ)`` has a connected witness subset of size at
  most ``c`` with the same rank (c-determination); the witness qualifies under
  ``A`` because ``A`` is acceptable, so it is present in some queue after
  initialization;
* monotonicity of the ranking makes the rank of a produced (maximal) result
  at least the rank of the queue entry it grew from, so results come out in
  non-increasing rank order (the argument of Lemma 5.4).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple as TupleType

from repro.relational.database import Database
from repro.core.approx import approx_get_next_result
from repro.core.approx_join import ApproximateJoinFunction
from repro.core.incremental import FDStatistics
from repro.core.store import CompleteStore, PriorityIncompletePool, record_store_statistics
from repro.core.ranking import RankingFunction
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet

#: A ranked approximate result: the tuple set with its rank.
RankedResult = TupleType[TupleSet, float]


def enumerate_qualifying_subsets(
    database: Database,
    anchor_name: str,
    max_size: int,
    join_function: ApproximateJoinFunction,
    threshold: float,
    catalog=None,
) -> Iterator[TupleSet]:
    """Connected tuple sets of size ≤ ``max_size`` containing an ``R_i`` tuple with ``A ≥ τ``.

    Because ``A`` is acceptable (anti-monotone on connected sets), growing
    sets one tuple at a time and pruning as soon as the value drops below the
    threshold enumerates every qualifying set.
    """
    all_tuples = list(database.tuples())
    seen: Set[TupleSet] = set()
    frontier: List[TupleSet] = []
    for t in database.relation(anchor_name):
        singleton = TupleSet.singleton(t, catalog=catalog)
        if join_function(singleton) >= threshold:
            seen.add(singleton)
            frontier.append(singleton)
            yield singleton
    for _ in range(max_size - 1):
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for t in all_tuples:
                if t in current or t.relation_name in current.relations:
                    continue
                grown = current.with_tuple(t)
                if grown in seen or not grown.is_connected:
                    continue
                if join_function(grown) < threshold:
                    continue
                seen.add(grown)
                next_frontier.append(grown)
                yield grown
        frontier = next_frontier


def _merge_queue_members(
    pool: PriorityIncompletePool,
    join_function: ApproximateJoinFunction,
    threshold: float,
) -> None:
    """Merge queue members whose union still qualifies, to a fixpoint."""
    changed = True
    while changed:
        changed = False
        members: List[TupleSet] = list(pool)
        for index, first in enumerate(members):
            if first not in pool:
                continue
            for second in members[index + 1:]:
                if second not in pool or first not in pool:
                    continue
                if first == second:
                    continue
                union = first.union(second)
                if union.is_connected and join_function(union) >= threshold:
                    pool.replace(first, union)
                    if second in pool and second != union:
                        pool.replace(second, union)
                    changed = True
                    first = union


def ranked_approx_full_disjunction(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
    ranking: RankingFunction,
    k: Optional[int] = None,
    rank_threshold: Optional[float] = None,
    use_index: bool = False,
    statistics: Optional[FDStatistics] = None,
    backend=None,
) -> Iterator[RankedResult]:
    """Generate ``AFD(R, A, τ)`` in non-increasing rank order.

    Parameters mirror :func:`repro.core.priority.priority_incremental_fd`,
    with the approximate join function and its threshold added.  ``k`` limits
    the number of results; ``rank_threshold`` stops once no remaining result
    can rank that high (the approximate analogue of Remark 5.6).  ``backend``
    schedules each step through the execution layer (:mod:`repro.exec`); the
    output order is backend-independent.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if not (0.0 <= threshold <= 1.0):
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    ranking.require_monotonically_c_determined()
    if k == 0:
        return
    if backend is None:
        next_result = approx_get_next_result
    else:
        from repro.exec import resolve_backend

        next_result = resolve_backend(backend).approx_next_result

    catalog = database.catalog()
    pools: List[PriorityIncompletePool] = []
    anchors = [relation.name for relation in database.relations]
    for relation in database.relations:
        pool = PriorityIncompletePool(relation.name, ranking, use_index=use_index)
        for tuple_set in enumerate_qualifying_subsets(
            database, relation.name, ranking.c, join_function, threshold, catalog=catalog
        ):
            pool.add(tuple_set)
        _merge_queue_members(pool, join_function, threshold)
        pools.append(pool)

    complete = CompleteStore(anchor_relation=None, use_index=use_index)
    scanner = TupleScanner(database)

    try:
        yield from _ranked_approx_loop(
            database, join_function, threshold, ranking, pools, anchors,
            complete, scanner, k, rank_threshold, statistics, next_result,
        )
    finally:
        # Record store counters on every exit — exhaustion, the k or
        # rank-threshold stop, or an abandoned generator — exactly once.
        record_store_statistics(
            statistics, ("complete", complete), *(("incomplete", p) for p in pools)
        )


def _ranked_approx_loop(
    database,
    join_function,
    threshold,
    ranking,
    pools,
    anchors,
    complete,
    scanner,
    k,
    rank_threshold,
    statistics,
    next_result=approx_get_next_result,
):
    printed = 0
    while True:
        best_index = None
        best_score = None
        for index, pool in enumerate(pools):
            score = pool.peek_score()
            if score is None:
                continue
            if best_score is None or score > best_score:
                best_score = score
                best_index = index
        if best_index is None:
            return
        if rank_threshold is not None and best_score < rank_threshold:
            return

        result = next_result(
            database,
            anchors[best_index],
            join_function,
            threshold,
            pools[best_index],
            complete,
            scanner,
            statistics,
        )
        if result in complete:
            continue
        complete.add(result)
        if statistics is not None:
            statistics.results += 1

        score = ranking(result)
        if rank_threshold is not None and score < rank_threshold:
            continue
        yield result, score
        printed += 1
        if k is not None and printed >= k:
            return


def approx_top_k(
    database: Database,
    join_function: ApproximateJoinFunction,
    threshold: float,
    ranking: RankingFunction,
    k: int,
    use_index: bool = False,
    backend=None,
) -> List[RankedResult]:
    """The top-``(k, f)`` problem over the ``(A, τ)``-approximate full disjunction."""
    return list(
        ranked_approx_full_disjunction(
            database, join_function, threshold, ranking, k=k, use_index=use_index,
            backend=backend,
        )
    )
