"""The paper's sorted triple-list representation of tuple sets.

Right before Theorem 4.8 the paper describes the data structure it uses to
store tuple sets: a linked list of triples ``(r, a, v)`` — relation name,
attribute, value — one triple per attribute of each member tuple, sorted by
ascending attribute name and, within equal attributes, by ascending relation
name.  Together with the per-relation attribute-position table
(:class:`~repro.relational.index.AttributePositions`) a singleton tuple set
can be built in linear time with a bucket sort, and the two linear-merge
operations used in the complexity analysis become possible:

* :func:`merge_join_consistent` — decide in one pass over two sorted lists
  whether their union is join consistent and whether they share an attribute;
* :func:`merge_triples` — produce the sorted triple list of the union.

The modern :class:`~repro.core.tupleset.TupleSet` class is the
representation the rest of the library uses; this module exists to reproduce
the paper's structure faithfully, to cross-check it against ``TupleSet`` in
tests, and to compare the two in a micro-benchmark.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Tuple as TupleType

from repro.relational.index import AttributePositions
from repro.relational.nulls import is_null
from repro.relational.tuples import Tuple
from repro.core.tupleset import TupleSet


class Triple(NamedTuple):
    """One ``(relation, attribute, value)`` entry of the sorted representation."""

    relation: str
    attribute: str
    value: object


class TripleList:
    """A tuple set stored as the paper's sorted list of triples."""

    __slots__ = ("_triples",)

    def __init__(self, triples: Iterable[Triple]):
        self._triples: TupleType[Triple, ...] = tuple(triples)

    @property
    def triples(self) -> TupleType[Triple, ...]:
        return self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self):
        return iter(self._triples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleList):
            return NotImplemented
        return self._triples == other._triples

    def __hash__(self) -> int:
        return hash(self._triples)

    def __repr__(self) -> str:
        return f"TripleList({list(self._triples)!r})"

    def relations(self) -> List[str]:
        """The distinct relation names, in first-appearance order."""
        seen = []
        for triple in self._triples:
            if triple.relation not in seen:
                seen.append(triple.relation)
        return seen

    @classmethod
    def from_singleton(
        cls, t: Tuple, positions: Optional[AttributePositions] = None
    ) -> "TripleList":
        """Build the triple list of ``{t}`` in linear time.

        When the :class:`AttributePositions` auxiliary structure is supplied
        the attributes are placed with a bucket sort, as in the paper;
        otherwise they are sorted directly (the observable result is the same).
        """
        if positions is not None and t.relation_name in positions:
            buckets: List[Optional[Triple]] = [None] * len(t.schema)
            for attribute, value in t.items():
                buckets[positions.position(t.relation_name, attribute)] = Triple(
                    t.relation_name, attribute, value
                )
            return cls(triple for triple in buckets if triple is not None)
        ordered = sorted(t.items(), key=lambda item: item[0])
        return cls(Triple(t.relation_name, attribute, value) for attribute, value in ordered)

    @classmethod
    def from_tuple_set(
        cls, tuple_set: TupleSet, positions: Optional[AttributePositions] = None
    ) -> "TripleList":
        """Build the triple list of an arbitrary tuple set."""
        singletons = [
            cls.from_singleton(t, positions)
            for t in sorted(tuple_set, key=lambda t: (t.relation_name, t.label))
        ]
        merged = cls(())
        for singleton in singletons:
            merged = merge_triples(merged, singleton)
        return merged


def merge_triples(first: TripleList, second: TripleList) -> TripleList:
    """Merge two sorted triple lists into the sorted triple list of the union."""
    result: List[Triple] = []
    i, j = 0, 0
    a, b = first.triples, second.triples
    while i < len(a) and j < len(b):
        if (a[i].attribute, a[i].relation) <= (b[j].attribute, b[j].relation):
            result.append(a[i])
            i += 1
        else:
            result.append(b[j])
            j += 1
    result.extend(a[i:])
    result.extend(b[j:])
    # Duplicate triples (same relation & attribute) arise when the two lists
    # represent overlapping tuple sets; keep a single copy.
    deduplicated: List[Triple] = []
    for triple in result:
        if deduplicated and (
            deduplicated[-1].relation == triple.relation
            and deduplicated[-1].attribute == triple.attribute
        ):
            continue
        deduplicated.append(triple)
    return TripleList(deduplicated)


def merge_join_consistent(first: TripleList, second: TripleList) -> TupleType[bool, bool]:
    """Single linear pass deciding join consistency and attribute sharing.

    Returns ``(join_consistent, shares_attribute)`` for the union of the two
    represented tuple sets, exactly the two facts the Theorem 4.8 analysis
    extracts with one pass over ``S`` and ``T'``:

    * the union is join inconsistent as soon as the same attribute appears on
      both sides with different values, or with a null value on either side;
    * the union is connected (given that both operands are JCC and that no
      relation contributes two distinct tuples) iff they share an attribute.
    """
    shares_attribute = False
    join_consistent = True
    by_attribute_first = {}
    for triple in first.triples:
        by_attribute_first.setdefault(triple.attribute, []).append(triple)
    for triple in second.triples:
        if triple.attribute not in by_attribute_first:
            continue
        shares_attribute = True
        for mine in by_attribute_first[triple.attribute]:
            if mine.relation == triple.relation and mine.value == triple.value:
                continue
            if is_null(mine.value) or is_null(triple.value) or mine.value != triple.value:
                join_consistent = False
    return join_consistent, shares_attribute
