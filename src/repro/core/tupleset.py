"""Tuple sets and the JCC (join consistent and connected) predicate.

A *tuple set* ``T ⊆ Tuples(R)`` is the unit the paper's algorithms work with.
``T`` is *connected* when (i) no two tuples of ``T`` belong to the same
relation and (ii) the relations of the tuples of ``T`` form a connected graph
(two relations are adjacent when their schemas share an attribute).  ``T`` is
*join consistent* when every two tuples agree, with a non-null value, on every
attribute their schemas share.  ``JCC(T)`` holds when both do (Section 2).

:class:`TupleSet` is immutable and caches everything needed to answer the
operations the algorithms perform in their inner loops:

* ``is_jcc`` — the JCC predicate for the set itself;
* ``union_is_jcc(other)`` — the line-14 test ``JCC(S ∪ T')``;
* ``can_absorb(t)`` — the extension test ``JCC(T ∪ {t})``;
* ``maximal_jcc_subset_with(t_b)`` — footnote 3: the unique maximal subset of
  ``T ∪ {t_b}`` that contains ``t_b`` and is join consistent and connected.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple as TupleType

from repro.relational.nulls import is_null
from repro.relational.tuples import Tuple


class TupleSet:
    """An immutable set of tuples, at most one per relation in the JCC case.

    The constructor accepts any iterable of tuples; consistency and
    connectivity are *computed*, not assumed, so the class can also represent
    candidate sets that fail the JCC test.
    """

    __slots__ = (
        "_tuples",
        "_by_relation",
        "_relation_conflict",
        "_attribute_values",
        "_join_consistent",
        "_connected",
        "_hash",
    )

    def __init__(self, tuples: Iterable[Tuple]):
        frozen = frozenset(tuples)
        self._tuples: FrozenSet[Tuple] = frozen
        self._hash = hash(frozen)

        by_relation: Dict[str, Tuple] = {}
        relation_conflict = False
        for t in frozen:
            if t.relation_name in by_relation:
                relation_conflict = True
            by_relation[t.relation_name] = t
        self._by_relation = by_relation
        self._relation_conflict = relation_conflict

        # attribute -> single value map; sound for join-consistent sets, and
        # the computation simultaneously decides join consistency.
        attribute_values: Dict[str, object] = {}
        join_consistent = True
        for t in frozen:
            for attribute, value in t.items():
                if attribute in attribute_values:
                    existing = attribute_values[attribute]
                    if is_null(existing) or is_null(value) or existing != value:
                        join_consistent = False
                    if is_null(existing) and not is_null(value):
                        attribute_values[attribute] = value
                else:
                    attribute_values[attribute] = value
        self._attribute_values = attribute_values
        self._join_consistent = join_consistent and not relation_conflict
        self._connected: Optional[bool] = None  # computed lazily

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, *tuples: Tuple) -> "TupleSet":
        """Build a tuple set from tuples given as positional arguments."""
        return cls(tuples)

    @classmethod
    def singleton(cls, t: Tuple) -> "TupleSet":
        """Build the singleton tuple set ``{t}``."""
        return cls((t,))

    @classmethod
    def empty(cls) -> "TupleSet":
        """The empty tuple set (connected and join consistent by convention)."""
        return cls(())

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def tuples(self) -> FrozenSet[Tuple]:
        """The member tuples."""
        return self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: object) -> bool:
        return t in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleSet):
            return NotImplemented
        return self._tuples == other._tuples

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "TupleSet") -> bool:
        return self._tuples <= other._tuples

    def __lt__(self, other: "TupleSet") -> bool:
        return self._tuples < other._tuples

    def issubset(self, other: "TupleSet") -> bool:
        """Return ``True`` when every tuple of this set belongs to ``other``."""
        return self._tuples <= other._tuples

    def issuperset(self, other: "TupleSet") -> bool:
        """Return ``True`` when this set contains every tuple of ``other``."""
        return self._tuples >= other._tuples

    def __repr__(self) -> str:
        labels = ", ".join(sorted(t.label for t in self._tuples))
        return "{" + labels + "}"

    def labels(self) -> FrozenSet[str]:
        """The labels of the member tuples, as a frozenset (handy in tests)."""
        return frozenset(t.label for t in self._tuples)

    def sort_key(self) -> TupleType:
        """A deterministic ordering key (by sorted member labels)."""
        return tuple(sorted((t.relation_name, t.label) for t in self._tuples))

    def total_size(self) -> int:
        """Size measure in the spirit of the paper's ``f``: attribute cells of all members."""
        return sum(len(t.schema) for t in self._tuples)

    # ------------------------------------------------------------------ #
    # relations and attributes
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> FrozenSet[str]:
        """The names of the relations represented in the set."""
        return frozenset(self._by_relation)

    def tuple_from(self, relation_name: str) -> Optional[Tuple]:
        """The member tuple of ``relation_name`` or ``None``.

        When the set (illegally) holds several tuples of the same relation an
        arbitrary one is returned; JCC sets hold at most one.
        """
        return self._by_relation.get(relation_name)

    def contains_tuple_from(self, relation_name: str) -> bool:
        """Return ``True`` when some member tuple belongs to ``relation_name``."""
        return relation_name in self._by_relation

    @property
    def attributes(self) -> FrozenSet[str]:
        """All attributes appearing in the schemas of member tuples."""
        return frozenset(self._attribute_values)

    def attribute_value(self, attribute: str) -> object:
        """The (merged) value of ``attribute`` in the set.

        Only meaningful for join-consistent sets, where all members sharing
        the attribute agree on one non-null value.
        """
        return self._attribute_values[attribute]

    # ------------------------------------------------------------------ #
    # the JCC predicate
    # ------------------------------------------------------------------ #
    @property
    def is_join_consistent(self) -> bool:
        """Join consistency of the set (pairwise agreement on shared attributes).

        A set with two distinct tuples of the same relation is reported as
        inconsistent, because such a set can never be part of a full
        disjunction and the cheap single-value cache would be unsound for it.
        """
        return self._join_consistent

    @property
    def is_connected(self) -> bool:
        """Connectivity of the set, per the paper's definition.

        The empty set and singletons are connected.  A set with two tuples of
        the same relation is not connected (condition (i) of the definition).
        """
        if self._connected is None:
            self._connected = self._compute_connected()
        return self._connected

    def _compute_connected(self) -> bool:
        if self._relation_conflict:
            return False
        if len(self._tuples) <= 1:
            return True
        schemas = {name: t.schema for name, t in self._by_relation.items()}
        names = list(schemas)
        start = names[0]
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for other in names:
                if other not in seen and schemas[current].connects_to(schemas[other]):
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(names)

    @property
    def is_jcc(self) -> bool:
        """``JCC(T)``: join consistent and connected."""
        return self._join_consistent and self.is_connected

    # ------------------------------------------------------------------ #
    # derived sets
    # ------------------------------------------------------------------ #
    def with_tuple(self, t: Tuple) -> "TupleSet":
        """Return ``T ∪ {t}`` as a new tuple set."""
        if t in self._tuples:
            return self
        return TupleSet(self._tuples | {t})

    def union(self, other: "TupleSet") -> "TupleSet":
        """Return ``T ∪ S`` as a new tuple set."""
        return TupleSet(self._tuples | other._tuples)

    def difference(self, other: "TupleSet") -> "TupleSet":
        """Return ``T \\ S`` as a new tuple set."""
        return TupleSet(self._tuples - other._tuples)

    def restrict_to_relations(self, relation_names: Iterable[str]) -> "TupleSet":
        """Return the subset of member tuples belonging to the given relations."""
        wanted = set(relation_names)
        return TupleSet(t for t in self._tuples if t.relation_name in wanted)

    # ------------------------------------------------------------------ #
    # inner-loop tests
    # ------------------------------------------------------------------ #
    def can_absorb(self, t: Tuple) -> bool:
        """Return ``True`` when ``JCC(T ∪ {t})`` holds, assuming ``JCC(T)``.

        This is the test of the maximal-extension loop (Lines 2–6 of
        ``GetNextResult``).  For the empty set it reduces to ``True`` (a
        singleton is always JCC).
        """
        if t in self._tuples:
            return True
        if not self._tuples:
            return True
        if t.relation_name in self._by_relation:
            return False
        # Join consistency of the new tuple against the merged attribute map.
        connected = False
        for attribute, value in t.items():
            if attribute in self._attribute_values:
                connected = True
                existing = self._attribute_values[attribute]
                if is_null(existing) or is_null(value) or existing != value:
                    return False
        # Connectivity: t's relation must share an attribute with some member
        # relation.  Sharing an attribute with the *merged* attribute map is
        # exactly that, because the map's keys are the union of member schemas.
        return connected

    def union_is_jcc(self, other: "TupleSet") -> bool:
        """Return ``True`` when ``JCC(T ∪ S)`` holds, assuming both are JCC.

        This is the test of Line 14 of ``GetNextResult``.  The fast path
        follows the complexity analysis of Theorem 4.8: compare the merged
        attribute maps of the two sets in a single pass.  The fast path is
        conclusive whenever every shared attribute agrees with a non-null
        value; a disagreement involving a null needs the exact pairwise check
        because the null may be carried by a tuple that belongs to *both*
        sets (tuples never constrain themselves).

        Connectivity of the union holds exactly when the two (internally
        connected) operands share a member tuple or some cross pair of tuples
        shares an attribute.
        """
        if not self._tuples:
            return other.is_jcc
        if not other._tuples:
            return self.is_jcc
        shares_member = False
        for relation_name, t in other._by_relation.items():
            mine = self._by_relation.get(relation_name)
            if mine is not None:
                if mine != t:
                    return False  # two distinct tuples of the same relation
                shares_member = True

        # Fast path over the merged attribute maps.
        needs_pairwise = False
        shared_attribute = False
        for attribute, value in other._attribute_values.items():
            if attribute in self._attribute_values:
                shared_attribute = True
                existing = self._attribute_values[attribute]
                if is_null(existing) or is_null(value) or existing != value:
                    needs_pairwise = True
                    break
        if not needs_pairwise:
            if shared_attribute or shares_member:
                return True
            return False

        # Exact check: every cross pair of *distinct* tuples must agree with a
        # non-null value on every attribute their schemas share.
        cross_share = shares_member
        for mine in self._tuples:
            for theirs in other._tuples:
                if mine == theirs:
                    continue
                shared = mine.schema.shared_attributes(theirs.schema)
                if shared:
                    cross_share = True
                for attribute in shared:
                    left = mine[attribute]
                    right = theirs[attribute]
                    if is_null(left) or is_null(right) or left != right:
                        return False
        return cross_share

    def maximal_jcc_subset_with(self, t_b: Tuple) -> "TupleSet":
        """Footnote 3: the unique maximal JCC subset of ``T ∪ {t_b}`` containing ``t_b``.

        Obtained by (1) dropping every member tuple that is not join
        consistent with ``t_b`` (in particular any member of ``t_b``'s own
        relation), then (2) keeping only the tuples whose relations lie in the
        connected component of ``t_b``'s relation within the remaining
        relation graph.
        """
        survivors: List[Tuple] = [
            t
            for t in self._tuples
            if t.relation_name != t_b.relation_name and t.join_consistent_with(t_b)
        ]
        if not survivors:
            return TupleSet.singleton(t_b)
        # Connected component of t_b's relation among the surviving relations.
        schemas = {t.relation_name: t.schema for t in survivors}
        schemas[t_b.relation_name] = t_b.schema
        component = {t_b.relation_name}
        frontier = deque([t_b.relation_name])
        while frontier:
            current = frontier.popleft()
            for name, schema in schemas.items():
                if name not in component and schemas[current].connects_to(schema):
                    component.add(name)
                    frontier.append(name)
        kept = [t for t in survivors if t.relation_name in component]
        kept.append(t_b)
        return TupleSet(kept)


def jcc(tuples: Iterable[Tuple]) -> bool:
    """Convenience predicate: ``JCC`` of an arbitrary iterable of tuples."""
    return TupleSet(tuples).is_jcc
