"""Tuple sets and the JCC (join consistent and connected) predicate.

A *tuple set* ``T ⊆ Tuples(R)`` is the unit the paper's algorithms work with.
``T`` is *connected* when (i) no two tuples of ``T`` belong to the same
relation and (ii) the relations of the tuples of ``T`` form a connected graph
(two relations are adjacent when their schemas share an attribute).  ``T`` is
*join consistent* when every two tuples agree, with a non-null value, on every
attribute their schemas share.  ``JCC(T)`` holds when both do (Section 2).

:class:`TupleSet` is immutable and answers the operations the algorithms
perform in their inner loops:

* ``is_jcc`` — the JCC predicate for the set itself;
* ``union_is_jcc(other)`` — the line-14 test ``JCC(S ∪ T')``;
* ``can_absorb(t)`` — the extension test ``JCC(T ∪ {t})``;
* ``maximal_jcc_subset_with(t_b)`` — footnote 3: the unique maximal subset of
  ``T ∪ {t_b}`` that contains ``t_b`` and is join consistent and connected.

Two representations back these operations:

**Interned (bitset) representation.**  When the set is built with a
:class:`~repro.relational.catalog.Catalog` (``TupleSet(tuples, catalog=...)``)
and every member is catalogued, the set additionally stores three integers: a
bitmask of member tuple ids, a bitmask of member relation ids, and the union
of the members' schema-adjacency masks.  The inner-loop predicates then
reduce to bitwise AND/OR against the catalog's precomputed join-consistency
and adjacency bitmatrices — no dict merges, no per-attribute loops:

* ``issubset`` is one ``AND``/``NOT`` over tuple-id masks;
* ``union_is_jcc`` ANDs each new tuple's precomputed consistency mask against
  the other operand's id mask, then decides connectivity from the adjacency
  masks;
* ``can_absorb`` is the same test for a single tuple;
* ``maximal_jcc_subset_with`` intersects the id mask with the new tuple's
  consistency mask and runs the footnote-3 component search on relation-id
  bitmasks.

Derived sets (``union``, ``with_tuple``, ``difference``, …) propagate the
catalog, so interning one generation of tuple sets interns everything the
engine grows from it.

**Uninterned (reference) representation.**  Without a catalog — or when a
member tuple is unknown to it — the original dictionary-based implementation
is used: a merged ``attribute -> value`` map plus breadth-first search over
member schemas.  This path is retained deliberately: it is the executable
specification the randomized equivalence tests
(``tests/core/test_tupleset_equivalence.py``) check the bitset path against,
and it keeps :class:`TupleSet` usable for ad-hoc tuples that belong to no
database.  Both representations produce identical answers on every operation
(for the documented JCC preconditions of ``union_is_jcc``/``can_absorb``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple as TupleType

from repro.relational.nulls import is_null
from repro.relational.tuples import Tuple


class TupleSet:
    """An immutable set of tuples, at most one per relation in the JCC case.

    The constructor accepts any iterable of tuples; consistency and
    connectivity are *computed*, not assumed, so the class can also represent
    candidate sets that fail the JCC test.

    Parameters
    ----------
    tuples:
        The member tuples.
    catalog:
        Optional :class:`~repro.relational.catalog.Catalog`.  When given and
        every member is catalogued, the set is *interned*: the inner-loop
        predicates run on integer bitmasks against the catalog's precomputed
        matrices (see the module docstring).  Sets derived from an interned
        set inherit its catalog.
    """

    __slots__ = (
        "_tuples",
        "_by_relation",
        "_relation_conflict",
        "_attribute_values",
        "_join_consistent",
        "_connected",
        "_hash",
        "_catalog",
        "_id_mask",
        "_relation_mask",
        "_adjacent_relations",
        "_packed_row",
    )

    def __init__(self, tuples: Iterable[Tuple], catalog=None):
        frozen = frozenset(tuples)
        self._tuples: FrozenSet[Tuple] = frozen
        self._hash = hash(frozen)

        by_relation: Dict[str, Tuple] = {}
        relation_conflict = False
        for t in frozen:
            if t.relation_name in by_relation:
                relation_conflict = True
            by_relation[t.relation_name] = t
        self._by_relation = by_relation
        self._relation_conflict = relation_conflict

        # Lazily computed caches (see _attr_map / is_join_consistent).
        self._attribute_values: Optional[Dict[str, object]] = None
        self._join_consistent: Optional[bool] = None
        self._connected: Optional[bool] = None

        # Interning against the catalog's dense ids.  The packed kernel
        # caches this set's id mask as a word array here (see
        # repro.core.kernels.packed.set_words); the mask itself is immutable
        # so the cache only ever widens.
        self._packed_row = None
        self._catalog = None
        self._id_mask: Optional[int] = None
        self._relation_mask: Optional[int] = None
        self._adjacent_relations: Optional[int] = None
        if catalog is not None:
            id_mask = 0
            relation_mask = 0
            adjacent = 0
            for t in frozen:
                described = catalog.describe(t)
                if described is None:
                    break
                gid, relation_bit, adjacency = described
                id_mask |= 1 << gid
                relation_mask |= relation_bit
                adjacent |= adjacency
            else:
                self._catalog = catalog
                self._id_mask = id_mask
                self._relation_mask = relation_mask
                self._adjacent_relations = adjacent

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, *tuples: Tuple, catalog=None) -> "TupleSet":
        """Build a tuple set from tuples given as positional arguments."""
        return cls(tuples, catalog=catalog)

    @classmethod
    def singleton(cls, t: Tuple, catalog=None) -> "TupleSet":
        """Build the singleton tuple set ``{t}``."""
        return cls((t,), catalog=catalog)

    @classmethod
    def empty(cls, catalog=None) -> "TupleSet":
        """The empty tuple set (connected and join consistent by convention)."""
        return cls((), catalog=catalog)

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #
    @property
    def catalog(self):
        """The catalog the set is interned in, or ``None``."""
        return self._catalog

    @property
    def is_interned(self) -> bool:
        """``True`` when the set carries bitset masks against a catalog."""
        return self._id_mask is not None

    @property
    def id_mask(self) -> Optional[int]:
        """The member-tuple bitmask (``None`` when the set is not interned)."""
        return self._id_mask

    @property
    def relation_mask(self) -> Optional[int]:
        """The member-relation bitmask (``None`` when the set is not interned)."""
        return self._relation_mask

    def contains_tombstoned(self, catalog) -> bool:
        """Whether some member tuple is tombstoned in ``catalog``.

        The serving layer's liveness test: on a set interned in ``catalog``
        this is a single ``AND`` of the member bitmask against the catalog's
        tombstone set; otherwise each member is looked up individually.
        """
        if self._id_mask is not None and self._catalog is catalog:
            return bool(self._id_mask & catalog.dead_mask)
        return any(catalog.is_tombstoned(t) for t in self._tuples)

    def attach_catalog(self, catalog) -> "TupleSet":
        """Return this set interned in ``catalog`` (self when already there).

        Falls back to returning ``self`` unchanged when some member tuple is
        unknown to the catalog.
        """
        if catalog is None or self._catalog is catalog:
            return self
        interned = TupleSet(self._tuples, catalog=catalog)
        return interned if interned.is_interned else self

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def tuples(self) -> FrozenSet[Tuple]:
        """The member tuples."""
        return self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: object) -> bool:
        return t in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleSet):
            return NotImplemented
        if (
            self._id_mask is not None
            and other._id_mask is not None
            and self._catalog is other._catalog
        ):
            return self._id_mask == other._id_mask
        return self._tuples == other._tuples

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "TupleSet") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "TupleSet") -> bool:
        return self.issubset(other) and self._tuples != other._tuples

    def issubset(self, other: "TupleSet") -> bool:
        """Return ``True`` when every tuple of this set belongs to ``other``."""
        if (
            self._id_mask is not None
            and other._id_mask is not None
            and self._catalog is other._catalog
        ):
            return not (self._id_mask & ~other._id_mask)
        return self._tuples <= other._tuples

    def issuperset(self, other: "TupleSet") -> bool:
        """Return ``True`` when this set contains every tuple of ``other``."""
        return other.issubset(self)

    def __repr__(self) -> str:
        labels = ", ".join(sorted(t.label for t in self._tuples))
        return "{" + labels + "}"

    def labels(self) -> FrozenSet[str]:
        """The labels of the member tuples, as a frozenset (handy in tests)."""
        return frozenset(t.label for t in self._tuples)

    def sort_key(self) -> TupleType:
        """A deterministic ordering key (by sorted member labels)."""
        return tuple(sorted((t.relation_name, t.label) for t in self._tuples))

    def total_size(self) -> int:
        """Size measure in the spirit of the paper's ``f``: attribute cells of all members."""
        return sum(len(t.schema) for t in self._tuples)

    # ------------------------------------------------------------------ #
    # relations and attributes
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> FrozenSet[str]:
        """The names of the relations represented in the set."""
        return frozenset(self._by_relation)

    def tuple_from(self, relation_name: str) -> Optional[Tuple]:
        """The member tuple of ``relation_name`` or ``None``.

        When the set (illegally) holds several tuples of the same relation an
        arbitrary one is returned; JCC sets hold at most one.
        """
        return self._by_relation.get(relation_name)

    def contains_tuple_from(self, relation_name: str) -> bool:
        """Return ``True`` when some member tuple belongs to ``relation_name``."""
        return relation_name in self._by_relation

    def _attr_map(self) -> Dict[str, object]:
        """The merged ``attribute -> value`` map (computed on first use).

        The computation simultaneously decides join consistency, which is
        recorded when no earlier (bitset) computation already did.
        """
        values = self._attribute_values
        if values is None:
            values = {}
            join_consistent = True
            for t in self._tuples:
                for attribute, value in t.items():
                    if attribute in values:
                        existing = values[attribute]
                        if is_null(existing) or is_null(value) or existing != value:
                            join_consistent = False
                        if is_null(existing) and not is_null(value):
                            values[attribute] = value
                    else:
                        values[attribute] = value
            self._attribute_values = values
            if self._join_consistent is None:
                self._join_consistent = join_consistent and not self._relation_conflict
        return values

    @property
    def attributes(self) -> FrozenSet[str]:
        """All attributes appearing in the schemas of member tuples."""
        return frozenset(self._attr_map())

    def attribute_value(self, attribute: str) -> object:
        """The (merged) value of ``attribute`` in the set.

        Only meaningful for join-consistent sets, where all members sharing
        the attribute agree on one non-null value.
        """
        return self._attr_map()[attribute]

    # ------------------------------------------------------------------ #
    # the JCC predicate
    # ------------------------------------------------------------------ #
    @property
    def is_join_consistent(self) -> bool:
        """Join consistency of the set (pairwise agreement on shared attributes).

        A set with two distinct tuples of the same relation is reported as
        inconsistent, because such a set can never be part of a full
        disjunction and the cheap single-value cache would be unsound for it.
        """
        if self._join_consistent is None:
            if self._relation_conflict:
                self._join_consistent = False
            elif self._id_mask is not None:
                # Every member must be consistent with every other member:
                # one AND per member against its precomputed consistency mask.
                catalog = self._catalog
                mask = self._id_mask
                consistent = True
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    gid = low.bit_length() - 1
                    if mask & ~(catalog.consistent_mask(gid) | low):
                        consistent = False
                        break
                    remaining ^= low
                self._join_consistent = consistent
            else:
                self._attr_map()  # records join consistency as a side effect
        return self._join_consistent

    @property
    def is_connected(self) -> bool:
        """Connectivity of the set, per the paper's definition.

        The empty set and singletons are connected.  A set with two tuples of
        the same relation is not connected (condition (i) of the definition).
        """
        if self._connected is None:
            if self._relation_conflict:
                self._connected = False
            elif len(self._tuples) <= 1:
                self._connected = True
            elif self._relation_mask is not None:
                self._connected = self._catalog.relations_connected(self._relation_mask)
            else:
                self._connected = self._compute_connected()
        return self._connected

    def _compute_connected(self) -> bool:
        schemas = {name: t.schema for name, t in self._by_relation.items()}
        names = list(schemas)
        start = names[0]
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for other in names:
                if other not in seen and schemas[current].connects_to(schemas[other]):
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(names)

    @property
    def is_jcc(self) -> bool:
        """``JCC(T)``: join consistent and connected."""
        return self.is_join_consistent and self.is_connected

    # ------------------------------------------------------------------ #
    # derived sets
    # ------------------------------------------------------------------ #
    def with_tuple(self, t: Tuple) -> "TupleSet":
        """Return ``T ∪ {t}`` as a new tuple set."""
        if t in self._tuples:
            return self
        return TupleSet(self._tuples | {t}, catalog=self._catalog)

    def union(self, other: "TupleSet") -> "TupleSet":
        """Return ``T ∪ S`` as a new tuple set.

        The union is interned in ``self``'s catalog when possible, otherwise
        in ``other``'s: after a catalog rebuild the two operands may carry
        different snapshots, and only the newer one can describe every
        member.  Only when *neither* catalog covers the union does the
        result fall back to the uninterned representation.
        """
        catalog = self._catalog if self._catalog is not None else other._catalog
        merged = TupleSet(self._tuples | other._tuples, catalog=catalog)
        if (
            not merged.is_interned
            and other._catalog is not None
            and other._catalog is not catalog
        ):
            retry = TupleSet(merged._tuples, catalog=other._catalog)
            if retry.is_interned:
                return retry
        return merged

    def difference(self, other: "TupleSet") -> "TupleSet":
        """Return ``T \\ S`` as a new tuple set."""
        return TupleSet(self._tuples - other._tuples, catalog=self._catalog)

    def restrict_to_relations(self, relation_names: Iterable[str]) -> "TupleSet":
        """Return the subset of member tuples belonging to the given relations."""
        wanted = set(relation_names)
        return TupleSet(
            (t for t in self._tuples if t.relation_name in wanted),
            catalog=self._catalog,
        )

    # ------------------------------------------------------------------ #
    # inner-loop tests
    # ------------------------------------------------------------------ #
    def can_absorb(self, t: Tuple) -> bool:
        """Return ``True`` when ``JCC(T ∪ {t})`` holds, assuming ``JCC(T)``.

        This is the test of the maximal-extension loop (Lines 2–6 of
        ``GetNextResult``).  For the empty set it reduces to ``True`` (a
        singleton is always JCC).
        """
        if t in self._tuples:
            return True
        if not self._tuples:
            return True
        if self._id_mask is not None:
            described = self._catalog.describe(t)
            if described is not None:
                gid, _, adjacency = described
                # Join consistency: t must be consistent with every member
                # (the consistency matrix also rejects a second tuple of t's
                # relation); connectivity: t's relation must be adjacent to a
                # member relation.
                if self._id_mask & ~self._catalog.consistent_mask(gid):
                    return False
                return bool(adjacency & self._relation_mask)
        if t.relation_name in self._by_relation:
            return False
        # Join consistency of the new tuple against the merged attribute map.
        attribute_values = self._attr_map()
        connected = False
        for attribute, value in t.items():
            if attribute in attribute_values:
                connected = True
                existing = attribute_values[attribute]
                if is_null(existing) or is_null(value) or existing != value:
                    return False
        # Connectivity: t's relation must share an attribute with some member
        # relation.  Sharing an attribute with the *merged* attribute map is
        # exactly that, because the map's keys are the union of member schemas.
        return connected

    def union_is_jcc(self, other: "TupleSet") -> bool:
        """Return ``True`` when ``JCC(T ∪ S)`` holds, assuming both are JCC.

        This is the test of Line 14 of ``GetNextResult``.  On interned sets
        the test is a handful of bit operations: every tuple of ``S \\ T``
        must be consistent with all of ``T`` (one AND against its precomputed
        consistency mask — a second tuple of an already-present relation fails
        here too), and the union is connected exactly when the operands share
        a member or some relation of ``S`` is schema-adjacent to one of ``T``.

        The uninterned fallback follows the complexity analysis of
        Theorem 4.8: compare the merged attribute maps of the two sets in a
        single pass; a disagreement involving a null needs the exact pairwise
        check because the null may be carried by a tuple that belongs to
        *both* sets (tuples never constrain themselves).
        """
        if not self._tuples:
            return other.is_jcc
        if not other._tuples:
            return self.is_jcc

        if (
            self._id_mask is not None
            and other._id_mask is not None
            and self._catalog is other._catalog
        ):
            catalog = self._catalog
            mine = self._id_mask
            incoming = other._id_mask & ~mine
            while incoming:
                low = incoming & -incoming
                if mine & ~catalog.consistent_mask(low.bit_length() - 1):
                    return False
                incoming ^= low
            if mine & other._id_mask:
                return True
            return bool(self._adjacent_relations & other._relation_mask)

        shares_member = False
        for relation_name, t in other._by_relation.items():
            current = self._by_relation.get(relation_name)
            if current is not None:
                if current != t:
                    return False  # two distinct tuples of the same relation
                shares_member = True

        # Fast path over the merged attribute maps.
        my_attributes = self._attr_map()
        needs_pairwise = False
        shared_attribute = False
        for attribute, value in other._attr_map().items():
            if attribute in my_attributes:
                shared_attribute = True
                existing = my_attributes[attribute]
                if is_null(existing) or is_null(value) or existing != value:
                    needs_pairwise = True
                    break
        if not needs_pairwise:
            if shared_attribute or shares_member:
                return True
            return False

        # Exact check: every cross pair of *distinct* tuples must agree with a
        # non-null value on every attribute their schemas share.
        cross_share = shares_member
        for mine in self._tuples:
            for theirs in other._tuples:
                if mine == theirs:
                    continue
                shared = mine.schema.shared_attributes(theirs.schema)
                if shared:
                    cross_share = True
                for attribute in shared:
                    left = mine[attribute]
                    right = theirs[attribute]
                    if is_null(left) or is_null(right) or left != right:
                        return False
        return cross_share

    def maximal_jcc_subset_with(self, t_b: Tuple) -> "TupleSet":
        """Footnote 3: the unique maximal JCC subset of ``T ∪ {t_b}`` containing ``t_b``.

        Obtained by (1) dropping every member tuple that is not join
        consistent with ``t_b`` (in particular any member of ``t_b``'s own
        relation), then (2) keeping only the tuples whose relations lie in the
        connected component of ``t_b``'s relation within the remaining
        relation graph.
        """
        if self._id_mask is not None:
            described = self._catalog.describe(t_b)
            if described is not None:
                catalog = self._catalog
                gid, relation_bit, _ = described
                survivors = self._id_mask & catalog.consistent_mask(gid)
                if not survivors:
                    return TupleSet.singleton(t_b, catalog=catalog)
                component = catalog.relation_component(
                    relation_bit.bit_length() - 1,
                    catalog.relation_mask_of(survivors),
                )
                kept = survivors & catalog.tuples_in_relations(component)
                members = catalog.tuples_of_mask(kept)
                members.append(t_b)
                return TupleSet(members, catalog=catalog)

        survivors: List[Tuple] = [
            t
            for t in self._tuples
            if t.relation_name != t_b.relation_name and t.join_consistent_with(t_b)
        ]
        if not survivors:
            return TupleSet.singleton(t_b, catalog=self._catalog)
        # Connected component of t_b's relation among the surviving relations.
        schemas = {t.relation_name: t.schema for t in survivors}
        schemas[t_b.relation_name] = t_b.schema
        component = {t_b.relation_name}
        frontier = deque([t_b.relation_name])
        while frontier:
            current = frontier.popleft()
            for name, schema in schemas.items():
                if name not in component and schemas[current].connects_to(schema):
                    component.add(name)
                    frontier.append(name)
        kept = [t for t in survivors if t.relation_name in component]
        kept.append(t_b)
        return TupleSet(kept, catalog=self._catalog)


def jcc(tuples: Iterable[Tuple]) -> bool:
    """Convenience predicate: ``JCC`` of an arbitrary iterable of tuples."""
    return TupleSet(tuples).is_jcc
