"""Ranking functions over tuple sets (Section 5).

Every tuple ``t`` carries a numeric importance ``imp(t)``; a *ranking
function* ``f`` maps a tuple set to a number computable in polynomial time.
The paper's tractability frontier is the class of **monotonically
c-determined** functions: ``f`` is *c-determined* when the rank of any tuple
set ``T`` is already achieved by some connected subset ``T' ⊆ T`` with at most
``c`` tuples, and *monotonically* c-determined when, additionally, ``T' ⊆ T``
implies ``f(T') ≤ f(T)`` for connected tuple sets.  ``f_max`` is monotonically
1-determined; ``f_sum`` is not c-determined for any ``c`` and the top-1
problem for it is NP-hard (Proposition 5.1).

The classes here bundle the value function with the metadata
(``c``, monotonicity) that :func:`repro.core.priority.priority_incremental_fd`
needs to decide whether ranked retrieval is possible, plus the subset
enumeration used to seed the priority queues.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.relational.database import Database
from repro.relational.errors import RankingError
from repro.relational.tuples import Tuple
from repro.core.tupleset import TupleSet

#: How importances may be supplied: a mapping from tuple label, or a callable.
ImportanceSpec = Union[Dict[str, float], Callable[[Tuple], float], None]


def importance_function(spec: ImportanceSpec) -> Callable[[Tuple], float]:
    """Normalise an importance specification into a ``tuple -> float`` callable.

    * ``None`` — use the importance stored on each tuple (``t.importance``);
    * a mapping — look the tuple's label up (missing labels get ``0.0``);
    * a callable — used as is.
    """
    if spec is None:
        return lambda t: t.importance
    if callable(spec):
        return spec
    if isinstance(spec, dict):
        return lambda t: float(spec.get(t.label, 0.0))
    raise RankingError(f"cannot interpret importance specification {spec!r}")


class RankingFunction:
    """Base class of ranking functions.

    Subclasses implement :meth:`score`; the metadata attributes describe where
    the function sits relative to the paper's tractability frontier.

    Attributes
    ----------
    c:
        The determination bound ``c`` when the function is c-determined,
        ``None`` otherwise.
    monotone:
        Whether the function is monotone under inclusion of connected tuple
        sets.  Ranked retrieval requires ``c`` to be set and ``monotone`` to
        be true.
    """

    name = "ranking"
    c: Optional[int] = None
    monotone: bool = False

    def score(self, tuple_set: TupleSet) -> float:
        raise NotImplementedError

    def __call__(self, tuple_set: TupleSet) -> float:
        return self.score(tuple_set)

    @property
    def is_monotonically_c_determined(self) -> bool:
        """Whether the function admits ranked retrieval (Theorem 5.5)."""
        return self.c is not None and self.monotone

    def require_monotonically_c_determined(self) -> None:
        """Raise :class:`RankingError` unless ranked retrieval is supported."""
        if not self.is_monotonically_c_determined:
            raise RankingError(
                f"ranking function {self.name!r} is not monotonically c-determined; "
                "ranked retrieval is not guaranteed (see Proposition 5.1)"
            )


class MaxRanking(RankingFunction):
    """``f_max(T) = max { imp(t) | t ∈ T }`` — monotonically 1-determined."""

    name = "f_max"
    c = 1
    monotone = True

    def __init__(self, importance: ImportanceSpec = None):
        self._imp = importance_function(importance)

    def score(self, tuple_set: TupleSet) -> float:
        if len(tuple_set) == 0:
            return float("-inf")
        return max(self._imp(t) for t in tuple_set)


class SumRanking(RankingFunction):
    """``f_sum(T) = Σ imp(t)`` — *not* c-determined; top-1 is NP-hard (Prop. 5.1)."""

    name = "f_sum"
    c = None
    monotone = True

    def __init__(self, importance: ImportanceSpec = None):
        self._imp = importance_function(importance)

    def score(self, tuple_set: TupleSet) -> float:
        return sum(self._imp(t) for t in tuple_set)


class CDeterminedRanking(RankingFunction):
    """A generic monotonically c-determined ranking function.

    The rank of ``T`` is the maximum of ``subset_score`` over the connected
    subsets of ``T`` with at most ``c`` tuples (the empty subset is not
    considered; singletons count as connected).  Any ``subset_score`` makes
    the function c-determined by construction; it is monotone because adding
    tuples to ``T`` can only enlarge the set of scored subsets.

    Parameters
    ----------
    c:
        The determination bound (a small constant).
    subset_score:
        A function from a tuple of member tuples (size between 1 and ``c``)
        to a number.
    name:
        Optional display name.
    """

    monotone = True

    def __init__(
        self,
        c: int,
        subset_score: Callable[[Sequence[Tuple]], float],
        name: str = "f_c",
    ):
        if c < 1:
            raise RankingError(f"c must be at least 1, got {c}")
        self.c = c
        self.name = name
        self._subset_score = subset_score

    def score(self, tuple_set: TupleSet) -> float:
        best = float("-inf")
        members = sorted(tuple_set, key=lambda t: (t.relation_name, t.label))
        for size in range(1, min(self.c, len(members)) + 1):
            for subset in itertools.combinations(members, size):
                if size > 1 and not TupleSet(subset).is_connected:
                    continue
                value = self._subset_score(subset)
                if value > best:
                    best = value
        return best


def paper_example_ranking(importance: ImportanceSpec = None) -> CDeterminedRanking:
    """The monotonically 3-determined example of Section 5.

    ``f(T) = max { imp(t1) + imp(t2) · imp(t3) | t1, t2, t3 ∈ T, {t1,t2,t3} connected }``

    Subsets smaller than three are scored by padding with the best available
    member (the paper's expression ranges over all triples of not necessarily
    distinct tuples).
    """
    imp = importance_function(importance)

    def subset_score(subset: Sequence[Tuple]) -> float:
        values = [imp(t) for t in subset]
        best = float("-inf")
        for t1, t2, t3 in itertools.product(values, repeat=3):
            best = max(best, t1 + t2 * t3)
        return best

    return CDeterminedRanking(3, subset_score, name="f_example_3det")


def enumerate_connected_subsets(
    database: Database,
    anchor_name: str,
    max_size: int,
    catalog=None,
) -> Iterator[TupleSet]:
    """Enumerate every JCC tuple set of size at most ``max_size`` containing a tuple of ``R_i``.

    This is the initialization of ``PriorityIncrementalFD`` (Lines 3–4 of
    Fig. 3).  The enumeration grows sets tuple by tuple, so its cost is
    ``O(s^c)`` for ``c = max_size`` — polynomial for constant ``c``.
    """
    if max_size < 1:
        raise RankingError(f"max_size must be at least 1, got {max_size}")
    all_tuples = list(database.tuples())
    seen = set()
    frontier: List[TupleSet] = []
    for t in database.relation(anchor_name):
        singleton = TupleSet.singleton(t, catalog=catalog)
        seen.add(singleton)
        frontier.append(singleton)
        yield singleton
    for _ in range(max_size - 1):
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for t in all_tuples:
                if t in current:
                    continue
                if not current.can_absorb(t):
                    continue
                grown = current.with_tuple(t)
                if grown in seen:
                    continue
                seen.add(grown)
                next_frontier.append(grown)
                yield grown
        frontier = next_frontier


def top_k_by_exhaustive_ranking(
    results: Iterable[TupleSet],
    ranking: RankingFunction,
    k: int,
) -> List[TupleSet]:
    """Rank an already-computed full disjunction and return its top ``k`` members.

    This is the brute-force route the paper argues against: the whole (possibly
    exponential) result must be materialised first.  It is used as a test
    oracle and as the baseline of experiment E3.
    """
    ordered = sorted(results, key=lambda ts: (-ranking(ts), ts.sort_key()))
    return ordered[:k]
