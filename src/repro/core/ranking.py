"""Ranking functions over tuple sets (Section 5).

Every tuple ``t`` carries a numeric importance ``imp(t)``; a *ranking
function* ``f`` maps a tuple set to a number computable in polynomial time.
The paper's tractability frontier is the class of **monotonically
c-determined** functions: ``f`` is *c-determined* when the rank of any tuple
set ``T`` is already achieved by some connected subset ``T' ⊆ T`` with at most
``c`` tuples, and *monotonically* c-determined when, additionally, ``T' ⊆ T``
implies ``f(T') ≤ f(T)`` for connected tuple sets.  ``f_max`` is monotonically
1-determined; ``f_sum`` is not c-determined for any ``c`` and the top-1
problem for it is NP-hard (Proposition 5.1).

The classes here bundle the value function with the metadata
(``c``, monotonicity) that :func:`repro.core.priority.priority_incremental_fd`
needs to decide whether ranked retrieval is possible, plus the subset
enumeration used to seed the priority queues.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.relational.database import Database
from repro.relational.errors import RankingError
from repro.relational.tuples import Tuple
from repro.core.tupleset import TupleSet

#: How importances may be supplied: a mapping from tuple label, or a callable.
ImportanceSpec = Union[Dict[str, float], Callable[[Tuple], float], None]

#: Sentinel distinguishing "no default supplied" from an explicit ``None``.
_NO_DEFAULT = object()


def importance_function(
    spec: ImportanceSpec, default: object = _NO_DEFAULT
) -> Callable[[Tuple], float]:
    """Normalise an importance specification into a ``tuple -> float`` callable.

    * ``None`` — use the importance stored on each tuple (``t.importance``);
    * a mapping — look the tuple's label up.  A label missing from the
      mapping raises :class:`RankingError` when it is scored: a typo'd
      importance map must surface as an error, not as a silently wrong
      ranking order.  Pass an explicit ``default=`` to opt back into scoring
      unlisted labels with that value;
    * a callable — used as is.
    """
    if spec is None:
        return lambda t: t.importance
    if callable(spec):
        return spec
    if isinstance(spec, dict):
        if default is _NO_DEFAULT:

            def lookup(t: Tuple) -> float:
                try:
                    return float(spec[t.label])
                except KeyError:
                    raise RankingError(
                        f"tuple label {t.label!r} has no entry in the importance "
                        "map; pass default= to score unlisted labels, or fix "
                        "the map"
                    ) from None

            return lookup
        return lambda t: float(spec.get(t.label, default))
    raise RankingError(f"cannot interpret importance specification {spec!r}")


def validate_importance_spec(
    database: Database, spec: ImportanceSpec, default: object = _NO_DEFAULT
) -> None:
    """Eagerly check a dict importance spec against the database's labels.

    Raises :class:`RankingError` when the mapping holds keys matching no
    tuple label (a typo'd map scores the *intended* tuple wrongly even when a
    ``default`` covers the typo'd key), or — unless ``default`` is given —
    when some database tuple has no entry.  Non-dict specs always pass: a
    callable or the stored-importance mode cannot be label-typo'd.

    The serving layer runs this at ranked ``open`` time so a bad spec is a
    client error, not a wrong answer stream.
    """
    if not isinstance(spec, dict):
        return
    labels = {t.label for t in database.tuples()}
    unknown = sorted(set(spec) - labels)
    if unknown:
        raise RankingError(
            f"importance map keys {unknown} match no tuple label in the database"
        )
    if default is _NO_DEFAULT:
        missing = sorted(labels - set(spec))
        if missing:
            raise RankingError(
                f"tuple labels {missing} have no entry in the importance map; "
                "pass default= to score unlisted labels"
            )


class RankingFunction:
    """Base class of ranking functions.

    Subclasses implement :meth:`score`; the metadata attributes describe where
    the function sits relative to the paper's tractability frontier.

    Attributes
    ----------
    c:
        The determination bound ``c`` when the function is c-determined,
        ``None`` otherwise.
    monotone:
        Whether the function is monotone under inclusion of connected tuple
        sets.  Ranked retrieval requires ``c`` to be set and ``monotone`` to
        be true.
    """

    name = "ranking"
    c: Optional[int] = None
    monotone: bool = False

    def score(self, tuple_set: TupleSet) -> float:
        raise NotImplementedError

    def __call__(self, tuple_set: TupleSet) -> float:
        return self.score(tuple_set)

    @property
    def is_monotonically_c_determined(self) -> bool:
        """Whether the function admits ranked retrieval (Theorem 5.5)."""
        return self.c is not None and self.monotone

    def require_monotonically_c_determined(self) -> None:
        """Raise :class:`RankingError` unless ranked retrieval is supported."""
        if not self.is_monotonically_c_determined:
            raise RankingError(
                f"ranking function {self.name!r} is not monotonically c-determined; "
                "ranked retrieval is not guaranteed (see Proposition 5.1)"
            )

    def cache_key(self):
        """A hashable identity for result-prefix caching, or ``None``.

        Two ranking functions with equal cache keys must rank every tuple set
        identically — the serving layer's prefix cache keys ranked result
        logs by ``(database generation, ranking cache key, c)``.  ``None``
        (the default) means "no stable identity": the cache falls back to
        object identity, which is always safe but never shares.
        """
        return None


class MaxRanking(RankingFunction):
    """``f_max(T) = max { imp(t) | t ∈ T }`` — monotonically 1-determined."""

    name = "f_max"
    c = 1
    monotone = True

    def __init__(self, importance: ImportanceSpec = None, default: object = _NO_DEFAULT):
        self._imp = importance_function(importance, default=default)
        self._spec = importance
        self._default = default

    def score(self, tuple_set: TupleSet) -> float:
        if len(tuple_set) == 0:
            return float("-inf")
        return max(self._imp(t) for t in tuple_set)

    def cache_key(self):
        """Stable for the declarative specs (a dict, or stored importance)."""
        if type(self) is not MaxRanking:
            # A subclass may override score(); its identity is not captured
            # by the spec alone, so it must not collide with MaxRanking.
            return None
        if self._spec is None:
            # Stored-importance mode ignores ``default`` entirely, so it
            # must not fragment the cache key either.
            return (self.name, self.c, "tuple-importance", None)
        default = None if self._default is _NO_DEFAULT else ("default", self._default)
        if isinstance(self._spec, dict):
            return (self.name, self.c, tuple(sorted(self._spec.items())), default)
        return None  # an arbitrary callable has no stable identity


class SumRanking(RankingFunction):
    """``f_sum(T) = Σ imp(t)`` — *not* c-determined; top-1 is NP-hard (Prop. 5.1)."""

    name = "f_sum"
    c = None
    monotone = True

    def __init__(self, importance: ImportanceSpec = None, default: object = _NO_DEFAULT):
        self._imp = importance_function(importance, default=default)

    def score(self, tuple_set: TupleSet) -> float:
        return sum(self._imp(t) for t in tuple_set)


class CDeterminedRanking(RankingFunction):
    """A generic monotonically c-determined ranking function.

    The rank of ``T`` is the maximum of ``subset_score`` over the connected
    subsets of ``T`` with at most ``c`` tuples (the empty subset is not
    considered; singletons count as connected).  Any ``subset_score`` makes
    the function c-determined by construction; it is monotone because adding
    tuples to ``T`` can only enlarge the set of scored subsets.

    Parameters
    ----------
    c:
        The determination bound (a small constant).
    subset_score:
        A function from a tuple of member tuples (size between 1 and ``c``)
        to a number.
    name:
        Optional display name.
    """

    monotone = True

    def __init__(
        self,
        c: int,
        subset_score: Callable[[Sequence[Tuple]], float],
        name: str = "f_c",
    ):
        if c < 1:
            raise RankingError(f"c must be at least 1, got {c}")
        self.c = c
        self.name = name
        self._subset_score = subset_score

    def score(self, tuple_set: TupleSet) -> float:
        best = float("-inf")
        members = sorted(tuple_set, key=lambda t: (t.relation_name, t.label))
        for size in range(1, min(self.c, len(members)) + 1):
            for subset in itertools.combinations(members, size):
                if size > 1 and not TupleSet(subset).is_connected:
                    continue
                value = self._subset_score(subset)
                if value > best:
                    best = value
        return best


def paper_example_ranking(
    importance: ImportanceSpec = None, default: object = _NO_DEFAULT
) -> CDeterminedRanking:
    """The monotonically 3-determined example of Section 5.

    ``f(T) = max { imp(t1) + imp(t2) · imp(t3) | t1, t2, t3 ∈ T, {t1,t2,t3} connected }``

    Subsets smaller than three are scored by padding with the best available
    member (the paper's expression ranges over all triples of not necessarily
    distinct tuples).
    """
    imp = importance_function(importance, default=default)

    def subset_score(subset: Sequence[Tuple]) -> float:
        values = [imp(t) for t in subset]
        best = float("-inf")
        for t1, t2, t3 in itertools.product(values, repeat=3):
            best = max(best, t1 + t2 * t3)
        return best

    return CDeterminedRanking(3, subset_score, name="f_example_3det")


def enumerate_connected_subsets(
    database: Database,
    anchor_name: str,
    max_size: int,
    catalog=None,
) -> Iterator[TupleSet]:
    """Enumerate every JCC tuple set of size at most ``max_size`` containing a tuple of ``R_i``.

    This is the initialization of ``PriorityIncrementalFD`` (Lines 3–4 of
    Fig. 3).  The enumeration grows sets tuple by tuple, so its cost is
    ``O(s^c)`` for ``c = max_size`` — polynomial for constant ``c``.
    """
    if max_size < 1:
        raise RankingError(f"max_size must be at least 1, got {max_size}")
    all_tuples = list(database.tuples())
    seen = set()
    frontier: List[TupleSet] = []
    for t in database.relation(anchor_name):
        singleton = TupleSet.singleton(t, catalog=catalog)
        seen.add(singleton)
        frontier.append(singleton)
        yield singleton
    for _ in range(max_size - 1):
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for t in all_tuples:
                if t in current:
                    continue
                if not current.can_absorb(t):
                    continue
                grown = current.with_tuple(t)
                if grown in seen:
                    continue
                seen.add(grown)
                next_frontier.append(grown)
                yield grown
        frontier = next_frontier


def enumerate_connected_subsets_containing(
    database: Database,
    t: Tuple,
    max_size: int,
    catalog=None,
) -> Iterator[TupleSet]:
    """Enumerate every JCC tuple set of size at most ``max_size`` containing ``t``.

    The bounded variant of :func:`enumerate_connected_subsets` used by ranked
    delta maintenance: when ``t`` arrives on a stream, the only size-≤c
    witness subsets the priority queues are missing are exactly the ones
    containing ``t`` — everything else was enumerated when the queues were
    built.  The growth argument matches the unbounded enumerator: every
    connected set containing ``t`` has a build order starting at ``{t}``
    whose prefixes are all connected (a spanning-tree traversal from ``t``),
    and join consistency is preserved under taking subsets, so growing
    tuple by tuple through ``can_absorb`` reaches every qualifying subset.
    Cost is ``O(s^(c-1))`` per arrival instead of the ``O(s^c)`` rebuild.
    """
    if max_size < 1:
        raise RankingError(f"max_size must be at least 1, got {max_size}")
    singleton = TupleSet.singleton(t, catalog=catalog)
    seen = {singleton}
    frontier: List[TupleSet] = [singleton]
    yield singleton
    if max_size == 1:
        # The common case (f_max is 1-determined): no growth loop, and no
        # point paying an O(s) database copy per arrival.
        return
    all_tuples = list(database.tuples())
    for _ in range(max_size - 1):
        next_frontier: List[TupleSet] = []
        for current in frontier:
            for other in all_tuples:
                if other in current:
                    continue
                if not current.can_absorb(other):
                    continue
                grown = current.with_tuple(other)
                if grown in seen:
                    continue
                seen.add(grown)
                next_frontier.append(grown)
                yield grown
        frontier = next_frontier


def canonical_rank_key(item):
    """Sort key placing a ``(tuple set, score)`` stream in canonical rank order.

    Highest score first, ties broken by the tuple set's sort key.  This is
    the *serving contract* for ranked streams: the delta-maintained stream
    and the full-recompute reference both order every emitted batch with
    this key, which is what makes them byte-identical — keep it the single
    definition.
    """
    tuple_set, score = item
    return (-score, tuple_set.sort_key())


def top_k_by_exhaustive_ranking(
    results: Iterable[TupleSet],
    ranking: RankingFunction,
    k: int,
) -> List[TupleSet]:
    """Rank an already-computed full disjunction and return its top ``k`` members.

    This is the brute-force route the paper argues against: the whole (possibly
    exponential) result must be materialised first.  It is used as a test
    oracle and as the baseline of experiment E3.
    """
    ordered = sorted(results, key=lambda ts: (-ranking(ts), ts.sort_key()))
    return ordered[:k]
