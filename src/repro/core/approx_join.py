"""Approximate-join functions (Section 6).

An *approximate join function* ``A`` maps a tuple set ``T`` to a value in
``[0, 1]`` — the likelihood that the tuples of ``T`` represent entities that
are join consistent and connected.  ``A`` is **acceptable** when

(i)  ``A(T) = 0`` whenever ``T`` is not connected, and
(ii) ``T ⊆ T'`` implies ``A(T) ≥ A(T')`` for connected ``T`` and ``T'``
     (growing a set can only lower the likelihood).

``A`` is **efficiently computable** (Definition 6.4) when, for any threshold
``τ``, tuple set ``T`` with ``A(T) ≥ τ`` and tuple ``t_b``, all maximal
subsets ``T' ⊆ T ∪ {t_b}`` with ``A(T') ≥ τ`` can be produced in polynomial
time.  The algorithm :mod:`repro.core.approx` only needs the subsets that
contain ``t_b``; that is what :meth:`ApproximateJoinFunction.candidate_extensions`
returns.

Two approximate join functions from Example 6.1 are provided — ``A_min``
(efficiently computable, Proposition 6.5) and ``A_prod`` — together with the
similarity (``sim``) and probability (``prob``) ingredients they are built
from, and an :class:`ExactJoin` adapter that reduces the approximate machinery
to ordinary join consistency (useful for cross-checking the two algorithms).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple as TupleType, Union

from repro.relational.errors import ApproximateJoinError
from repro.relational.nulls import is_null
from repro.relational.tuples import Tuple
from repro.core.tupleset import TupleSet


# --------------------------------------------------------------------------- #
# similarity functions
# --------------------------------------------------------------------------- #
def levenshtein(first: str, second: str) -> int:
    """Edit distance between two strings (classic dynamic program)."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for i, first_char in enumerate(first, start=1):
        current = [i]
        for j, second_char in enumerate(second, start=1):
            cost = 0 if first_char == second_char else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def string_similarity(first: str, second: str) -> float:
    """Normalised edit-distance similarity in ``[0, 1]`` (1 means equal)."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(first, second) / longest


class SimilarityFunction:
    """Base class of tuple-pair similarity functions ``sim(t, t')``.

    Implementations must be symmetric; :meth:`__call__` enforces a canonical
    argument order so subclasses only implement :meth:`compute`.
    """

    def compute(self, first: Tuple, second: Tuple) -> float:
        raise NotImplementedError

    def __call__(self, first: Tuple, second: Tuple) -> float:
        if (second.relation_name, second.label) < (first.relation_name, first.label):
            first, second = second, first
        value = self.compute(first, second)
        if not (0.0 <= value <= 1.0):
            raise ApproximateJoinError(
                f"similarity of ({first.label}, {second.label}) is {value}, outside [0, 1]"
            )
        return value


class ExactMatchSimilarity(SimilarityFunction):
    """``sim(t, t') = 1`` when the pair is join consistent, ``0`` otherwise.

    With this similarity the approximate machinery degenerates to the exact
    one (for any threshold ``τ > 0``).
    """

    def compute(self, first: Tuple, second: Tuple) -> float:
        return 1.0 if first.join_consistent_with(second) else 0.0


class EditDistanceSimilarity(SimilarityFunction):
    """Similarity of the values of shared attributes, via normalised edit distance.

    For every attribute the two schemas share, the cell values are compared:
    equal non-null values contribute 1, a null on either side contributes 0,
    differing strings contribute their normalised edit-distance similarity and
    differing non-string values contribute 0.  The pair similarity is the
    minimum contribution over the shared attributes (the weakest link decides
    whether the tuples describe the same entity); pairs with no shared
    attribute get 1, but such pairs never constrain an approximate join.
    """

    def compute(self, first: Tuple, second: Tuple) -> float:
        shared = first.schema.shared_attributes(second.schema)
        if not shared:
            return 1.0
        worst = 1.0
        for attribute in shared:
            mine = first[attribute]
            theirs = second[attribute]
            if is_null(mine) or is_null(theirs):
                contribution = 0.0
            elif mine == theirs:
                contribution = 1.0
            elif isinstance(mine, str) and isinstance(theirs, str):
                contribution = string_similarity(mine, theirs)
            else:
                contribution = 0.0
            worst = min(worst, contribution)
        return worst


class TableSimilarity(SimilarityFunction):
    """A similarity given explicitly per tuple-label pair (as in Fig. 4).

    Pairs absent from the table fall back to ``default`` (a similarity
    function or a constant).
    """

    def __init__(
        self,
        table: Dict[FrozenSet[str], float],
        default: Union[float, SimilarityFunction] = 0.0,
    ):
        self._table = {frozenset(key): float(value) for key, value in table.items()}
        self._default = default

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[TupleType[str, str, float]],
        default: Union[float, SimilarityFunction] = 0.0,
    ) -> "TableSimilarity":
        """Build the table from ``(label, label, similarity)`` triples."""
        return cls({frozenset((a, b)): value for a, b, value in pairs}, default=default)

    def compute(self, first: Tuple, second: Tuple) -> float:
        key = frozenset((first.label, second.label))
        if key in self._table:
            return self._table[key]
        if isinstance(self._default, SimilarityFunction):
            return self._default(first, second)
        return float(self._default)


# --------------------------------------------------------------------------- #
# approximate join functions
# --------------------------------------------------------------------------- #
ProbabilityFunction = Callable[[Tuple], float]


def tuple_probability(t: Tuple) -> float:
    """The default ``prob``: the probability stored on the tuple itself."""
    return t.probability


def connected_pairs(tuple_set: TupleSet) -> Iterable[TupleType[Tuple, Tuple]]:
    """The pairs of member tuples whose relations share an attribute."""
    members = sorted(tuple_set, key=lambda t: (t.relation_name, t.label))
    for first, second in itertools.combinations(members, 2):
        if first.connects_to(second):
            yield first, second


class ApproximateJoinFunction:
    """Base class of approximate join functions ``A``.

    Subclasses implement :meth:`score`.  :meth:`candidate_extensions` has a
    generic implementation that works for every *acceptable* ``A`` (it walks
    subsets of ``T ∪ {t_b}`` top-down, which is exponential only in the number
    of relations); functions with a polynomial procedure — such as ``A_min`` —
    override it.
    """

    name = "A"

    def score(self, tuple_set: TupleSet) -> float:
        raise NotImplementedError

    def __call__(self, tuple_set: TupleSet) -> float:
        value = self.score(tuple_set)
        if not (0.0 <= value <= 1.0):
            raise ApproximateJoinError(
                f"{self.name}({tuple_set!r}) = {value}, outside [0, 1]"
            )
        return value

    # -- acceptability ---------------------------------------------------- #
    def check_acceptable_on(self, tuple_sets: Sequence[TupleSet]) -> bool:
        """Spot-check the two acceptability conditions on the given sets.

        Used by tests and by callers that want to validate a custom function:
        verifies ``A(T) = 0`` for disconnected sets and anti-monotonicity for
        every connected pair ``T ⊆ T'`` among the supplied sets.
        """
        for tuple_set in tuple_sets:
            if not tuple_set.is_connected and self(tuple_set) != 0.0:
                return False
        for first in tuple_sets:
            for second in tuple_sets:
                if first.is_connected and second.is_connected and first.issubset(second):
                    if self(first) < self(second):
                        return False
        return True

    # -- efficient computability ------------------------------------------ #
    def candidate_extensions(
        self, tuple_set: TupleSet, t_b: Tuple, threshold: float
    ) -> List[TupleSet]:
        """All maximal ``T' ⊆ T ∪ {t_b}`` containing ``t_b`` with ``A(T') ≥ threshold``.

        Generic top-down search: start from ``T ∪ {t_b}``; whenever a set
        scores below the threshold, branch by removing one member other than
        ``t_b``.  Acceptability guarantees that any qualifying subset is
        reachable this way.  The result keeps only maximal sets.
        """
        if self(TupleSet.singleton(t_b)) < threshold:
            return []
        qualifying: List[TupleSet] = []
        seen = set()
        frontier = [tuple_set.with_tuple(t_b)]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current.is_connected and self(current) >= threshold:
                qualifying.append(current)
                continue
            if len(current) <= 1:
                continue
            for member in current:
                if member == t_b:
                    continue
                frontier.append(current.difference(TupleSet.singleton(member)))
        # Keep only the maximal qualifying sets.
        maximal: List[TupleSet] = []
        for candidate in qualifying:
            if any(candidate != other and candidate.issubset(other) for other in qualifying):
                continue
            if candidate not in maximal:
                maximal.append(candidate)
        return maximal


class MinJoin(ApproximateJoinFunction):
    """``A_min`` of Example 6.1.

    ``A_min(T)`` is 0 when ``T`` is not connected, ``prob(t)`` when ``T`` is
    the singleton ``{t}``, and otherwise the minimum over all member
    probabilities and all similarities of connected member pairs.  It is
    acceptable and efficiently computable (Proposition 6.5).
    """

    name = "A_min"

    def __init__(
        self,
        similarity: SimilarityFunction,
        probability: ProbabilityFunction = tuple_probability,
    ):
        self._sim = similarity
        self._prob = probability

    def score(self, tuple_set: TupleSet) -> float:
        if len(tuple_set) == 0:
            return 1.0
        if not tuple_set.is_connected:
            return 0.0
        members = list(tuple_set)
        if len(members) == 1:
            return self._prob(members[0])
        worst = min(self._prob(t) for t in members)
        for first, second in connected_pairs(tuple_set):
            worst = min(worst, self._sim(first, second))
        return worst

    def candidate_extensions(
        self, tuple_set: TupleSet, t_b: Tuple, threshold: float
    ) -> List[TupleSet]:
        """Proposition 6.5: the unique maximal qualifying subset containing ``t_b``.

        If ``prob(t_b) < τ`` there is none.  Otherwise drop every member whose
        relation is ``t_b``'s or whose similarity to ``t_b`` is below ``τ``,
        then keep the connected component of ``t_b``; member probabilities and
        member-pair similarities already satisfy the threshold because
        ``A_min(T) ≥ τ``.
        """
        if self._prob(t_b) < threshold:
            return []
        survivors = [
            t
            for t in tuple_set
            if t.relation_name != t_b.relation_name
            and (not t.connects_to(t_b) or self._sim(t, t_b) >= threshold)
        ]
        # Keep the connected component of t_b among the survivors.
        component = _connected_component_with(survivors, t_b)
        result = TupleSet(component + [t_b], catalog=tuple_set.catalog)
        return [result]


def _connected_component_with(survivors: List[Tuple], t_b: Tuple) -> List[Tuple]:
    """Members of ``survivors`` whose relations lie in the connected component of ``t_b``."""
    component = [t_b]
    remaining = list(survivors)
    changed = True
    while changed:
        changed = False
        still_remaining = []
        for t in remaining:
            if any(t.connects_to(member) for member in component):
                component.append(t)
                changed = True
            else:
                still_remaining.append(t)
        remaining = still_remaining
    return [t for t in component if t != t_b]


class ProductJoin(ApproximateJoinFunction):
    """``A_prod`` of Example 6.1.

    ``A_prod(T)`` is 0 when ``T`` is not connected, 1 when ``T`` is a
    singleton, and otherwise the product of the similarities of all connected
    member pairs.  Unlike ``A_min`` there may be several maximal qualifying
    subsets when a new tuple is considered (Example 6.3); the generic
    top-down enumeration of the base class handles that case.
    """

    name = "A_prod"

    def __init__(self, similarity: SimilarityFunction):
        self._sim = similarity

    def score(self, tuple_set: TupleSet) -> float:
        if len(tuple_set) == 0:
            return 1.0
        if not tuple_set.is_connected:
            return 0.0
        if len(tuple_set) == 1:
            return 1.0
        product = 1.0
        for first, second in connected_pairs(tuple_set):
            product *= self._sim(first, second)
        return product


class ExactJoin(ApproximateJoinFunction):
    """The exact JCC predicate expressed as an approximate join function.

    ``A(T) = 1`` when ``JCC(T)`` holds and ``0`` otherwise.  With any
    threshold ``0 < τ ≤ 1`` the approximate algorithm then computes exactly
    the ordinary full disjunction, which tests exploit to cross-check the two
    implementations.
    """

    name = "A_exact"

    def score(self, tuple_set: TupleSet) -> float:
        if len(tuple_set) == 0:
            return 1.0
        return 1.0 if tuple_set.is_jcc else 0.0

    def candidate_extensions(
        self, tuple_set: TupleSet, t_b: Tuple, threshold: float
    ) -> List[TupleSet]:
        """Footnote 3: the unique maximal JCC subset containing ``t_b``."""
        return [tuple_set.maximal_jcc_subset_with(t_b)]
