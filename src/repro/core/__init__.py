"""The paper's algorithms: full disjunctions, ranked and approximate variants.

Public surface of the reproduction of Cohen & Sagiv, *An incremental
algorithm for computing ranked full disjunctions*:

* :func:`incremental_fd` / :func:`get_next_result` — Figs. 1–2;
* :func:`full_disjunction` / :class:`FullDisjunction` — the ``FD(R)`` driver
  (Corollary 4.9) with streaming access (Theorem 4.10);
* :func:`priority_incremental_fd` / :func:`top_k` / :func:`above_threshold` —
  Fig. 3, Theorem 5.5 and Remark 5.6;
* :func:`approx_incremental_fd` / :func:`approx_full_disjunction` — Figs. 5–6,
  Theorem 6.6;
* the supporting data model (:class:`TupleSet`, JCC), ranking functions,
  approximate-join functions, block-based execution and initialization
  strategies of Section 7.
"""

from repro.core.tupleset import TupleSet, jcc
from repro.core.triples import Triple, TripleList, merge_join_consistent, merge_triples
from repro.core.scanner import BlockScanner, TupleScanner
from repro.core.store import (
    CompleteStore,
    ListIncompletePool,
    PoolStatistics,
    PriorityIncompletePool,
    record_store_statistics,
)
from repro.core.incremental import (
    FDStatistics,
    get_next_result,
    incremental_fd,
    maximally_extend,
    resolve_anchor,
)
from repro.core.full_disjunction import (
    FullDisjunction,
    first_k,
    full_disjunction,
    full_disjunction_sets,
)
from repro.core.initialization import STRATEGIES, initial_sets
from repro.core.trace import ExecutionTrace, TraceSnapshot, format_trace, trace_incremental_fd
from repro.core.ranking import (
    CDeterminedRanking,
    MaxRanking,
    RankingFunction,
    SumRanking,
    canonical_rank_key,
    enumerate_connected_subsets,
    enumerate_connected_subsets_containing,
    importance_function,
    paper_example_ranking,
    top_k_by_exhaustive_ranking,
    validate_importance_spec,
)
from repro.core.priority import (
    PriorityState,
    above_threshold,
    build_priority_pools,
    priority_incremental_fd,
    top_k,
)
from repro.core.approx_join import (
    ApproximateJoinFunction,
    EditDistanceSimilarity,
    ExactJoin,
    ExactMatchSimilarity,
    MinJoin,
    ProductJoin,
    SimilarityFunction,
    TableSimilarity,
    levenshtein,
    string_similarity,
)
from repro.core.approx import (
    ApproximateFullDisjunction,
    approx_full_disjunction,
    approx_full_disjunction_sets,
    approx_get_next_result,
    approx_incremental_fd,
)
from repro.core.ranked_approx import (
    approx_top_k,
    enumerate_qualifying_subsets,
    ranked_approx_full_disjunction,
)
from repro.core.blocks import (
    BlockExecutionReport,
    block_based_full_disjunction,
    compare_block_sizes,
)

__all__ = [
    # data model
    "TupleSet",
    "jcc",
    "Triple",
    "TripleList",
    "merge_join_consistent",
    "merge_triples",
    # scanners and pools
    "TupleScanner",
    "BlockScanner",
    "CompleteStore",
    "ListIncompletePool",
    "PriorityIncompletePool",
    "PoolStatistics",
    "record_store_statistics",
    # exact algorithm
    "FDStatistics",
    "incremental_fd",
    "get_next_result",
    "maximally_extend",
    "resolve_anchor",
    "full_disjunction",
    "full_disjunction_sets",
    "first_k",
    "FullDisjunction",
    "STRATEGIES",
    "initial_sets",
    # trace harness
    "ExecutionTrace",
    "TraceSnapshot",
    "trace_incremental_fd",
    "format_trace",
    # ranking
    "RankingFunction",
    "MaxRanking",
    "SumRanking",
    "CDeterminedRanking",
    "paper_example_ranking",
    "importance_function",
    "validate_importance_spec",
    "canonical_rank_key",
    "enumerate_connected_subsets",
    "enumerate_connected_subsets_containing",
    "top_k_by_exhaustive_ranking",
    "priority_incremental_fd",
    "PriorityState",
    "build_priority_pools",
    "top_k",
    "above_threshold",
    # approximate
    "SimilarityFunction",
    "ExactMatchSimilarity",
    "EditDistanceSimilarity",
    "TableSimilarity",
    "ApproximateJoinFunction",
    "MinJoin",
    "ProductJoin",
    "ExactJoin",
    "levenshtein",
    "string_similarity",
    "approx_incremental_fd",
    "approx_get_next_result",
    "approx_full_disjunction",
    "approx_full_disjunction_sets",
    "ApproximateFullDisjunction",
    "ranked_approx_full_disjunction",
    "approx_top_k",
    "enumerate_qualifying_subsets",
    # block-based execution
    "BlockExecutionReport",
    "block_based_full_disjunction",
    "compare_block_sizes",
]
