"""Block-based execution (Section 7, "Block-based execution").

The paper's algorithms are tuple-at-a-time; Section 7 notes that every loop
can iterate over *blocks* of tuples instead, without affecting correctness,
which is how the algorithm would be integrated into a standard query
processor.  In this library the change of execution granularity is carried by
the scanner (:class:`~repro.core.scanner.BlockScanner`): the tuple stream is
identical, but tuples are fetched a block at a time and the number of block
fetches — the I/O measure a database system cares about — is recorded.

This module provides the user-facing helpers around that mechanism: running
the full disjunction block-based, and comparing the simulated I/O cost across
block sizes (experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple as TupleType

from repro.relational.database import Database
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.store import probe_counters
from repro.core.tupleset import TupleSet


@dataclass
class BlockExecutionReport:
    """Work measures of one block-based (or tuple-based) run."""

    block_size: Optional[int]
    results: int
    tuple_reads: int
    block_reads: int
    scan_passes: int
    bucket_probes: int = 0
    full_scans: int = 0

    @property
    def io_requests(self) -> int:
        """Simulated I/O requests: block fetches, or tuple fetches when tuple-based."""
        return self.block_reads if self.block_size is not None else self.tuple_reads

    def as_dict(self) -> dict:
        return {
            "block_size": self.block_size,
            "results": self.results,
            "tuple_reads": self.tuple_reads,
            "block_reads": self.block_reads,
            "scan_passes": self.scan_passes,
            "io_requests": self.io_requests,
            "bucket_probes": self.bucket_probes,
            "full_scans": self.full_scans,
        }


def block_based_full_disjunction(
    database: Database,
    block_size: Optional[int],
    use_index: bool = False,
    initialization: str = "singletons",
) -> TupleType[List[TupleSet], BlockExecutionReport]:
    """Compute ``FD(R)`` with the given execution granularity.

    ``block_size=None`` gives the paper's tuple-based execution; any positive
    value gives the block-based execution of Section 7.  The produced tuple
    sets are identical in both modes; only the I/O pattern differs.
    """
    statistics = FDStatistics()
    results = full_disjunction(
        database,
        use_index=use_index,
        initialization=initialization,
        block_size=block_size,
        statistics=statistics,
    )
    bucket_probes, full_scans = probe_counters(statistics)
    report = BlockExecutionReport(
        block_size=block_size,
        results=len(results),
        tuple_reads=statistics.tuple_reads,
        block_reads=statistics.block_reads,
        scan_passes=statistics.scan_passes,
        bucket_probes=bucket_probes,
        full_scans=full_scans,
    )
    return results, report


def compare_block_sizes(
    database: Database,
    block_sizes: Sequence[Optional[int]],
    use_index: bool = False,
) -> List[BlockExecutionReport]:
    """Run the full disjunction once per block size and collect the reports.

    ``None`` entries request the tuple-based execution, so a typical call is
    ``compare_block_sizes(db, [None, 8, 64, 512])``.  All runs are checked to
    produce the same set of results; a mismatch raises ``AssertionError``
    because it would indicate a bug, not a legitimate outcome.
    """
    reports: List[BlockExecutionReport] = []
    reference = None
    for block_size in block_sizes:
        results, report = block_based_full_disjunction(
            database, block_size, use_index=use_index
        )
        produced = frozenset(results)
        if reference is None:
            reference = produced
        elif produced != reference:
            raise AssertionError(
                "block-based execution changed the result set "
                f"(block_size={block_size}); this should be impossible"
            )
        reports.append(report)
    return reports
