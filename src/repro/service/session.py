"""Resumable first-k query sessions over any full-disjunction driver.

``IncrementalFD`` exists so a client can ask for the first ``k`` answers and
come back later for more (Theorem 4.10).  The drivers already *are* lazy
generators, but a bare generator is a poor serving primitive: it can't be
peeked without consuming, can't be shared between clients, and abandoning it
throws away the Complete/Incomplete state it built.

Two classes split the concern:

* :class:`ResultLog` — the materialized, append-only prefix of one query's
  answer stream plus the live generator that extends it.  The log *is* the
  session-survival snapshot: the generator's closure keeps the engine's
  ``Complete``/``Incomplete`` stores alive between pulls, and the log keeps
  every emitted answer, so any number of cursors can replay or continue the
  stream without recomputing a single ``GetNextResult`` step.
* :class:`QuerySession` — a cursor over a log: ``next(k)``, ``peek()``,
  ``close()``, ``fork()``.  Sessions are cheap; the log is where the work
  lives.  A session pauses by simply not being asked for more.

:func:`open_session` builds the generator for any of the four engines
(:data:`ENGINES`) and hands back an owning session.  The prefix cache
(:mod:`repro.service.cache`) and the streaming maintainer
(:mod:`repro.service.delta`) build their sessions over shared logs instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.core.incremental import FDStatistics
from repro.relational.database import Database

#: The engines a session can wrap; each maps to a lazy result generator.
ENGINES = ("fd", "priority", "approx", "ranked_approx")


def _fd_source(database: Database, options: dict) -> Iterator[object]:
    from repro.core.full_disjunction import full_disjunction_sets

    return full_disjunction_sets(
        database,
        use_index=options.get("use_index", False),
        initialization=options.get("initialization", "singletons"),
        block_size=options.get("block_size"),
        statistics=options.get("statistics"),
        backend=options.get("backend"),
    )


def _priority_source(database: Database, options: dict) -> Iterator[object]:
    from repro.core.priority import priority_incremental_fd

    ranking = options.get("ranking")
    if ranking is None:
        raise ValueError("the 'priority' engine requires a ranking= option")
    return priority_incremental_fd(
        database,
        ranking,
        k=options.get("k"),
        threshold=options.get("rank_threshold"),
        use_index=options.get("use_index", False),
        statistics=options.get("statistics"),
        backend=options.get("backend"),
    )


def _approx_source(database: Database, options: dict) -> Iterator[object]:
    from repro.core.approx import approx_full_disjunction_sets

    join_function = options.get("join_function")
    if join_function is None:
        raise ValueError("the 'approx' engine requires a join_function= option")
    return approx_full_disjunction_sets(
        database,
        join_function,
        options.get("threshold", 1.0),
        use_index=options.get("use_index", False),
        statistics=options.get("statistics"),
        backend=options.get("backend"),
    )


def _ranked_approx_source(database: Database, options: dict) -> Iterator[object]:
    from repro.core.ranked_approx import ranked_approx_full_disjunction

    join_function = options.get("join_function")
    ranking = options.get("ranking")
    if join_function is None or ranking is None:
        raise ValueError(
            "the 'ranked_approx' engine requires join_function= and ranking= options"
        )
    return ranked_approx_full_disjunction(
        database,
        join_function,
        options.get("threshold", 1.0),
        ranking,
        k=options.get("k"),
        rank_threshold=options.get("rank_threshold"),
        use_index=options.get("use_index", False),
        statistics=options.get("statistics"),
        backend=options.get("backend"),
    )


class StaleResultLog(RuntimeError):
    """Raised when a cursor needs results from an invalidated log.

    The materialized prefix stays readable; only pulls *beyond* it fail.
    Serving clients treat this as "reopen the query" — the database moved to
    a new generation, or the cache evicted the shared computation.
    """


@dataclass(frozen=True)
class Retraction:
    """A log entry announcing that an earlier result no longer holds.

    The streaming maintainer appends one per previously-emitted result that
    contained a deleted tuple, so open cursors observe the retraction in
    stream order instead of silently serving a stale answer.  ``item`` is
    the retracted log entry exactly as it was first appended — a tuple set,
    or a ``(tuple set, score)`` pair on ranked streams.
    """

    item: object

    @property
    def tuple_set(self):
        """The retracted result's tuple set (score stripped on ranked streams)."""
        return self.item[0] if isinstance(self.item, tuple) else self.item

    @property
    def score(self) -> Optional[float]:
        """The retracted result's rank, on ranked streams (else ``None``)."""
        return self.item[1] if isinstance(self.item, tuple) else None


_SOURCES: Dict[str, Callable[[Database, dict], Iterator[object]]] = {
    "fd": _fd_source,
    "priority": _priority_source,
    "approx": _approx_source,
    "ranked_approx": _ranked_approx_source,
}


def make_result_source(
    database: Database, engine: str = "fd", **options
) -> Iterator[object]:
    """The lazy result generator of one engine run (see :data:`ENGINES`)."""
    try:
        builder = _SOURCES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        ) from None
    return builder(database, options)


class ResultLog:
    """The append-only materialized prefix of one query's answer stream.

    A log has two faces: a list of already-produced results (``results``) and
    an optional *source* generator that can extend the list on demand
    (:meth:`ensure`).  Once the source is exhausted — or :meth:`finish` /
    :meth:`close` is called — the log is complete and serves purely from
    memory.

    Push-mode logs (``source=None``) are fed through :meth:`append` by an
    external producer; the streaming maintainer uses this to surface new
    delta results to open sessions without restarting them.

    A log ends in one of two ways.  :meth:`finish` is the *graceful* end —
    the stream genuinely has no more results, and cursors that reach the end
    report exhaustion.  :meth:`close` is *invalidation* — the computation was
    abandoned (cache eviction, a database generation change) while results
    may still have been pending; cursors can read everything already
    materialized, but asking beyond it raises :class:`StaleResultLog` rather
    than silently passing a truncated stream off as complete.
    """

    def __init__(
        self,
        source: Optional[Iterator[object]] = None,
        statistics: Optional[FDStatistics] = None,
        live: bool = False,
    ):
        self.results: List[object] = []
        self.statistics = statistics
        self._source = source
        # ``live`` logs (and push-mode logs, source=None) stay incomplete
        # until finish(): the producer, not the log, knows when the stream
        # is over.  A plain generator-backed log completes when its source
        # is exhausted.
        self._live = live or source is None
        self._complete = False
        self._closed = False
        self._invalidated_because: Optional[str] = None
        #: Results pulled from the source (cache hits serve the rest).
        self.pulled = 0

    @classmethod
    def from_results(
        cls,
        items: Iterable[object],
        complete: bool = False,
        seal_reason: Optional[str] = None,
        live: bool = False,
    ) -> "ResultLog":
        """Reconstruct a log from persisted results (storage-layer restore).

        Three shapes cover every recovered log:

        * ``complete=True`` — the stream had been drained; cursors see a
          finished prefix and never touch an engine (the cache's
          "complete, serves from memory" state: complete but *not* closed).
        * ``seal_reason=...`` — a materialized prefix whose tail must be
          recomputed on the next open, exactly the state
          :meth:`seal`/:meth:`reopen_with` produce.
        * ``live=True`` — a push-mode producer (the delta maintainer) will
          keep appending; the log completes only on :meth:`finish`.

        None of these states is reachable through the constructor alone,
        which is why restore goes through this classmethod.
        """
        log = cls()
        log.results.extend(items)
        log._live = live
        if complete:
            log._complete = True
        elif seal_reason is not None and not live:
            log._invalidated_because = seal_reason
        return log

    @property
    def complete(self) -> bool:
        """True when no further results will ever be appended."""
        return self._complete

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self.results)

    def ensure(self, count: int) -> int:
        """Pull from the source until ``count`` results exist (or it dries up).

        Returns the materialized length.  Pulls one result per loop so a
        cooperative caller can interleave other work between calls.  Asking
        for results beyond the materialized prefix of an *invalidated* log
        raises :class:`StaleResultLog` — the pending tail was abandoned, and
        pretending the stream ended here would hand the caller a silently
        truncated answer set.
        """
        source = self._source
        if source is not None:
            while len(self.results) < count:
                try:
                    item = next(source)
                except StopIteration:
                    # The source genuinely ran dry: a plain log is complete;
                    # a live log stays open for its producer's appends.
                    self._settle()
                    if not self._live:
                        self._complete = True
                    break
                self.results.append(item)
                self.pulled += 1
        elif (
            count > len(self.results)
            and not self._complete
            and self._invalidated_because is not None
        ):
            raise StaleResultLog(self._invalidated_because)
        return len(self.results)

    def append(self, item: object) -> None:
        """Push one result produced outside the source (streaming delta)."""
        if self._closed:
            raise RuntimeError("cannot append to a closed ResultLog")
        if self._source is not None:
            raise RuntimeError("cannot append while a source generator is active")
        self.results.append(item)

    def exhaust_source(self) -> int:
        """Pull the source dry (the streaming maintainer's base drain)."""
        while self._source is not None:
            before = len(self.results)
            if self.ensure(before + 64) == before:
                break
        return len(self.results)

    @property
    def sealed(self) -> bool:
        """True when the log is a revalidated prefix awaiting a new source.

        Sealing (unlike closing) keeps the log *servable*: the materialized
        prefix is still valid under the current database generation, pulls
        beyond it raise :class:`StaleResultLog` until a caller that knows the
        query's options attaches a recomputation tail via
        :meth:`reopen_with`.
        """
        return (
            self._source is None
            and not self._complete
            and not self._closed
            and self._invalidated_because is not None
        )

    def seal(self, reason: str) -> None:
        """Epoch revalidation: drop the (tainted) source, keep serving the prefix.

        After a deletion, a generator mid-stream observes a mutated database
        and cannot be pulled further — but a prefix whose results contain no
        deleted tuple is still exactly valid.  Sealing closes the source and
        records ``reason`` for pulls beyond the prefix, while leaving the log
        open so the prefix cache can re-key it under the new generation and
        later attach a fresh tail (:meth:`reopen_with`).  A complete log has
        nothing to seal.
        """
        self._settle()
        if not self._complete:
            self._invalidated_because = reason

    def reopen_with(self, source: Iterator[object]) -> None:
        """Attach a fresh source to a sealed log (the revalidation tail).

        The source must yield only results *not* already in the materialized
        prefix (the cache builds it as a deduplicating re-run); from the
        cursor's point of view the log simply continues.
        """
        if self._closed:
            raise RuntimeError("cannot reopen a closed ResultLog")
        if self._source is not None:
            raise RuntimeError("cannot reopen while a source generator is active")
        if self._complete:
            raise RuntimeError("cannot reopen a complete ResultLog")
        self._invalidated_because = None
        self._source = source

    def finish(self) -> None:
        """The graceful end: the stream is over, cursors at the end are done."""
        self._settle()
        self._complete = True
        self._closed = True

    def close(self, reason: str = "the query was closed") -> None:
        """Invalidate: close the source generator, keep the prefix readable.

        A log whose source had already run dry (or that was finished) is
        genuinely complete and closing it changes nothing; otherwise cursors
        that ask beyond the materialized prefix get :class:`StaleResultLog`
        with this ``reason``.
        """
        self._settle()
        self._closed = True
        if not self._complete:
            self._invalidated_because = reason

    def _settle(self) -> None:
        """Drop and close the source generator (completion is the caller's call)."""
        source, self._source = self._source, None
        if source is not None:
            close = getattr(source, "close", None)
            if close is not None:
                close()


class QuerySession:
    """A pausable, resumable cursor over a :class:`ResultLog`.

    Sessions never recompute: results behind the cursor are served from the
    log, results ahead of it are produced lazily by the log's source.  A
    session "pauses" by not being polled and "resumes" on the next
    :meth:`next` — across those calls the engine's stores live on inside the
    log's generator closure.

    ``owns_log`` marks the session that controls the log's lifetime; cursors
    handed out by the prefix cache or the streaming maintainer share a log
    they do not own, so closing them never tears down another client's
    computation.
    """

    def __init__(
        self,
        log: ResultLog,
        owns_log: bool = True,
        name: Optional[str] = None,
    ):
        self._log = log
        self._owns_log = owns_log
        self.name = name
        self.position = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #
    def next(self, k: int = 1) -> List[object]:
        """Return up to ``k`` further results, advancing the cursor.

        Fewer than ``k`` results means the stream is exhausted — or, for a
        live streaming log, that nothing more has arrived *yet*.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self._check_open()
        available = self._log.ensure(self.position + k)
        batch = self._log.results[self.position : min(available, self.position + k)]
        self.position += len(batch)
        return batch

    def peek(self) -> Optional[object]:
        """The next result without consuming it (``None`` when exhausted)."""
        self._check_open()
        available = self._log.ensure(self.position + 1)
        if available <= self.position:
            return None
        return self._log.results[self.position]

    def drain(self) -> List[object]:
        """Every remaining result (the non-interactive tail call)."""
        self._check_open()
        results: List[object] = []
        while True:
            batch = self.next(64)
            if not batch:
                return results
            results.extend(batch)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def exhausted(self) -> bool:
        """True when the cursor has consumed a *complete* log entirely."""
        return self._log.complete and self.position >= len(self._log)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def log(self) -> ResultLog:
        return self._log

    @property
    def emitted(self) -> List[object]:
        """The results this cursor has consumed so far (a list copy)."""
        return list(self._log.results[: self.position])

    @property
    def statistics(self) -> Optional[FDStatistics]:
        return self._log.statistics

    def fork(self, rewind: bool = True) -> "QuerySession":
        """A new cursor over the same log — at the start, or at this position.

        Forks share every already-computed result; they are how a cached
        prefix is replayed to a second client for free.
        """
        fork = QuerySession(self._log, owns_log=False, name=self.name)
        fork.position = 0 if rewind else self.position
        return fork

    def close(self) -> None:
        """End the session; the underlying log is closed only when owned."""
        if self._closed:
            return
        self._closed = True
        if self._owns_log:
            self._log.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the session is closed")

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("done" if self.exhausted else "live")
        return (
            f"QuerySession(name={self.name!r}, position={self.position}, "
            f"log={len(self._log)} results, {state})"
        )


def open_session(
    database: Database,
    engine: str = "fd",
    name: Optional[str] = None,
    statistics: Optional[FDStatistics] = None,
    **options,
) -> QuerySession:
    """Open an owning session over a fresh engine run.

    ``engine`` is one of :data:`ENGINES`; ``options`` are forwarded to the
    engine (``use_index``, ``backend``, ``ranking``, ``join_function``,
    ``threshold``, ``initialization``, ``block_size``, …).  The returned
    session owns its log: closing it closes the generator and releases the
    engine state.
    """
    if statistics is None:
        statistics = FDStatistics()
    options = dict(options, statistics=statistics)
    source = make_result_source(database, engine, **options)
    log = ResultLog(source, statistics=statistics)
    return QuerySession(log, owns_log=True, name=name)
