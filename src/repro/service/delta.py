"""Incremental maintenance of the full disjunction under streaming ingest.

:func:`repro.workloads.streaming.replay_stream` serves arrivals by re-running
the whole engine after every batch and deduplicating — correct, but the
per-arrival cost is the cost of the full result.  This module replaces the
re-run with true delta maintenance, the ROADMAP's "the arrival's singleton is
the only new seed":

* the maintainer keeps one shared, indexed ``Complete`` store holding every
  result emitted so far (across the base run and all arrivals);
* each arrival ``t`` is appended through
  :meth:`~repro.relational.database.Database.add_tuple` (append-only catalog
  maintenance, no snapshot rebuild) and then a single ``GetNextResult`` loop
  runs, anchored at ``t``'s relation and seeded with the *singleton*
  ``{t}`` alone;
* candidates that do not contain ``t`` are pruned by the accumulated store
  (they are subsets of old results), so the loop's work is proportional to
  the new results the arrival creates, not to the result set already served.

Why this is complete: a set that is maximal after the arrival but does not
contain ``t`` was already maximal before it (the tuple universe only grew),
so every genuinely *new* result contains ``t`` — and since a tuple set holds
at most one tuple per relation, ``t`` is exactly the new result's anchor
tuple.  Seeding ``{t}`` therefore satisfies the initialization condition of
Remark 4.3 for the new results, while the store's subsumption check (Line 11)
stops the old ones from being re-derived.  The randomized equivalence tests
in ``tests/service/test_delta.py`` check the emitted stream against
``replay_stream``'s full recompute arrival by arrival.

Open sessions observe arrivals without restarting: the maintainer's
:class:`~repro.service.session.ResultLog` is *live* — delta results are
appended to it, and any cursor past the old end simply finds more results on
its next ``next(k)``.

**Ranked delta maintenance.**  With a monotonically c-determined ``ranking``
the maintainer runs on a live :class:`~repro.core.priority.PriorityState`
instead: the base run drains the ranked engine (results carry scores), and
each arrival ``t`` seeds the state's priority queues with only the
qualifying size-≤c connected subsets *containing* ``t``
(:func:`~repro.core.ranking.enumerate_connected_subsets_containing`) — the
exact queue members the Fig. 3 initialization is missing after the arrival.
Draining the queues re-derives only results anchored at the arrivals (the
shared ``Complete`` store suppresses everything older), and the batch's new
results are appended to the live log in canonical rank order.  The
completeness argument is the unranked one verbatim: a set maximal after the
arrival but not containing it was maximal before, so every genuinely new
result contains the arrival — and the arrival's subsets are exactly the
seeds pushed.

**Mutations.**  The monotone-emission contract ends here: deletions
(:meth:`StreamingFullDisjunction.remove`) and in-place updates
(:meth:`StreamingFullDisjunction.update`) are first-class.  A deleted tuple
is tombstoned in the catalog (no rebuild); every previously emitted result
containing it is *retracted* — dropped from the accumulated store so it
stops subsuming, and announced to open cursors as a
:class:`~repro.service.session.Retraction` log entry — and the results the
retraction unblocks are re-derived by maximally extending each retracted
result's surviving connected components (see :func:`_surviving_components`
for why that is complete).  An update is a deletion plus an arrival in one
batch.  The invariant, asserted by the randomized suites in
``tests/service/test_mutations.py``: after any interleaving of arrivals,
deletions and updates, the net event stream (emits minus retracts) equals a
full recompute on the final database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.core.full_disjunction import full_disjunction_sets
from repro.core.incremental import FDStatistics
from repro.core.kernels import active_kernel, tag_kernel
from repro.core.priority import PriorityState
from repro.core.ranking import canonical_rank_key
from repro.core.scanner import TupleScanner
from repro.core.store import CompleteStore, ListIncompletePool, record_store_statistics
from repro.core.tupleset import TupleSet
from repro.obs.tracing import trace_span
from repro.relational.database import Database
from repro.relational.errors import SchemaError
from repro.service.session import QuerySession, ResultLog, Retraction
from repro.workloads.streaming import (
    Arrival,
    IngestEvent,
    Removal,
    ResultEvent,
    StreamEvent,
    StreamOp,
    StreamSummary,
    Update,
)


@dataclass
class DeltaSummary(StreamSummary):
    """A :class:`StreamSummary` with the per-batch delta work alongside.

    ``per_batch`` holds one record per applied batch: ``{"arrivals",
    "removals", "updates", "results_emitted", "results_retracted",
    "candidates_generated", "steps"}`` — the counters the streaming
    benchmark compares against ``replay_stream``'s full recompute to show
    the per-operation work is proportional to the delta.
    """

    per_batch: List[dict] = field(default_factory=list)

    def delta_work(self) -> int:
        """Total candidates generated across all delta passes."""
        return sum(batch["candidates_generated"] for batch in self.per_batch)

    def retractions(self) -> int:
        """Total results retracted across all batches."""
        return sum(batch.get("results_retracted", 0) for batch in self.per_batch)


def _surviving_components(result: TupleSet, dead: set, catalog) -> List[TupleSet]:
    """The connected JCC components of a retracted result's surviving members.

    Deleting tuples from a JCC set keeps it join consistent but may cut its
    relation graph; each connected piece is a JCC set again.  These
    components are exactly the seeds whose maximal extensions are the
    results a retraction can unblock: a result ``T`` of the post-deletion
    database that was not maximal before is a strict subset of some
    retracted result ``R`` (maximalising ``T`` in the old database must pass
    through a deleted tuple), ``T``'s members all survive, and ``T`` being
    connected lands it inside one component ``C`` of ``R``'s survivors —
    whence ``T ⊆ C`` with ``C`` JCC forces ``T = C`` by ``T``'s maximality.
    """
    survivors = sorted(t for t in result if t not in dead)
    components: List[TupleSet] = []
    while survivors:
        base = TupleSet(survivors, catalog=catalog)
        component = base.maximal_jcc_subset_with(survivors[0])
        components.append(component)
        survivors = [t for t in survivors if t not in component]
    return components


def _canonical_rank_order(ranked_items):
    """Reorder a rank-sorted stream so ties land in sort-key order.

    The ranked engine breaks score ties by queue insertion order; the
    serving contract sorts them by the tuple set's sort key instead, so the
    delta-maintained stream and the full-recompute reference are
    *identical*, not merely set-equal.  Scores are non-increasing on the
    input stream, so buffering one tie group at a time suffices — each
    group is released as soon as a strictly lower score arrives.
    """
    group: List = []
    group_score = None
    for item in ranked_items:
        if group and item[1] != group_score:
            group.sort(key=canonical_rank_key)
            yield from group
            group = []
        group_score = item[1]
        group.append(item)
    if group:
        group.sort(key=canonical_rank_key)
        yield from group


class StreamingFullDisjunction:
    """Maintain ``FD(R)`` incrementally while tuples arrive.

    The maintainer owns three pieces of state that survive across arrivals:
    the database (with its append-only catalog), the shared indexed
    ``Complete`` store mirroring every distinct result emitted so far, and a
    live :class:`ResultLog` that open sessions read.

    ``backend`` schedules the per-step work (serial / batched / async —
    in-process backends; the per-arrival loop is a single pass, so there is
    nothing to shard).

    With a ``ranking`` the maintained stream is the *ranked* full
    disjunction: log entries are ``(tuple set, score)`` pairs, the base run
    is rank-ordered, and every ingested batch appends its new results in
    canonical rank order (see the module docstring for the argument).
    """

    def __init__(
        self,
        database: Database,
        use_index: bool = True,
        backend=None,
        statistics: Optional[FDStatistics] = None,
        ranking=None,
    ):
        from repro.exec import resolve_backend

        self.database = database
        self.use_index = use_index
        self.ranking = ranking
        self.statistics = statistics if statistics is not None else FDStatistics()
        tag_kernel(self.statistics)
        self._backend = resolve_backend(backend)
        self._next_result = self._backend.next_result
        if ranking is not None:
            # The live queue state *is* the engine: its shared Complete
            # store doubles as the maintainer's accumulated result mirror.
            self._state = PriorityState(
                database,
                ranking,
                use_index=use_index,
                statistics=self.statistics,
                backend=self._backend,
            )
            self._store = self._state.complete
        else:
            self._state = None
            self._store = CompleteStore(anchor_relation=None, use_index=use_index)
        self._log = ResultLog(source=self._base_results(), live=True)
        self._primed = False
        self.arrivals_applied = 0
        #: Deletions + effective in-place updates applied so far.
        self.mutations_applied = 0
        #: Rank of every live ranked result (for scoring retraction events).
        self._scores: "dict" = {}

    @property
    def ranked(self) -> bool:
        """Whether log entries are ``(tuple set, score)`` pairs."""
        return self.ranking is not None

    # ------------------------------------------------------------------ #
    # the base run
    # ------------------------------------------------------------------ #
    def _base_results(self) -> Iterator[object]:
        """The initial database's full disjunction, mirrored into the store."""
        if self._state is not None:
            # The ranked engine mirrors into its own shared Complete store
            # (= self._store) as it produces.  Canonicalising rank ties
            # keeps the log byte-identical to the recompute reference
            # stream; buffering is per tie group, so first-k stays
            # incremental.
            for item in _canonical_rank_order(self._state.results()):
                self._scores[item[0]] = item[1]
                yield item
            return
        for result in full_disjunction_sets(
            self.database,
            use_index=self.use_index,
            statistics=self.statistics,
            backend=self._backend,
        ):
            self._store.add(result)
            yield result

    def prime(self) -> int:
        """Drain the base run (must happen before the first ingest).

        Until the store mirrors the *complete* base result set, subsumption
        cannot distinguish "new" from "not yet derived", so delta passes wait
        on this.  Sessions may lazily pull first-k results beforehand; primes
        are idempotent.
        """
        with trace_span("delta.prime", "delta"):
            self._log.exhaust_source()
        self._primed = True
        if self._state is not None:
            # Flush the base run's store counters; record_statistics is
            # delta-safe, so later flushes charge only their own growth.
            self._state.record_statistics()
        return len(self._log)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def session(self, name: Optional[str] = None) -> QuerySession:
        """A cursor over the live result log (shared, not owned)."""
        return QuerySession(self._log, owns_log=False, name=name)

    @property
    def results(self) -> List[object]:
        """The *net* results standing so far (emits minus retractions), in order.

        Tuple sets on unranked streams; ``(tuple set, score)`` pairs on
        ranked ones.  The raw event stream — including
        :class:`~repro.service.session.Retraction` markers — is what
        cursors over :attr:`log` read.
        """
        live: List[object] = []
        for item in self._log.results:
            if isinstance(item, Retraction):
                try:
                    live.remove(item.item)
                except ValueError:  # pragma: no cover - defensive
                    pass
            else:
                live.append(item)
        return live

    @property
    def log(self) -> ResultLog:
        return self._log

    def close(self) -> None:
        """End the stream gracefully: open sessions see a completed log."""
        self._log.finish()
        if self._state is not None:
            self._state.record_statistics()

    # ------------------------------------------------------------------ #
    # durable state (storage-layer snapshot/restore hooks)
    # ------------------------------------------------------------------ #
    def durable_log(self) -> Optional[dict]:
        """Serialize the maintainer's emitted stream for a snapshot.

        Results are named by sorted catalog gid lists — gids are stable
        across :meth:`Database.restore_state
        <repro.relational.database.Database.restore_state>` by construction,
        and tombstoned members stay addressable via ``tuple_at``.  The
        accumulated ``Complete`` store is serialized *separately* from the
        log, in insertion order: the store can legitimately hold re-derived
        subsets that were never emitted (the "covered" branch of a delta
        pass), and subsumption after recovery must see exactly what an
        uninterrupted run would.

        Returns ``None`` for a fresh maintainer (nothing pulled, nothing
        ingested): the restored side then simply bootstraps its own base
        run, which is cheaper than forcing a full prime here.  A partially
        pulled base generator cannot be serialized mid-flight, so any other
        state is primed first.
        """
        if self._state is not None:
            raise ValueError(
                "ranked maintainer state (live priority queues) is not "
                "persistable; snapshot the unranked maintainer only"
            )
        if not self._primed and not self._log.results:
            return None
        self.prime()
        catalog = self.database.catalog()

        def gids(tuple_set) -> List[int]:
            return sorted(catalog.id_of(t) for t in tuple_set)

        log_entries = []
        for item in self._log.results:
            if isinstance(item, Retraction):
                log_entries.append({"retract": True, "gids": gids(item.tuple_set)})
            else:
                log_entries.append({"gids": gids(item)})
        return {
            "log": log_entries,
            "store": [gids(tuple_set) for tuple_set in self._store],
            "arrivals_applied": self.arrivals_applied,
            "mutations_applied": self.mutations_applied,
        }

    def restore_durable_log(self, payload: Optional[dict]) -> None:
        """Rebuild the emitted stream and store from :meth:`durable_log`.

        Must run on a maintainer that has not produced anything yet; the
        database underneath must already be the restored snapshot database
        (gids resolve against its catalog).  ``None`` restores the fresh
        state — the base run stays lazy.  After restore the maintainer is
        primed: new sessions replay the recovered stream byte for byte and
        ingest continues from exactly where the snapshot left off.
        """
        if self._state is not None:
            raise ValueError("ranked maintainer state is not restorable")
        if self._primed or self._log.results:
            raise ValueError(
                "cannot restore into a maintainer that has already emitted"
            )
        if payload is None:
            return
        catalog = self.database.catalog()

        def tuple_set(gids: Sequence[int]) -> TupleSet:
            return TupleSet(
                [catalog.tuple_at(gid) for gid in gids], catalog=catalog
            )

        items: List[object] = []
        for entry in payload["log"]:
            members = tuple_set(entry["gids"])
            items.append(Retraction(members) if entry.get("retract") else members)
        replaced = self._log
        self._log = ResultLog.from_results(items, live=True)
        replaced.close("replaced by restored durable state")
        for gids in payload["store"]:
            self._store.add(tuple_set(gids))
        self.arrivals_applied = payload.get("arrivals_applied", 0)
        self.mutations_applied = payload.get("mutations_applied", 0)
        self._primed = True

    # ------------------------------------------------------------------ #
    # ingest / retract / update
    # ------------------------------------------------------------------ #
    def _record(self, counters, **counts) -> dict:
        """One batch record: op counts plus the work charged since ``counters``."""
        candidates_before, steps_before = counters
        record = {
            "arrivals": 0,
            "removals": 0,
            "updates": 0,
            "results_emitted": 0,
            "results_retracted": 0,
            "candidates_generated": (
                self.statistics.candidates_generated - candidates_before
            ),
            "steps": self.statistics.results - steps_before,
        }
        record.update(counts)
        return record

    def _counters(self):
        return (self.statistics.candidates_generated, self.statistics.results)

    def ingest(self, arrivals: Sequence[Arrival]) -> dict:
        """Apply one batch of arrivals and emit the delta.

        All tuples are appended first (each an O(s) in-place catalog
        extension), then one delta pass runs per distinct target relation,
        seeded with that relation's new singletons.  Returns the batch
        record also appended to summaries: ops applied, results emitted and
        retracted, candidates generated, ``GetNextResult`` steps taken.
        """
        if not self._primed:
            self.prime()
        # Normalise and validate the whole batch *before* mutating anything:
        # a bad arrival must not leave earlier ones applied to the database
        # with their delta passes never run (results silently missing).
        arrivals = [Arrival(*arrival) for arrival in arrivals]
        for arrival in arrivals:
            relation = self.database.relation(arrival.relation_name)
            expected = len(relation.schema.attributes)
            got = len(tuple(arrival.values))
            if got != expected:
                raise SchemaError(
                    f"arrival for {arrival.relation_name!r} has {got} values, "
                    f"schema has {expected} attributes"
                )
        counters = self._counters()
        with trace_span("delta.ingest", "delta", arrivals=len(arrivals)):
            fresh: list = []
            for arrival in arrivals:
                fresh.append(
                    self.database.add_tuple(
                        arrival.relation_name,
                        arrival.values,
                        importance=arrival.importance,
                        probability=arrival.probability,
                    )
                )
            self.arrivals_applied += len(arrivals)
            emitted = self._emit_arrival_delta(fresh)
        return self._record(
            counters, arrivals=len(arrivals), results_emitted=emitted
        )

    def remove(self, removals: Sequence[Removal]) -> dict:
        """Apply one batch of deletions: retract, then re-derive the unblocked.

        Every tuple is tombstoned through :meth:`Database.remove_tuple
        <repro.relational.database.Database.remove_tuple>` (no catalog
        rebuild, one epoch bump per deletion); every previously emitted
        result containing a dead tuple is *retracted* — a
        :class:`~repro.service.session.Retraction` marker is appended to the
        live log, so open cursors observe the withdrawal in stream order —
        and the results those retractions unblock (maximal extensions of the
        retracted results' surviving components) are derived and emitted.
        The net stream after the batch equals a full recompute on the
        post-deletion database.
        """
        if not self._primed:
            self.prime()
        removals = [Removal(*removal) for removal in removals]
        targets = set()
        for removal in removals:
            relation = self.database.relation(removal.relation_name)
            relation.tuple_by_label(removal.label)  # raises on unknown labels
            key = (removal.relation_name, removal.label)
            if key in targets:
                raise ValueError(
                    f"duplicate removal of {removal.label!r} from "
                    f"{removal.relation_name!r} in one batch"
                )
            targets.add(key)
        counters = self._counters()
        with trace_span("delta.retract", "delta", removals=len(removals)):
            dead = [
                self.database.remove_tuple(removal.relation_name, removal.label)
                for removal in removals
            ]
            self.mutations_applied += len(removals)
            retracted, new_items = self._retract_and_rederive(dead)
            if self._state is not None:
                new_items.sort(key=canonical_rank_key)
            self._append_results(new_items)
        return self._record(
            counters,
            removals=len(removals),
            results_emitted=len(new_items),
            results_retracted=retracted,
        )

    def update(self, updates: Sequence[Update]) -> dict:
        """Apply one batch of in-place updates (tombstone + arrival, one batch).

        Each update retracts every result containing the old incarnation and
        re-derives what those retractions unblock, then the fresh
        incarnations run the ordinary arrival delta — all inside one batch
        record, so the net stream equals a full recompute on the updated
        database.  Updates that change nothing are skipped entirely (no
        epoch bump, no events).
        """
        if not self._primed:
            self.prime()
        updates = [Update(*update) for update in updates]
        targets = set()
        effective: list = []
        for update in updates:
            # Validation and no-op detection live on the database
            # (``resolve_update``), so the maintainer can never disagree
            # with ``update_tuple`` about what counts as a change.
            resolved = self.database.resolve_update(
                update.relation_name,
                update.label,
                update.values,
                importance=update.importance,
                probability=update.probability,
            )
            key = (update.relation_name, update.label)
            if key in targets:
                raise ValueError(
                    f"duplicate update of {update.label!r} in "
                    f"{update.relation_name!r} in one batch"
                )
            targets.add(key)
            if resolved is None:
                continue  # a no-op: nothing to retract, nothing to emit
            effective.append((update, resolved[0]))
        counters = self._counters()
        with trace_span("delta.update", "delta", updates=len(effective)):
            dead: list = []
            fresh: list = []
            for update, old in effective:
                fresh.append(
                    self.database.update_tuple(
                        update.relation_name,
                        update.label,
                        tuple(update.values),
                        importance=update.importance,
                        probability=update.probability,
                    )
                )
                dead.append(old)
            self.mutations_applied += len(effective)
            retracted, rederived = self._retract_and_rederive(dead)
            if self._state is not None:
                # One canonical rank order across everything the batch
                # created: the re-derived results and the drained arrival
                # delta together, exactly as a full ranked recompute would
                # order them.
                self._state.ingest(fresh)
                drained = self._state.drain_new()
                self._state.record_statistics()
                combined = rederived + drained
                combined.sort(key=canonical_rank_key)
                self._append_results(combined)
                emitted = len(combined)
            else:
                self._append_results(rederived)
                emitted = len(rederived) + self._emit_arrival_delta(fresh)
        return self._record(
            counters,
            # Count the updates that took effect, consistently with
            # ``mutations_applied`` (no-ops are not mutations).
            updates=len(effective),
            results_emitted=emitted,
            results_retracted=retracted,
        )

    def apply(self, ops: Sequence[StreamOp]) -> dict:
        """Apply one mixed batch of stream operations, preserving their order.

        Consecutive runs of the same op kind (arrival / removal / update)
        are dispatched together through :meth:`ingest` / :meth:`remove` /
        :meth:`update`; the returned record sums the sub-batches.
        """
        record = self._record(self._counters())
        group: list = []
        kind: Optional[str] = None

        def flush():
            if not group:
                return
            if kind == "remove":
                sub = self.remove(group)
            elif kind == "update":
                sub = self.update(group)
            else:
                sub = self.ingest(group)
            for key, value in sub.items():
                record[key] = record.get(key, 0) + value
            del group[:]

        for op in ops:
            if isinstance(op, Removal):
                op_kind = "remove"
            elif isinstance(op, Update):
                op_kind = "update"
            else:
                op_kind = "ingest"
            if op_kind != kind:
                flush()
                kind = op_kind
            group.append(op)
        flush()
        return record

    def _emit_arrival_delta(self, fresh) -> int:
        """The arrival delta: seed the engine with the fresh tuples, emit."""
        if self._state is not None:
            self._state.ingest(fresh)
            new_items = self._state.drain_new()
            self._append_results(new_items)
            self._state.record_statistics()
            return len(new_items)
        catalog = self.database.catalog()
        by_relation: "dict[str, list]" = {}
        for t in fresh:
            by_relation.setdefault(t.relation_name, []).append(t)
        batch_statistics = FDStatistics()
        emitted = 0
        for relation_name, fresh_tuples in by_relation.items():
            emitted += self._delta_pass(
                relation_name, fresh_tuples, catalog, batch_statistics
            )
        self.statistics.merge(batch_statistics)
        return emitted

    def _retract_and_rederive(self, dead_tuples) -> "tuple":
        """Retract results containing dead tuples; derive what they unblocked.

        Retraction markers are appended to the live log immediately (in the
        retracted results' original emission order).  The unblocked results
        — the maximal extensions of each retracted result's surviving
        components that the accumulated store does not subsume — are
        *returned*, not appended: the caller decides their order (canonical
        rank order on ranked streams, derivation order otherwise).  Returns
        ``(retracted count, new log items)``.
        """
        catalog = self.database.catalog()
        dead = set(dead_tuples)
        if not dead:
            return 0, []
        if self._state is not None:
            retracted = self._state.retract(dead_tuples)
        else:
            retracted = self._store.retract_containing(dead, catalog=catalog)
        for result in retracted:
            if self._state is not None:
                score = self._scores.pop(result, None)
                self._log.append(Retraction((result, score)))
            else:
                self._log.append(Retraction(result))
        stats = FDStatistics()
        scanner = TupleScanner(self.database)
        kernel = active_kernel()
        new_items: list = []
        for result in retracted:
            for component in _surviving_components(result, dead, catalog):
                extended = kernel.maximally_extend(component, scanner, stats)
                anchor = min(extended)
                if self._store.contains_superset(extended, anchor=anchor):
                    continue
                self._store.add(extended)
                stats.results += 1
                stats.results_emitted += 1
                if self._state is not None:
                    new_items.append((extended, float(self.ranking(extended))))
                else:
                    new_items.append(extended)
        stats.tuple_reads += scanner.tuple_reads
        stats.scan_passes += scanner.passes
        self.statistics.merge(stats)
        return len(retracted), new_items

    def _append_results(self, items) -> None:
        """Append freshly derived results to the live log (scores recorded)."""
        for item in items:
            self._log.append(item)
            if self._state is not None:
                self._scores[item[0]] = item[1]

    def _delta_pass(
        self,
        anchor_name: str,
        fresh_tuples,
        catalog,
        statistics: FDStatistics,
    ) -> int:
        """One ``GetNextResult`` loop seeded with the arrivals' singletons.

        Anchored at the arrivals' relation and run against the accumulated
        store: every new maximal set containing a fresh tuple is produced
        (its anchor tuple *is* the fresh tuple), every candidate that is a
        subset of an old result is pruned at Line 11.
        """
        pool = ListIncompletePool(anchor_name, use_index=self.use_index)
        for t in fresh_tuples:
            pool.add(TupleSet.singleton(t, catalog=catalog))
        scanner = TupleScanner(self.database)
        emitted = 0
        while pool:
            result = self._next_result(
                self.database, anchor_name, pool, self._store, scanner, statistics
            )
            statistics.results += 1
            anchor_tuple = result.tuple_from(anchor_name)
            covered = self._store.contains_superset(result, anchor=anchor_tuple)
            self._store.add(result)
            if covered:
                # A re-derived old result (reachable when a candidate without
                # any fresh tuple survived subsumption); never re-emitted.
                continue
            self._log.append(result)
            emitted += 1
            statistics.results_emitted += 1
        statistics.tuple_reads += scanner.tuple_reads
        statistics.scan_passes += scanner.passes
        record_store_statistics(statistics, ("incomplete", pool))
        return emitted


def incremental_replay_stream(
    database: Database,
    arrivals: Sequence[StreamOp],
    batch_size: int = 1,
    use_index: bool = True,
    backend=None,
    summary: Optional[DeltaSummary] = None,
    ranking=None,
) -> Iterator[StreamEvent]:
    """Drop-in, delta-maintained counterpart of :func:`replay_stream`.

    Emits the same event stream shape (:class:`IngestEvent` /
    :class:`ResultEvent`) and fills the same summary fields, but each batch
    costs one seeded delta pass per touched relation — and, for
    :class:`~repro.workloads.streaming.Removal` /
    :class:`~repro.workloads.streaming.Update` ops, one retraction sweep
    plus component re-derivations — instead of a full engine re-run.  The
    *net* emitted set after any number of operations matches
    ``replay_stream`` exactly (order within a batch may differ — the full
    re-run interleaves passes differently); the equivalence tests assert
    this batch by batch.  Deletions surface as ``kind="retract"`` events
    naming the withdrawn results, mirroring the reference's recompute diff.

    With a ``ranking``, the delta counterpart of the ranked recompute:
    events carry scores, the base stream is rank-ordered, and each batch's
    new results are emitted in the same canonical ``(-score, sort key)``
    order ``replay_stream(ranking=...)`` uses — the two ranked event
    streams are *identical*, not merely set-equal.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if summary is None:
        summary = DeltaSummary()
    rebuilds_before = database.catalog_rebuilds
    maintainer = StreamingFullDisjunction(
        database,
        use_index=use_index,
        backend=backend,
        statistics=summary.statistics,
        ranking=ranking,
    )
    cursor = maintainer.session(name="replay")
    maintainer.prime()
    summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before

    def emit(after_arrivals: int) -> Iterator[ResultEvent]:
        while True:
            batch = cursor.next(64)
            if not batch:
                return
            for item in batch:
                if isinstance(item, Retraction):
                    tuple_set = item.tuple_set
                    try:
                        summary.results.remove(tuple_set)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    yield ResultEvent(
                        tuple_set=tuple_set,
                        after_arrivals=after_arrivals,
                        score=item.score,
                        kind="retract",
                    )
                    continue
                if maintainer.ranked:
                    tuple_set, score = item
                else:
                    tuple_set, score = item, None
                summary.results.append(tuple_set)
                yield ResultEvent(
                    tuple_set=tuple_set,
                    after_arrivals=after_arrivals,
                    score=score,
                )

    yield from emit(after_arrivals=0)
    position = 0
    while position < len(arrivals):
        batch = arrivals[position : position + batch_size]
        record = maintainer.apply(batch)
        position += len(batch)
        summary.arrivals_applied = position
        summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before
        summary.per_batch.append(record)
        yield IngestEvent(applied=len(batch), total_applied=position)
        yield from emit(after_arrivals=position)
