"""Incremental maintenance of the full disjunction under streaming ingest.

:func:`repro.workloads.streaming.replay_stream` serves arrivals by re-running
the whole engine after every batch and deduplicating — correct, but the
per-arrival cost is the cost of the full result.  This module replaces the
re-run with true delta maintenance, the ROADMAP's "the arrival's singleton is
the only new seed":

* the maintainer keeps one shared, indexed ``Complete`` store holding every
  result emitted so far (across the base run and all arrivals);
* each arrival ``t`` is appended through
  :meth:`~repro.relational.database.Database.add_tuple` (append-only catalog
  maintenance, no snapshot rebuild) and then a single ``GetNextResult`` loop
  runs, anchored at ``t``'s relation and seeded with the *singleton*
  ``{t}`` alone;
* candidates that do not contain ``t`` are pruned by the accumulated store
  (they are subsets of old results), so the loop's work is proportional to
  the new results the arrival creates, not to the result set already served.

Why this is complete: a set that is maximal after the arrival but does not
contain ``t`` was already maximal before it (the tuple universe only grew),
so every genuinely *new* result contains ``t`` — and since a tuple set holds
at most one tuple per relation, ``t`` is exactly the new result's anchor
tuple.  Seeding ``{t}`` therefore satisfies the initialization condition of
Remark 4.3 for the new results, while the store's subsumption check (Line 11)
stops the old ones from being re-derived.  The randomized equivalence tests
in ``tests/service/test_delta.py`` check the emitted stream against
``replay_stream``'s full recompute arrival by arrival.

Open sessions observe arrivals without restarting: the maintainer's
:class:`~repro.service.session.ResultLog` is *live* — delta results are
appended to it, and any cursor past the old end simply finds more results on
its next ``next(k)``.

**Ranked delta maintenance.**  With a monotonically c-determined ``ranking``
the maintainer runs on a live :class:`~repro.core.priority.PriorityState`
instead: the base run drains the ranked engine (results carry scores), and
each arrival ``t`` seeds the state's priority queues with only the
qualifying size-≤c connected subsets *containing* ``t``
(:func:`~repro.core.ranking.enumerate_connected_subsets_containing`) — the
exact queue members the Fig. 3 initialization is missing after the arrival.
Draining the queues re-derives only results anchored at the arrivals (the
shared ``Complete`` store suppresses everything older), and the batch's new
results are appended to the live log in canonical rank order.  The
completeness argument is the unranked one verbatim: a set maximal after the
arrival but not containing it was maximal before, so every genuinely new
result contains the arrival — and the arrival's subsets are exactly the
seeds pushed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.core.full_disjunction import full_disjunction_sets
from repro.core.incremental import FDStatistics
from repro.core.priority import PriorityState
from repro.core.ranking import canonical_rank_key
from repro.core.scanner import TupleScanner
from repro.core.store import CompleteStore, ListIncompletePool, record_store_statistics
from repro.core.tupleset import TupleSet
from repro.relational.database import Database
from repro.relational.errors import SchemaError
from repro.service.session import QuerySession, ResultLog
from repro.workloads.streaming import (
    Arrival,
    IngestEvent,
    ResultEvent,
    StreamEvent,
    StreamSummary,
)


@dataclass
class DeltaSummary(StreamSummary):
    """A :class:`StreamSummary` with the per-batch delta work alongside.

    ``per_batch`` holds one record per ingested batch:
    ``{"arrivals", "results_emitted", "candidates_generated", "steps"}`` —
    the counters the streaming benchmark compares against ``replay_stream``'s
    full recompute to show the per-arrival work is proportional to the
    delta.
    """

    per_batch: List[dict] = field(default_factory=list)

    def delta_work(self) -> int:
        """Total candidates generated across all delta passes."""
        return sum(batch["candidates_generated"] for batch in self.per_batch)


def _canonical_rank_order(ranked_items):
    """Reorder a rank-sorted stream so ties land in sort-key order.

    The ranked engine breaks score ties by queue insertion order; the
    serving contract sorts them by the tuple set's sort key instead, so the
    delta-maintained stream and the full-recompute reference are
    *identical*, not merely set-equal.  Scores are non-increasing on the
    input stream, so buffering one tie group at a time suffices — each
    group is released as soon as a strictly lower score arrives.
    """
    group: List = []
    group_score = None
    for item in ranked_items:
        if group and item[1] != group_score:
            group.sort(key=canonical_rank_key)
            yield from group
            group = []
        group_score = item[1]
        group.append(item)
    if group:
        group.sort(key=canonical_rank_key)
        yield from group


class StreamingFullDisjunction:
    """Maintain ``FD(R)`` incrementally while tuples arrive.

    The maintainer owns three pieces of state that survive across arrivals:
    the database (with its append-only catalog), the shared indexed
    ``Complete`` store mirroring every distinct result emitted so far, and a
    live :class:`ResultLog` that open sessions read.

    ``backend`` schedules the per-step work (serial / batched / async —
    in-process backends; the per-arrival loop is a single pass, so there is
    nothing to shard).

    With a ``ranking`` the maintained stream is the *ranked* full
    disjunction: log entries are ``(tuple set, score)`` pairs, the base run
    is rank-ordered, and every ingested batch appends its new results in
    canonical rank order (see the module docstring for the argument).
    """

    def __init__(
        self,
        database: Database,
        use_index: bool = True,
        backend=None,
        statistics: Optional[FDStatistics] = None,
        ranking=None,
    ):
        from repro.exec import resolve_backend

        self.database = database
        self.use_index = use_index
        self.ranking = ranking
        self.statistics = statistics if statistics is not None else FDStatistics()
        self._backend = resolve_backend(backend)
        self._next_result = self._backend.next_result
        if ranking is not None:
            # The live queue state *is* the engine: its shared Complete
            # store doubles as the maintainer's accumulated result mirror.
            self._state = PriorityState(
                database,
                ranking,
                use_index=use_index,
                statistics=self.statistics,
                backend=self._backend,
            )
            self._store = self._state.complete
        else:
            self._state = None
            self._store = CompleteStore(anchor_relation=None, use_index=use_index)
        self._log = ResultLog(source=self._base_results(), live=True)
        self._primed = False
        self.arrivals_applied = 0

    @property
    def ranked(self) -> bool:
        """Whether log entries are ``(tuple set, score)`` pairs."""
        return self.ranking is not None

    # ------------------------------------------------------------------ #
    # the base run
    # ------------------------------------------------------------------ #
    def _base_results(self) -> Iterator[object]:
        """The initial database's full disjunction, mirrored into the store."""
        if self._state is not None:
            # The ranked engine mirrors into its own shared Complete store
            # (= self._store) as it produces.  Canonicalising rank ties
            # keeps the log byte-identical to the recompute reference
            # stream; buffering is per tie group, so first-k stays
            # incremental.
            yield from _canonical_rank_order(self._state.results())
            return
        for result in full_disjunction_sets(
            self.database,
            use_index=self.use_index,
            statistics=self.statistics,
            backend=self._backend,
        ):
            self._store.add(result)
            yield result

    def prime(self) -> int:
        """Drain the base run (must happen before the first ingest).

        Until the store mirrors the *complete* base result set, subsumption
        cannot distinguish "new" from "not yet derived", so delta passes wait
        on this.  Sessions may lazily pull first-k results beforehand; primes
        are idempotent.
        """
        self._log.exhaust_source()
        self._primed = True
        if self._state is not None:
            # Flush the base run's store counters; record_statistics is
            # delta-safe, so later flushes charge only their own growth.
            self._state.record_statistics()
        return len(self._log)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def session(self, name: Optional[str] = None) -> QuerySession:
        """A cursor over the live result log (shared, not owned)."""
        return QuerySession(self._log, owns_log=False, name=name)

    @property
    def results(self) -> List[object]:
        """Every distinct result emitted so far (base + deltas), in order.

        Tuple sets on unranked streams; ``(tuple set, score)`` pairs on
        ranked ones.
        """
        return list(self._log.results)

    @property
    def log(self) -> ResultLog:
        return self._log

    def close(self) -> None:
        """End the stream gracefully: open sessions see a completed log."""
        self._log.finish()
        if self._state is not None:
            self._state.record_statistics()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def ingest(self, arrivals: Sequence[Arrival]) -> dict:
        """Apply one batch of arrivals and emit the delta.

        All tuples are appended first (each an O(s) in-place catalog
        extension), then one delta pass runs per distinct target relation,
        seeded with that relation's new singletons.  Returns the batch
        record also appended to summaries: arrivals applied, results
        emitted, candidates generated, ``GetNextResult`` steps taken.
        """
        if not self._primed:
            self.prime()
        # Normalise and validate the whole batch *before* mutating anything:
        # a bad arrival must not leave earlier ones applied to the database
        # with their delta passes never run (results silently missing).
        arrivals = [Arrival(*arrival) for arrival in arrivals]
        for arrival in arrivals:
            relation = self.database.relation(arrival.relation_name)
            expected = len(relation.schema.attributes)
            got = len(tuple(arrival.values))
            if got != expected:
                raise SchemaError(
                    f"arrival for {arrival.relation_name!r} has {got} values, "
                    f"schema has {expected} attributes"
                )
        fresh: list = []
        for arrival in arrivals:
            fresh.append(
                self.database.add_tuple(
                    arrival.relation_name,
                    arrival.values,
                    importance=arrival.importance,
                    probability=arrival.probability,
                )
            )
        self.arrivals_applied += len(arrivals)

        if self._state is not None:
            return self._ranked_delta(arrivals, fresh)

        catalog = self.database.catalog()
        by_relation: "dict[str, list]" = {}
        for t in fresh:
            by_relation.setdefault(t.relation_name, []).append(t)
        batch_statistics = FDStatistics()
        emitted = 0
        for relation_name, fresh_tuples in by_relation.items():
            emitted += self._delta_pass(
                relation_name, fresh_tuples, catalog, batch_statistics
            )
        self.statistics.merge(batch_statistics)
        return {
            "arrivals": len(arrivals),
            "results_emitted": emitted,
            "candidates_generated": batch_statistics.candidates_generated,
            "steps": batch_statistics.results,
        }

    def _ranked_delta(self, arrivals: Sequence[Arrival], fresh) -> dict:
        """One ranked delta pass: seed the live queues, drain the new results.

        All arrivals are seeded before the drain so subsets spanning several
        same-batch arrivals are enumerated once, then the new results —
        everything the queues produce that the accumulated ``Complete``
        store does not already hold — are appended to the live log in
        canonical rank order.
        """
        candidates_before = self.statistics.candidates_generated
        steps_before = self.statistics.results
        self._state.ingest(fresh)
        new_items = self._state.drain_new()
        for item in new_items:
            self._log.append(item)
        self._state.record_statistics()
        return {
            "arrivals": len(arrivals),
            "results_emitted": len(new_items),
            "candidates_generated": (
                self.statistics.candidates_generated - candidates_before
            ),
            "steps": self.statistics.results - steps_before,
        }

    def _delta_pass(
        self,
        anchor_name: str,
        fresh_tuples,
        catalog,
        statistics: FDStatistics,
    ) -> int:
        """One ``GetNextResult`` loop seeded with the arrivals' singletons.

        Anchored at the arrivals' relation and run against the accumulated
        store: every new maximal set containing a fresh tuple is produced
        (its anchor tuple *is* the fresh tuple), every candidate that is a
        subset of an old result is pruned at Line 11.
        """
        pool = ListIncompletePool(anchor_name, use_index=self.use_index)
        for t in fresh_tuples:
            pool.add(TupleSet.singleton(t, catalog=catalog))
        scanner = TupleScanner(self.database)
        emitted = 0
        while pool:
            result = self._next_result(
                self.database, anchor_name, pool, self._store, scanner, statistics
            )
            statistics.results += 1
            anchor_tuple = result.tuple_from(anchor_name)
            covered = self._store.contains_superset(result, anchor=anchor_tuple)
            self._store.add(result)
            if covered:
                # A re-derived old result (reachable when a candidate without
                # any fresh tuple survived subsumption); never re-emitted.
                continue
            self._log.append(result)
            emitted += 1
            statistics.results_emitted += 1
        statistics.tuple_reads += scanner.tuple_reads
        statistics.scan_passes += scanner.passes
        record_store_statistics(statistics, ("incomplete", pool))
        return emitted


def incremental_replay_stream(
    database: Database,
    arrivals: Sequence[Arrival],
    batch_size: int = 1,
    use_index: bool = True,
    backend=None,
    summary: Optional[DeltaSummary] = None,
    ranking=None,
) -> Iterator[StreamEvent]:
    """Drop-in, delta-maintained counterpart of :func:`replay_stream`.

    Emits the same event stream shape (:class:`IngestEvent` /
    :class:`ResultEvent`) and fills the same summary fields, but each batch
    costs one seeded delta pass per touched relation instead of a full
    engine re-run.  The *set* of results emitted after any number of
    arrivals matches ``replay_stream`` exactly (order within a batch may
    differ — the full re-run interleaves passes differently); the
    equivalence tests assert this batch by batch.

    With a ``ranking``, the delta counterpart of the ranked recompute:
    events carry scores, the base stream is rank-ordered, and each batch's
    new results are emitted in the same canonical ``(-score, sort key)``
    order ``replay_stream(ranking=...)`` uses — the two ranked event
    streams are *identical*, not merely set-equal.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if summary is None:
        summary = DeltaSummary()
    rebuilds_before = database.catalog_rebuilds
    maintainer = StreamingFullDisjunction(
        database,
        use_index=use_index,
        backend=backend,
        statistics=summary.statistics,
        ranking=ranking,
    )
    cursor = maintainer.session(name="replay")
    maintainer.prime()
    summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before

    def emit(after_arrivals: int) -> Iterator[ResultEvent]:
        while True:
            batch = cursor.next(64)
            if not batch:
                return
            for item in batch:
                if maintainer.ranked:
                    tuple_set, score = item
                else:
                    tuple_set, score = item, None
                summary.results.append(tuple_set)
                yield ResultEvent(
                    tuple_set=tuple_set,
                    after_arrivals=after_arrivals,
                    score=score,
                )

    yield from emit(after_arrivals=0)
    position = 0
    while position < len(arrivals):
        batch = arrivals[position : position + batch_size]
        record = maintainer.ingest(batch)
        position += len(batch)
        summary.arrivals_applied = position
        summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before
        summary.per_batch.append(record)
        yield IngestEvent(applied=len(batch), total_applied=position)
        yield from emit(after_arrivals=position)
