"""Read-only follower replicas tailing a primary's write-ahead log.

A follower is a :class:`~repro.service.server.QueryServer` restored from
the primary's latest snapshot and kept fresh by *tailing* the primary's
``wal.log``: every poll reads the complete frames past the follower's
offset (:func:`repro.storage.wal.read_available` — an in-flight partial
frame is simply not yet written, and the primary's file is never
truncated) and applies them through
:func:`~repro.service.server.apply_wal_record` — the same maintainer entry
points and cache maintenance as the primary's own wire mutations, with
the same per-record generation assertion.  Replication is therefore
*physical agreement through logical replay*: the follower's streams are
byte-identical to the primary's because both sides run the identical
deterministic pipeline over the identical op sequence.

The follower serves the read-only half of the wire protocol (``open`` /
``next`` / ``peek`` / ``close`` / ``stats`` / ``ping``); mutating ops are
refused with ``read_only: true`` so a misdirected client fails loudly
instead of forking history.  Replication lag is exported through the
``obs`` registry as the wall-clock age of the last applied record.

This file-tailing design shares the deployment model of the sharded
server: primary and followers live on one host (or one shared
filesystem), each process serving its own port.  Remote log shipping
would slot in behind :meth:`FollowerTailer.poll_once` without touching
the apply path.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service.server import (
    QueryServer,
    apply_wal_record,
    restore_server,
    start_server,
)
from repro.storage.snapshot import load_latest_snapshot
from repro.storage.store import RecoveryError
from repro.storage.wal import WAL_NAME, read_available

#: Default seconds between polls of the primary's WAL.
DEFAULT_POLL_INTERVAL = 0.05


class FollowerTailer:
    """Tail a primary's WAL and apply new records to a follower server."""

    def __init__(
        self,
        state: QueryServer,
        data_dir: str,
        offset: int = 0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.state = state
        self.wal_path = os.path.join(data_dir, WAL_NAME)
        self.offset = offset
        self.poll_interval = poll_interval
        self.records_applied = 0
        self.lag_seconds = 0.0
        self._stopping = asyncio.Event()
        registry = registry if registry is not None else get_registry()
        self._m_lag = registry.gauge(
            "repro_replication_lag_seconds",
            "Wall-clock age of the last WAL record applied by this follower.",
        )
        self._m_records = registry.counter(
            "repro_replication_records_total",
            "Primary WAL records applied by this follower.",
        )
        self._m_offset = registry.gauge(
            "repro_replication_offset_bytes",
            "Byte offset of this follower in the primary's WAL.",
        )

    def poll_once(self) -> int:
        """Apply every complete record past the current offset; returns count."""
        records, new_offset = read_available(self.wal_path, self.offset)
        for payload, _ in records:
            apply_wal_record(self.state, payload)
            self.records_applied += 1
            self._m_records.inc()
            # Lag = wall-clock age of the record at apply time.  The
            # primary stamps ``ts`` at append; one shared host (the
            # file-tailing deployment) means one clock.
            timestamp = payload.get("ts")
            if timestamp is not None:
                self.lag_seconds = max(0.0, time.time() - float(timestamp))
                self._m_lag.set(self.lag_seconds)
        if new_offset != self.offset:
            self.offset = new_offset
            self._m_offset.set(new_offset)
        elif not records:
            # Caught up and idle: lag is bounded by the poll cadence, not
            # by the age of a record applied long ago.
            self.lag_seconds = 0.0
            self._m_lag.set(0.0)
        return len(records)

    async def run(self) -> None:
        """Poll until :meth:`stop` — the follower's replication loop."""
        while not self._stopping.is_set():
            self.poll_once()
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                continue

    def stop(self) -> None:
        self._stopping.set()

    def stats(self) -> dict:
        return {
            "wal_path": self.wal_path,
            "offset": self.offset,
            "records_applied": self.records_applied,
            "lag_seconds": self.lag_seconds,
        }


def open_follower_server(
    data_dir: str,
    registry: Optional[MetricsRegistry] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> tuple:
    """Open a read-only follower over a primary's data directory.

    Returns ``(state, tailer)``: the server restored from the primary's
    latest snapshot (read-only — no :class:`DurableStore`; the primary
    owns the directory) and a tailer positioned at the snapshot's
    ``wal_offset``.  An initial catch-up poll runs synchronously so the
    follower is current as of open before it serves a single request.
    """
    loaded = load_latest_snapshot(data_dir)
    if loaded is None:
        raise RecoveryError(
            f"{data_dir} holds no readable snapshot to start a follower from"
        )
    snapshot, _ = loaded
    state = restore_server(snapshot, registry=registry, read_only=True)
    tailer = FollowerTailer(
        state,
        data_dir,
        offset=int(snapshot.get("wal_offset", 0)),
        poll_interval=poll_interval,
        registry=registry,
    )
    tailer.poll_once()
    return state, tailer


async def serve_follower(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> tuple:
    """Start a follower server plus its replication task.

    Returns ``(asyncio server, state, tailer, replication task, port)``.
    The caller owns shutdown: ``tailer.stop()``, await the task, close the
    server.
    """
    state, tailer = open_follower_server(
        data_dir, registry=registry, poll_interval=poll_interval
    )
    server, state, bound_port = await start_server(
        state.database, host, port, state=state
    )
    task = asyncio.create_task(tailer.run())
    return server, state, tailer, task, bound_port


async def _follower_smoke(
    primary: QueryServer, data_dir: str, clients: int, k: Optional[int]
) -> dict:
    from repro.service.server import fetch_first_k

    server, state, tailer, task, port = await serve_follower(
        data_dir, poll_interval=0.01
    )
    try:
        per_client = await asyncio.gather(
            *(
                fetch_first_k("127.0.0.1", port, k, chunk=3)
                for _ in range(clients)
            )
        )
        # A mutation on the primary must reach the follower: ingest one
        # duplicate tuple (valid against any schema) and wait for the
        # offset to advance.
        source = next(iter(primary.database.relations[0]))
        await primary.handle_request(
            {
                "op": "ingest",
                "tuples": [
                    [source.relation_name, [str(v) for v in source.values]]
                ],
            }
        )
        primary.store.wal.sync()
        target = primary.store.wal.offset
        deadline = time.monotonic() + 5.0
        while tailer.offset < target:
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise AssertionError(
                    f"follower stalled at {tailer.offset} < {target}"
                )
            await asyncio.sleep(0.01)
        refused = await state.handle_request(
            {"op": "ingest", "tuples": [["X", ["v"]]]}
        )
        assert refused.get("read_only") is True, refused
        replicated = state.maintainer.arrivals_applied
    finally:
        tailer.stop()
        await task
        server.close()
        await server.wait_closed()
    return {
        "per_client": per_client,
        "replicated_arrivals": replicated,
        **tailer.stats(),
    }


def run_follower_smoke(
    primary: QueryServer, data_dir: str, clients: int = 4, k: Optional[int] = None
) -> dict:
    """Follower parity check behind ``repro serve --follow --smoke-clients``.

    Serves ``clients`` concurrent read-only first-``k`` sessions from a
    follower of ``data_dir``, asserts every client matches the primary's
    own result sequence, that a primary-side ingest replicates, and that
    the follower refuses writes.  Raises ``AssertionError`` on mismatch.
    """
    from repro.core.full_disjunction import full_disjunction_sets

    serial = []
    for tuple_set in full_disjunction_sets(
        primary.database, use_index=primary.use_index
    ):
        if k is not None and len(serial) >= k:
            break
        serial.append(sorted(t.label for t in tuple_set))
    outcome = asyncio.run(_follower_smoke(primary, data_dir, clients, k))
    for index, received in enumerate(outcome["per_client"]):
        assert received == serial, (
            f"follower client {index} diverged from the primary: "
            f"{len(received)} vs {len(serial)} results"
        )
    assert outcome["replicated_arrivals"] >= 1
    return outcome
