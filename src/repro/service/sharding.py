"""An anchor-bucket-sharded server: shard processes, routing, backpressure.

One :class:`~repro.service.server.QueryServer` runs everything on a single
event loop over a single in-memory store — fine for a demo, a ceiling for
"thousands of concurrent cursors".  This module carries the bucket
partitioning of :mod:`repro.exec.sharded` up into the service layer:

* **Shard processes.**  ``start_sharded_server`` spawns ``N`` worker
  processes, each running the unmodified asyncio JSON-lines
  :class:`~repro.service.server.QueryServer` (its own event loop, its own
  :class:`~repro.service.cache.PrefixCache`, its own live
  :class:`~repro.service.delta.StreamingFullDisjunction` maintainer) over its
  own copy of the database.
* **Routing.**  A front-end router accepts client connections and forwards
  each ``open`` to the shard chosen by a **consistent hash of the query's
  canonical cache key** (engine plus every option that keys the prefix
  cache).  Identical queries from different clients therefore land on the
  same shard and share one cached prefix, exactly as they shared it in the
  single-process server — the cache's entry space is partitioned across
  shards, never duplicated.  Session ids are rewritten to router-global
  names (``g1``, ``g2``, …), so clients never see the shard topology.
* **Mutations.**  ``ingest``/``retract``/``update`` are broadcast to every
  shard in shard order; each shard's maintainer and cache apply the same
  delta, so all replicas stay byte-identical and any shard can serve any
  future query.
* **Admission control and backpressure.**  Each shard has a bounded live
  session count and a bounded request queue.  A request that would exceed
  either limit is refused *immediately* with ``{"ok": false, "busy": true,
  "retry_after_ms": ...}`` instead of growing an unbounded queue — clients
  retry with the hint, and ``stats`` exposes per-shard session and
  queue-depth gauges so operators can see saturation coming.

The router speaks the same wire protocol as the single-process server, so
every existing client — ``fetch_first_k``, the smoke harnesses, the CLI —
works against either unchanged.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import time
from typing import Dict, List, Optional, Tuple as TupleType

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    labeled_snapshot,
    merge_snapshots,
    render_snapshot,
)
from repro.relational.database import Database

# The routing key moved next to the server (the durable store indexes
# persisted opens by it too); re-exported here for existing importers.
from repro.service.server import (  # noqa: F401 - re-export
    _ROUTING_KEYS,
    client_call,
    open_routing_key,
    start_server,
)


class ConsistentHashRing:
    """A classic vnode hash ring over shard indexes.

    ``vnodes`` virtual points per shard smooth the key distribution; the
    ring is a pure function of ``(shard_count, vnodes)``, so every router
    instance over the same topology routes identically.
    """

    def __init__(self, shard_count: int, vnodes: int = 64):
        if shard_count < 1:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        points: List[TupleType[int, int]] = []
        for shard in range(shard_count):
            for vnode in range(vnodes):
                digest = hashlib.sha1(
                    f"shard-{shard}-vnode-{vnode}".encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]
        self.shard_count = shard_count

    def shard_for(self, key: str) -> int:
        digest = hashlib.sha1(key.encode()).digest()
        position = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._hashes, position) % len(self._hashes)
        return self._shards[index]


def _shard_main(
    connection, payload: bytes, use_index: bool, data_dir: Optional[str] = None
) -> None:
    """Entry point of one shard process: serve its database copy forever.

    Reports the ephemeral port back through ``connection`` once bound.
    Module-level so the spawn start method can pickle it.  With a
    ``data_dir``, the shard serves durably: it recovers that directory if
    it holds state (mutations are broadcast in shard order, so every
    shard's WAL carries the same op sequence and each recovers its own
    replica), seals it on termination, and bootstraps it otherwise.
    """
    database = pickle.loads(payload)
    state = None
    if data_dir is not None:
        from repro.service.server import open_durable_server

        state = open_durable_server(database, data_dir, use_index=use_index)

    async def serve() -> None:
        server, _, port = await start_server(
            database, use_index=use_index, state=state
        )
        connection.send(port)
        connection.close()
        # The router tears shards down with SIGTERM: turn it into a
        # graceful stop so a durable shard seals its WAL and writes a
        # final snapshot instead of leaving a torn tail to recover.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        async with server:
            await stop.wait()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        if state is not None:
            state.shutdown()


class ShardHandle:
    """The router's view of one shard: process, upstream connection, gauges."""

    def __init__(self, index: int, process, host: str, port: int):
        self.index = index
        self.process = process
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        #: Requests admitted for this shard and not yet answered — the
        #: queue-depth gauge that admission control bounds.
        self.pending = 0
        #: Router-global names of the live sessions routed to this shard.
        self.sessions: set = set()
        self.requests = 0

    async def call(self, request: dict) -> dict:
        """One request/response round trip on the shard's upstream socket.

        The per-shard lock serializes round trips (the JSON-lines protocol
        is strictly request/response per connection); callers already
        incremented ``pending``, so the time spent waiting here *is* the
        queue depth the gauges report.
        """
        async with self._lock:
            if self._writer is None:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            self.requests += 1
            return await client_call(self._reader, self._writer, request)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


class ShardedQueryServer:
    """Routes the wire protocol across shard processes with admission control."""

    #: Ops forwarded to the session's shard (after admission).
    _SESSION_OPS = frozenset({"next", "peek", "close"})
    #: Ops broadcast to every shard so the replicas stay identical.
    _BROADCAST_OPS = frozenset({"ingest", "retract", "update"})

    def __init__(
        self,
        shards: List[ShardHandle],
        max_sessions_per_shard: int = 256,
        max_queue_per_shard: int = 64,
        retry_after_ms: int = 50,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_sessions_per_shard < 1:
            raise ValueError("max_sessions_per_shard must be positive")
        if max_queue_per_shard < 1:
            raise ValueError("max_queue_per_shard must be positive")
        self.shards = shards
        self.ring = ConsistentHashRing(len(shards))
        self.max_sessions_per_shard = max_sessions_per_shard
        self.max_queue_per_shard = max_queue_per_shard
        self.retry_after_ms = retry_after_ms
        #: Router-global session name → (shard handle, shard-local name).
        self._session_map: Dict[str, TupleType[ShardHandle, str]] = {}
        self._session_counter = 0
        self.requests = 0
        self.busy_rejections = 0
        self.started_at = time.monotonic()
        # The router's own live series; shard registries are *aggregated*
        # on demand (``stats {"detail": "metrics"}`` / the sidecar) with a
        # ``shard`` label stamped per replica.
        self.registry = registry if registry is not None else get_registry()
        self._m_requests = self.registry.counter(
            "repro_router_requests_total", "Requests handled by the router."
        )
        self._m_busy = self.registry.counter(
            "repro_router_busy_rejections_total",
            "Requests refused busy by admission control.",
        )
        self._m_queue = self.registry.gauge(
            "repro_router_queue_depth",
            "Admitted requests in flight toward one shard.",
            ("shard",),
        )
        self._m_shard_sessions = self.registry.gauge(
            "repro_router_shard_sessions",
            "Live sessions routed to one shard.",
            ("shard",),
        )
        self._m_sessions = self.registry.gauge(
            "repro_router_sessions", "Live sessions across the deployment."
        )

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def _busy(self, shard: ShardHandle, what: str) -> dict:
        self.busy_rejections += 1
        self._m_busy.inc()
        return {
            "ok": False,
            "busy": True,
            "error": f"shard {shard.index} at {what} capacity; retry later",
            "retry_after_ms": self.retry_after_ms,
        }

    async def _forward(self, shard: ShardHandle, request: dict) -> dict:
        """Forward after the queue admission check; ``pending`` is the gauge."""
        if shard.pending >= self.max_queue_per_shard:
            return self._busy(shard, "queue")
        shard.pending += 1
        gauge = self._m_queue.labels(shard=shard.index)
        gauge.set(shard.pending)
        try:
            return await shard.call(request)
        finally:
            shard.pending -= 1
            gauge.set(shard.pending)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def handle_request(
        self, request: dict, connection_sessions: Optional[set] = None
    ) -> dict:
        self.requests += 1
        self._m_requests.inc()
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "shards": len(self.shards)}
        if op == "open":
            return await self._open(request, connection_sessions)
        if op in self._SESSION_OPS:
            return await self._session_op(op, request, connection_sessions)
        if op in self._BROADCAST_OPS:
            return await self._broadcast(request)
        if op == "stats":
            return await self._stats(detail=request.get("detail"))
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _open(
        self, request: dict, connection_sessions: Optional[set]
    ) -> dict:
        shard = self.shards[self.ring.shard_for(open_routing_key(request))]
        if len(shard.sessions) >= self.max_sessions_per_shard:
            return self._busy(shard, "session")
        response = await self._forward(shard, request)
        if not response.get("ok"):
            return response
        local_name = response["session"]
        self._session_counter += 1
        name = f"g{self._session_counter}"
        self._session_map[name] = (shard, local_name)
        shard.sessions.add(name)
        self._track_sessions(shard)
        if connection_sessions is not None:
            connection_sessions.add(name)
        response["session"] = name
        response["shard"] = shard.index
        return response

    async def _session_op(
        self, op: str, request: dict, connection_sessions: Optional[set]
    ) -> dict:
        name = request.get("session")
        routed = self._session_map.get(name)
        if routed is None:
            return {"ok": False, "error": f"no session {name!r}"}
        shard, local_name = routed
        response = await self._forward(
            shard, {**request, "session": local_name}
        )
        if op == "close" and response.get("ok"):
            self._session_map.pop(name, None)
            shard.sessions.discard(name)
            self._track_sessions(shard)
            if connection_sessions is not None:
                connection_sessions.discard(name)
        return response

    def _track_sessions(self, shard: ShardHandle) -> None:
        self._m_shard_sessions.labels(shard=shard.index).set(len(shard.sessions))
        self._m_sessions.set(len(self._session_map))

    async def _broadcast(self, request: dict) -> dict:
        """Apply a mutation to every shard, in shard order.

        Every shard holds the same database replica, so the responses agree;
        the first shard's response answers the client, annotated with the
        replica count.  A failure on the first shard (a client error — bad
        target, bad payload) is returned *without* touching the others, so
        the replicas never diverge on validation errors.
        """
        first = await self._forward(self.shards[0], request)
        if not first.get("ok"):
            return first
        for shard in self.shards[1:]:
            response = await self._forward(shard, request)
            if not response.get("ok"):  # pragma: no cover - replica divergence
                return {
                    "ok": False,
                    "error": (
                        f"shard {shard.index} diverged applying the mutation: "
                        f"{response.get('error')}"
                    ),
                }
        first["shards_applied"] = len(self.shards)
        return first

    async def _stats(self, detail: Optional[str] = None) -> dict:
        upstream_request = {"op": "stats"}
        if detail == "metrics":
            upstream_request["detail"] = "metrics"
        per_shard = []
        shard_snapshots = []
        shard_requests = 0
        for shard in self.shards:
            upstream = await self._forward(shard, upstream_request)
            shard_requests += int(upstream.get("requests") or 0)
            per_shard.append(
                {
                    "shard": shard.index,
                    "sessions": len(shard.sessions),
                    "queue_depth": shard.pending,
                    "requests": shard.requests,
                    "server_requests": upstream.get("requests"),
                    "cache": upstream.get("cache"),
                    "kernel": upstream.get("kernel"),
                }
            )
            if detail == "metrics" and upstream.get("metrics") is not None:
                shard_snapshots.append(
                    labeled_snapshot(upstream["metrics"], shard=shard.index)
                )
        response = {
            "ok": True,
            "shards": len(self.shards),
            "sessions": len(self._session_map),
            # The whole deployment in one call: how long this router has
            # been up, every session it ever admitted, and the requests the
            # shard servers processed on its behalf.
            "uptime_seconds": time.monotonic() - self.started_at,
            "sessions_total": self._session_counter,
            "requests": self.requests,
            "requests_aggregate": shard_requests,
            "busy_rejections": self.busy_rejections,
            "limits": {
                "max_sessions_per_shard": self.max_sessions_per_shard,
                "max_queue_per_shard": self.max_queue_per_shard,
            },
            "per_shard": per_shard,
        }
        if detail == "metrics":
            response["metrics"] = merge_snapshots(
                [labeled_snapshot(self.registry.snapshot(), shard="router")]
                + shard_snapshots
            )
        return response

    # ------------------------------------------------------------------ #
    # observability surfaces
    # ------------------------------------------------------------------ #
    async def render_metrics(self) -> str:
        """One Prometheus page for the deployment: router + every shard.

        Shard registries cross the wire as snapshots (the ``stats`` metrics
        detail) and are stamped with a ``shard`` label before merging, so
        same-named series stay attributed per replica.
        """
        stats = await self._stats(detail="metrics")
        return render_snapshot(stats["metrics"])

    async def health(self) -> dict:
        """Deployment liveness: the router plus per-shard process aliveness."""
        shard_health = []
        alive = 0
        for shard in self.shards:
            is_alive = shard.process is None or shard.process.is_alive()
            alive += bool(is_alive)
            shard_health.append({"shard": shard.index, "alive": bool(is_alive)})
        return {
            "status": "ok" if alive == len(self.shards) else "degraded",
            "shards": shard_health,
            "sessions": len(self._session_map),
            "requests": self.requests,
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    # ------------------------------------------------------------------ #
    # the TCP face (same JSON-lines loop as the single-process server)
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_sessions: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    response = {"ok": False, "error": f"bad JSON: {error}"}
                else:
                    try:
                        response = await self.handle_request(
                            request, connection_sessions
                        )
                    except Exception as error:  # serve errors, don't die
                        response = {"ok": False, "error": str(error)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            # A dropped connection releases its sessions on the shards too.
            for name in connection_sessions:
                routed = self._session_map.pop(name, None)
                if routed is None:
                    continue
                shard, local_name = routed
                shard.sessions.discard(name)
                self._track_sessions(shard)
                try:
                    await shard.call({"op": "close", "session": local_name})
                except (ConnectionError, OSError):  # pragma: no cover
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def shutdown(self) -> None:
        """Release upstream connections, shard processes, and worker pools."""
        from repro.exec import shutdown_pools

        for shard in self.shards:
            await shard.close()
        for shard in self.shards:
            shard.terminate()
        shutdown_pools()


async def start_sharded_server(
    database: Database,
    shards: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    use_index: bool = True,
    max_sessions_per_shard: int = 256,
    max_queue_per_shard: int = 64,
    retry_after_ms: int = 50,
    data_dir: Optional[str] = None,
) -> TupleType[asyncio.AbstractServer, ShardedQueryServer, int]:
    """Spawn ``shards`` worker processes and a router; returns
    ``(asyncio server, router state, bound port)``.

    The database is pickled once (catalog included, so shards skip the
    bitmatrix build) and shipped to every shard; each shard binds an
    ephemeral local port and reports it back before the router accepts its
    first client.  Call :meth:`ShardedQueryServer.shutdown` after closing
    the returned server.

    With a ``data_dir``, every shard serves durably in its own namespace
    (``<data_dir>/shard-N`` — WALs are single-writer, so replicas never
    share one): each recovers or bootstraps its own directory on start and
    seals it on SIGTERM.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    database.catalog()  # build once in the parent; every shard inherits it
    payload = pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
    context = multiprocessing.get_context("spawn")
    loop = asyncio.get_running_loop()

    handles: List[ShardHandle] = []
    started = []
    try:
        for index in range(shards):
            parent_end, child_end = context.Pipe(duplex=False)
            shard_dir = (
                os.path.join(data_dir, f"shard-{index}")
                if data_dir is not None
                else None
            )
            process = context.Process(
                target=_shard_main,
                args=(child_end, payload, use_index, shard_dir),
                daemon=True,
            )
            process.start()
            child_end.close()
            started.append((index, process, parent_end))
        for index, process, parent_end in started:
            shard_port = await loop.run_in_executor(None, parent_end.recv)
            parent_end.close()
            handles.append(ShardHandle(index, process, "127.0.0.1", shard_port))
    except BaseException:
        for _, process, _ in started:
            if process.is_alive():
                process.terminate()
        raise

    router = ShardedQueryServer(
        handles,
        max_sessions_per_shard=max_sessions_per_shard,
        max_queue_per_shard=max_queue_per_shard,
        retry_after_ms=retry_after_ms,
    )
    server = await asyncio.start_server(router.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    return server, router, bound_port


async def _sharded_smoke(
    database: Database,
    clients: int,
    k: Optional[int],
    shards: int,
    use_index: bool,
    **opts,
) -> dict:
    from repro.service.server import fetch_first_k

    server, router, port = await start_sharded_server(
        database, shards=shards, use_index=use_index
    )
    try:
        per_client = await asyncio.gather(
            *(
                fetch_first_k("127.0.0.1", port, k, chunk=3, **opts)
                for _ in range(clients)
            )
        )
        stats = await router.handle_request({"op": "stats"})
    finally:
        server.close()
        await server.wait_closed()
        await router.shutdown()
    return {"per_client": per_client, "stats": stats}


def run_sharded_smoke(
    database: Database,
    clients: int = 4,
    k: Optional[int] = None,
    shards: int = 2,
    use_index: bool = True,
    engine: str = "fd",
) -> dict:
    """Start a sharded server, run concurrent clients, assert serial parity.

    The multi-process counterpart of
    :func:`repro.service.server.run_smoke`, behind
    ``repro serve --shards N --smoke-clients M`` and the CI multi-worker
    serving job: every client must receive exactly the serial engine's
    result stream, through the router, regardless of which shard served it.
    Raises ``AssertionError`` on mismatch; returns the summary on success.
    """
    opts: dict = {"engine": engine}
    if engine == "ranked":
        from repro.core.priority import priority_incremental_fd
        from repro.core.ranking import MaxRanking
        from repro.service.server import smoke_importance_map

        importance = smoke_importance_map(database)
        opts["importance"] = importance
        serial: List[object] = []
        for tuple_set, score in priority_incremental_fd(
            database, MaxRanking(importance), use_index=use_index
        ):
            if k is not None and len(serial) >= k:
                break
            serial.append(
                {"labels": sorted(t.label for t in tuple_set), "score": score}
            )
    elif engine == "fd":
        from repro.core.full_disjunction import full_disjunction_sets

        serial = []
        for tuple_set in full_disjunction_sets(database, use_index=use_index):
            if k is not None and len(serial) >= k:
                break
            serial.append(sorted(t.label for t in tuple_set))
    else:
        raise ValueError(
            f"run_sharded_smoke supports engines 'fd' and 'ranked', not {engine!r}"
        )

    outcome = asyncio.run(
        _sharded_smoke(database, clients, k, shards, use_index, **opts)
    )
    for index, received in enumerate(outcome["per_client"]):
        assert received == serial, (
            f"client {index} diverged from the serial run through the router: "
            f"{len(received)} vs {len(serial)} results"
        )
    stats = outcome["stats"]
    assert stats["shards"] == shards
    outcome["results_per_client"] = len(serial)
    outcome["clients"] = clients
    outcome["shards"] = shards
    outcome["engine"] = engine
    return outcome
