"""The LRU result-prefix cache: identical queries share one computation.

Many concurrent clients asking the same first-k query should cost one engine
run, not one per client.  :class:`PrefixCache` keys each query by

``(database generation, engine, frozen options)``

and maps it to the shared :class:`~repro.service.session.ResultLog` of the
first client's run.  Later clients get cursors over the same log: results
already materialized are free, and the log's single generator extends the
prefix for whichever client asks furthest first.

**Invalidation contract.**  The cache never inspects tuples; it trusts the
append-only catalog's bookkeeping.  :func:`database_generation` folds the
three counters that, together, change whenever the answer stream could
change:

* ``Database.catalog_rebuilds`` — bumped by every full snapshot rebuild
  (relations added, or tuples added behind the database's back);
* the relation count and the tuple count — ``Database.add_tuple`` maintains
  the catalog *in place* (no rebuild), so streaming ingest is visible only
  through the tuple count.

A cached entry whose recorded generation differs from the database's current
generation is dead: results emitted for an older generation may have since
become non-maximal.  Stale entries are dropped lazily on lookup (counted in
``invalidations``) — there is no eager flush to coordinate, which is exactly
why the generation token rides in the key.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple as TupleType

from repro.core.incremental import FDStatistics
from repro.relational.database import Database
from repro.service.session import QuerySession, ResultLog, make_result_source

#: Option keys that identify a query; anything else (statistics objects,
#: session names) is per-client and must not fragment the cache.
_KEY_OPTIONS = (
    "use_index",
    "initialization",
    "block_size",
    "threshold",
    "rank_threshold",
    "k",
)


def database_generation(database: Database) -> TupleType[int, int, int]:
    """The invalidation token: ``(catalog_rebuilds, relations, tuples)``.

    Any structural change moves at least one component: appends move the
    tuple count, rebuild-triggering changes move ``catalog_rebuilds`` (and
    usually the other two).  The catalog is settled first — tokens are
    defined over a *built* snapshot, so the initial (or any pending lazy)
    build is charged here rather than shifting the token under a key that
    was computed moments earlier.
    """
    database.catalog()
    return database.generation


def _query_key(database: Database, engine: str, options: dict, extra: Optional[str]):
    """A hashable identity for one query against one database generation.

    The database (and any untagged callables) participate as *objects*, not
    ``id()`` integers: the key tuple holds a strong reference, so a live
    entry can never alias a different database allocated at a recycled id.
    """
    parts = [
        ("db", database),
        ("generation", database_generation(database)),
        ("engine", engine),
    ]
    for key in _KEY_OPTIONS:
        if options.get(key) is not None:
            parts.append((key, options[key]))
    backend = options.get("backend")
    if backend is not None:
        parts.append(("backend", getattr(backend, "name", str(backend))))
    # Ranking / join functions are arbitrary callables.  A ``cache_tag``
    # *names* them: the caller asserts that equal tags mean equivalent
    # callables, so fresh-but-identical instances (a new ``MinJoin`` per
    # request, say) share the cache.  A ranking function may instead carry
    # its own stable identity (``RankingFunction.cache_key()`` — the spec
    # plus the determination bound ``c``), so ranked logs are keyed by
    # ``(generation, ranking, c)`` and fresh-but-equal ``MaxRanking``
    # instances share one computation.  Untagged, keyless callables
    # fragment by identity, which is always safe.
    if extra is not None:
        parts.append(("tag", extra))
    else:
        for key in ("ranking", "join_function"):
            value = options.get(key)
            if value is not None:
                identity = getattr(value, "cache_key", lambda: None)()
                parts.append((key, value if identity is None else identity))
    return tuple(parts)


class PrefixCache:
    """An LRU of shared result logs, one per distinct live query.

    ``capacity`` bounds the number of retained logs; the least recently
    *opened* entry is evicted (and its generator closed).  Counters expose
    the serving behaviour: ``hits`` (a later client reused a log),
    ``misses`` (a fresh computation started), ``invalidations`` (an entry
    was dropped because the database moved to a new generation),
    ``evictions`` (capacity pressure).
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, ResultLog]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def open(
        self,
        database: Database,
        engine: str = "fd",
        name: Optional[str] = None,
        cache_tag: Optional[str] = None,
        **options,
    ) -> QuerySession:
        """A session for this query — over the shared log when one is live.

        The returned session never owns the log (the cache does), so clients
        may close their sessions freely.  ``cache_tag`` names an otherwise
        unhashable option set (a ranking callable, say) so separate clients
        can share it deliberately.
        """
        key = _query_key(database, engine, options, cache_tag)
        log = self._entries.get(key)
        if log is not None and not log.closed:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            if log is not None:
                del self._entries[key]
            self._drop_stale(database)
            statistics = options.pop("statistics", None) or FDStatistics()
            source = make_result_source(
                database, engine, statistics=statistics, **options
            )
            log = ResultLog(source, statistics=statistics)
            self._entries[key] = log
            self.misses += 1
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                evicted.close("the shared result log was evicted from the prefix cache")
                self.evictions += 1
        return QuerySession(log, owns_log=False, name=name)

    def invalidate(self, database: Database) -> int:
        """Eagerly drop every entry for an older generation of ``database``.

        Lookups do this lazily; a caller that just *mutated* the database
        (the serving layer's ingest path) calls this so sessions still
        reading an old-generation log fail fast with
        :class:`~repro.service.session.StaleResultLog` instead of pulling
        from a generator that now observes a half-changed database.
        Returns the number of entries dropped.
        """
        return self._drop_stale(database)

    def _drop_stale(self, database: Database) -> int:
        """Drop every entry recorded against an older generation of ``database``.

        Entries for *other* databases are left to age out of the LRU
        normally.
        """
        marker = ("db", database)
        current = ("generation", database_generation(database))
        stale = [
            key
            for key in self._entries
            if key[0] == marker and key[1] != current
        ]
        for key in stale:
            self._entries.pop(key).close(
                "the database moved to a new generation; reopen the query"
            )
            self.invalidations += 1
        return len(stale)

    def clear(self) -> None:
        """Close and drop every entry."""
        for log in self._entries.values():
            log.close("the prefix cache was cleared")
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"PrefixCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
