"""The LRU result-prefix cache: identical queries share one computation.

Many concurrent clients asking the same first-k query should cost one engine
run, not one per client.  :class:`PrefixCache` keys each query by

``(database generation, engine, frozen options)``

and maps it to the shared :class:`~repro.service.session.ResultLog` of the
first client's run.  Later clients get cursors over the same log: results
already materialized are free, and the log's single generator extends the
prefix for whichever client asks furthest first.

**Invalidation contract.**  The cache never inspects tuple *values*; it
trusts the append-only catalog's bookkeeping.  :func:`database_generation`
folds the counters that, together, change whenever the answer stream could
change:

* ``Database.catalog_rebuilds`` — bumped by every full snapshot rebuild
  (relations added, compaction, or mutations behind the database's back);
* ``Database.epoch`` — bumped by every non-monotone mutation (a deletion or
  an in-place update) applied through the tombstoning entry points;
* the relation count and the live tuple count — ``Database.add_tuple``
  maintains the catalog *in place* (no rebuild), so streaming ingest is
  visible only through the tuple count.

A cached entry whose recorded generation differs from the database's
current generation is *suspect*, but not necessarily dead.

**Epoch revalidation.**  When the only thing separating an entry's
generation from the current one is deletion epochs — same rebuild counter,
same relations, and no tuple ids issued since the entry was created (no
arrivals, no updates) — the entry's results are checked against the
catalog's tombstone set: one ``AND`` of each interned result's member
bitmask against :attr:`Catalog.dead_mask
<repro.relational.catalog.Catalog.dead_mask>`.  A deletion never makes a
surviving result wrong (the database only shrank, so an old maximal set
stays join consistent, connected and maximal); it can only invalidate
results that *contain* a deleted tuple, or leave a prefix one result short
of where a fresh run would be.  So a log whose materialized prefix holds no
dead tuple is **revalidated**: re-keyed under the new generation and served
as-is, with pulls beyond the prefix transparently backed by a fresh
deduplicating engine run (attached lazily — an unaffected first-k session
rides through the deletion without recomputing anything).  Everything else
— appends, updates, rebuilds, or a prefix that lost a result — is dropped
lazily on lookup (counted in ``invalidations``), exactly as before.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Optional, Tuple as TupleType

from repro.core.incremental import FDStatistics
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import trace_span
from repro.relational.database import Database
from repro.service.session import QuerySession, ResultLog, make_result_source

#: Option keys that identify a query; anything else (statistics objects,
#: session names) is per-client and must not fragment the cache.
_KEY_OPTIONS = (
    "use_index",
    "initialization",
    "block_size",
    "threshold",
    "rank_threshold",
    "k",
)


def database_generation(database: Database) -> TupleType[int, int, int, int]:
    """The invalidation token: ``(catalog_rebuilds, epoch, relations, tuples)``.

    Any structural change moves at least one component: appends move the
    live tuple count, deletions and in-place updates move ``epoch``,
    rebuild-triggering changes move ``catalog_rebuilds`` (and usually the
    others).  The catalog is settled first — tokens are defined over a
    *built* snapshot, so the initial (or any pending lazy) build is charged
    here rather than shifting the token under a key that was computed
    moments earlier.
    """
    database.catalog()
    return database.generation


def _query_key(database: Database, engine: str, options: dict, extra: Optional[str]):
    """A hashable identity for one query against one database generation.

    The database (and any untagged callables) participate as *objects*, not
    ``id()`` integers: the key tuple holds a strong reference, so a live
    entry can never alias a different database allocated at a recycled id.
    """
    parts = [
        ("db", database),
        ("generation", database_generation(database)),
        ("engine", engine),
    ]
    for key in _KEY_OPTIONS:
        if options.get(key) is not None:
            parts.append((key, options[key]))
    backend = options.get("backend")
    if backend is not None:
        parts.append(("backend", getattr(backend, "name", str(backend))))
    # Ranking / join functions are arbitrary callables.  A ``cache_tag``
    # *names* them: the caller asserts that equal tags mean equivalent
    # callables, so fresh-but-identical instances (a new ``MinJoin`` per
    # request, say) share the cache.  A ranking function may instead carry
    # its own stable identity (``RankingFunction.cache_key()`` — the spec
    # plus the determination bound ``c``), so ranked logs are keyed by
    # ``(generation, ranking, c)`` and fresh-but-equal ``MaxRanking``
    # instances share one computation.  Untagged, keyless callables
    # fragment by identity, which is always safe.
    if extra is not None:
        parts.append(("tag", extra))
    else:
        for key in ("ranking", "join_function"):
            value = options.get(key)
            if value is not None:
                identity = getattr(value, "cache_key", lambda: None)()
                parts.append((key, value if identity is None else identity))
    return tuple(parts)


class _Entry:
    """One cached query: its shared log plus the revalidation bookkeeping.

    ``ids_issued`` records the catalog's total id count (live and dead) at
    creation time: if it has not moved, no tuple was appended since — the
    precondition for treating a generation gap as "deletions only".
    """

    __slots__ = ("log", "ids_issued")

    def __init__(self, log: ResultLog, ids_issued: int):
        self.log = log
        self.ids_issued = ids_issued


_SEAL_REASON = (
    "the prefix was revalidated across a deletion epoch; results beyond the "
    "materialized prefix need a fresh run — reopen the query"
)

_RECOVERED_REASON = (
    "the prefix was recovered from a snapshot; results beyond the "
    "materialized prefix need a fresh run — reopen the query"
)


class PrefixCache:
    """An LRU of shared result logs, one per distinct live query.

    ``capacity`` bounds the number of retained logs; the least recently
    *opened* entry is evicted (and its generator closed).  Counters expose
    the serving behaviour: ``hits`` (a later client reused a log),
    ``misses`` (a fresh computation started), ``revalidations`` (an entry
    rode through a deletion epoch — see the module docstring),
    ``invalidations`` (an entry was dropped because the database moved to an
    incompatible generation), ``evictions`` (capacity pressure).
    """

    def __init__(
        self, capacity: int = 32, registry: Optional[MetricsRegistry] = None
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.revalidations = 0
        self.evictions = 0
        # Live series mirror the int counters so a scrape sees cache
        # behaviour without a ``stats`` round trip; children are resolved
        # once here so the serving path pays one ``inc()`` per event.
        registry = registry if registry is not None else get_registry()
        self._m_hits = registry.counter(
            "repro_cache_hits_total", "Prefix-cache lookups served from a live log."
        )
        self._m_misses = registry.counter(
            "repro_cache_misses_total", "Prefix-cache lookups that started a fresh run."
        )
        self._m_invalidations = registry.counter(
            "repro_cache_invalidations_total",
            "Cached logs dropped because the database moved generations.",
        )
        self._m_revalidations = registry.counter(
            "repro_cache_revalidations_total",
            "Cached prefixes revalidated across a deletion-only epoch.",
        )
        self._m_evictions = registry.counter(
            "repro_cache_evictions_total",
            "Cached logs evicted by LRU capacity pressure.",
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "Live entries currently held by the prefix cache."
        )

    def __len__(self) -> int:
        return len(self._entries)

    def open(
        self,
        database: Database,
        engine: str = "fd",
        name: Optional[str] = None,
        cache_tag: Optional[str] = None,
        **options,
    ) -> QuerySession:
        """A session for this query — over the shared log when one is live.

        The returned session never owns the log (the cache does), so clients
        may close their sessions freely.  ``cache_tag`` names an otherwise
        unhashable option set (a ranking callable, say) so separate clients
        can share it deliberately.
        """
        span = trace_span("cache.open", "cache", engine=engine)
        key = _query_key(database, engine, options, cache_tag)
        entry = self._entries.get(key)
        if entry is not None and entry.log.closed:
            del self._entries[key]
            entry = None
        if entry is None:
            entry = self._revalidate_into(key, database)
        if entry is not None:
            if entry.log.sealed:
                # A revalidated prefix whose tail was never rebuilt: attach
                # the deduplicating fresh run now that a caller with the
                # query's options is here.  The run starts lazily, so a
                # client that stays inside the prefix never pays for it.
                entry.log.reopen_with(
                    self._tail_source(database, engine, dict(options), entry.log)
                )
            self._entries.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            span.annotate(outcome="hit")
            span.close()
            return QuerySession(entry.log, owns_log=False, name=name)
        self._drop_stale(database)
        statistics = options.pop("statistics", None) or FDStatistics()
        source = make_result_source(
            database, engine, statistics=statistics, **options
        )
        log = ResultLog(source, statistics=statistics)
        self._entries[key] = _Entry(log, database.catalog().tuple_count)
        self.misses += 1
        self._m_misses.inc()
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.log.close(
                "the shared result log was evicted from the prefix cache"
            )
            self.evictions += 1
            self._m_evictions.inc()
        self._m_entries.set(len(self._entries))
        span.annotate(outcome="miss")
        span.close()
        return QuerySession(log, owns_log=False, name=name)

    # ------------------------------------------------------------------ #
    # durable state (storage-layer snapshot/restore hooks)
    # ------------------------------------------------------------------ #
    def entry_log(
        self,
        database: Database,
        engine: str = "fd",
        cache_tag: Optional[str] = None,
        **options,
    ) -> Optional[ResultLog]:
        """Peek at the live log cached for exactly this query, if any.

        A read-only probe: no hit/miss counters move, the LRU order is
        untouched.  The storage layer uses this to decide which materialized
        prefixes a snapshot can persist.
        """
        entry = self._entries.get(_query_key(database, engine, options, cache_tag))
        if entry is None or entry.log.closed:
            return None
        return entry.log

    def install(
        self,
        database: Database,
        engine: str = "fd",
        items: Iterable[object] = (),
        complete: bool = False,
        cache_tag: Optional[str] = None,
        **options,
    ) -> bool:
        """Install a recovered materialized prefix under the current generation.

        The storage layer's restore hook: ``items`` are the results a
        snapshot persisted for this query.  A ``complete`` prefix serves as
        a finished stream (cursors see exhaustion, no engine ever runs); an
        incomplete one is installed *sealed* — exactly the revalidated
        state — so the next :meth:`open` attaches a fresh deduplicating
        tail and clients inside the prefix recompute nothing.  Returns
        ``False`` when a live entry already holds the key.
        """
        key = _query_key(database, engine, options, cache_tag)
        existing = self._entries.get(key)
        if existing is not None:
            if not existing.log.closed:
                return False
            del self._entries[key]
        log = ResultLog.from_results(
            list(items),
            complete=complete,
            seal_reason=None if complete else _RECOVERED_REASON,
        )
        self._entries[key] = _Entry(log, database.catalog().tuple_count)
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.log.close(
                "the shared result log was evicted from the prefix cache"
            )
            self.evictions += 1
            self._m_evictions.inc()
        self._m_entries.set(len(self._entries))
        return True

    # ------------------------------------------------------------------ #
    # epoch revalidation
    # ------------------------------------------------------------------ #
    def _tail_source(
        self, database: Database, engine: str, options: dict, log: ResultLog
    ) -> Iterator[object]:
        """A fresh engine run that skips everything already in ``log``.

        The revalidated prefix is served as-is; this source transparently
        extends it with the post-deletion stream, deduplicated against the
        prefix, so a drained revalidated log converges to exactly the
        current database's full answer set.
        """
        options.pop("statistics", None)

        def tail():
            seen = {_prefix_key(item) for item in log.results}
            for item in make_result_source(
                database, engine, statistics=log.statistics, **options
            ):
                if _prefix_key(item) not in seen:
                    yield item

        return tail()

    def _revalidate_into(self, key: tuple, database: Database) -> Optional[_Entry]:
        """Move an epoch-compatible sibling entry under ``key``, if one survives.

        A sibling is the same query (same database object, engine and
        options) recorded under an older generation.  It revalidates when
        the generation gap is deletions-only and its materialized prefix
        holds no tombstoned tuple (:meth:`_eligible`); the entry is then
        re-keyed under the current generation with its source sealed —
        :meth:`open` attaches the fresh tail.
        """
        marker, current = key[0], key[1]
        catalog = database.catalog()
        for old_key in list(self._entries):
            if (
                old_key[0] != marker
                or old_key[1] == current
                or old_key[2:] != key[2:]
            ):
                continue
            entry = self._entries[old_key]
            if not self._eligible(entry, old_key[1][1], current[1], catalog):
                continue
            del self._entries[old_key]
            entry.log.seal(_SEAL_REASON)
            self._entries[key] = entry
            self.revalidations += 1
            self._m_revalidations.inc()
            return entry
        return None

    @staticmethod
    def _eligible(entry: _Entry, old_generation, new_generation, catalog) -> bool:
        """The revalidation test: deletions-only gap, prefix untouched.

        ``catalog_rebuilds`` and the relation count must match, the epoch
        must have advanced, no tuple id may have been issued since the entry
        was created (appends and updates both issue ids), and no
        materialized result may contain a tombstoned tuple — one bitmask
        ``AND`` per interned result.
        """
        old_rebuilds, old_epoch, old_relations, _ = old_generation
        new_rebuilds, new_epoch, new_relations, _ = new_generation
        if (old_rebuilds, old_relations) != (new_rebuilds, new_relations):
            return False
        if new_epoch <= old_epoch:
            return False
        if entry.ids_issued != catalog.tuple_count:
            return False
        if entry.log.closed:
            return False
        for item in entry.log.results:
            tuple_set = item[0] if isinstance(item, tuple) else item
            if tuple_set.contains_tombstoned(catalog):
                return False
        return True

    def revalidate(self, database: Database) -> dict:
        """After a non-monotone mutation: re-key untouched entries, drop the rest.

        The eager counterpart of the lazy lookup path, for callers that just
        *mutated* the database (the server's retract/update ops): every
        entry of ``database`` recorded under an older generation is either
        revalidated in place — its sessions keep serving the prefix, pulls
        beyond it fail fast with
        :class:`~repro.service.session.StaleResultLog` until the next
        :meth:`open` attaches a fresh tail — or closed.  Returns
        ``{"revalidated": n, "invalidated": m}``.
        """
        catalog = database.catalog()
        current = ("generation", database.generation)
        marker = ("db", database)
        revalidated = invalidated = 0
        with trace_span("cache.revalidate", "cache") as span:
            for old_key in list(self._entries):
                if old_key[0] != marker or old_key[1] == current:
                    continue
                entry = self._entries.pop(old_key)
                new_key = (old_key[0], current) + old_key[2:]
                if new_key not in self._entries and self._eligible(
                    entry, old_key[1][1], current[1], catalog
                ):
                    entry.log.seal(_SEAL_REASON)
                    self._entries[new_key] = entry
                    self.revalidations += 1
                    self._m_revalidations.inc()
                    revalidated += 1
                else:
                    entry.log.close(
                        "the database moved to a new generation; reopen the query"
                    )
                    self.invalidations += 1
                    self._m_invalidations.inc()
                    invalidated += 1
            self._m_entries.set(len(self._entries))
            span.annotate(revalidated=revalidated, invalidated=invalidated)
        return {"revalidated": revalidated, "invalidated": invalidated}

    def invalidate(self, database: Database) -> int:
        """Eagerly drop every entry for an older generation of ``database``.

        Lookups do this lazily; a caller that just *appended* to the
        database (the serving layer's ingest path) calls this so sessions
        still reading an old-generation log fail fast with
        :class:`~repro.service.session.StaleResultLog` instead of pulling
        from a generator that now observes a half-changed database.  (After
        a deletion, prefer :meth:`revalidate`, which preserves untouched
        prefixes.)  Returns the number of entries dropped.
        """
        return self._drop_stale(database)

    def _drop_stale(self, database: Database) -> int:
        """Drop every entry recorded against an older generation of ``database``.

        Entries for *other* databases are left to age out of the LRU
        normally.
        """
        marker = ("db", database)
        current = ("generation", database_generation(database))
        stale = [
            key
            for key in self._entries
            if key[0] == marker and key[1] != current
        ]
        for key in stale:
            self._entries.pop(key).log.close(
                "the database moved to a new generation; reopen the query"
            )
            self.invalidations += 1
            self._m_invalidations.inc()
        self._m_entries.set(len(self._entries))
        return len(stale)

    def clear(self) -> None:
        """Close and drop every entry."""
        for entry in self._entries.values():
            entry.log.close("the prefix cache was cleared")
        self._entries.clear()
        self._m_entries.set(0)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "revalidations": self.revalidations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"PrefixCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _prefix_key(item: object) -> frozenset:
    """A log item's identity across engine runs (the shared result identity)."""
    from repro.workloads.streaming import result_key

    tuple_set = item[0] if isinstance(item, tuple) else item
    return result_key(tuple_set)
