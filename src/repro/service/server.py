"""An asyncio JSON-lines server driving query sessions end to end.

One process, one event loop, many clients: each connection speaks a
line-oriented JSON protocol, sessions are multiplexed through the ``async``
execution backend (one ``GetNextResult``-granular step per loop turn), and
identical queries from different clients share prefixes through a
:class:`~repro.service.cache.PrefixCache`.

Protocol (one JSON object per line, both directions)::

    → {"op": "open", "engine": "fd", "use_index": true}
    ← {"ok": true, "session": "s1", "cached": false}
    → {"op": "next", "session": "s1", "k": 5}
    ← {"ok": true, "results": [["c1","f1","l1"], ...], "exhausted": false}
    → {"op": "peek", "session": "s1"}
    → {"op": "ingest", "tuples": [["Prices", ["v1", "w2"]], ...]}
    ← {"ok": true, "applied": 1, "new_results": 2}
    → {"op": "retract", "tuples": [["Prices", "p2"], ...]}
    ← {"ok": true, "retracted": 3, "new_results": 1, "revalidated_queries": 2}
    → {"op": "update", "tuples": [["Prices", "p3", ["v9", "w9"]], ...]}
    → {"op": "close", "session": "s1"}
    → {"op": "stats"}

``open`` accepts ``engine`` ∈ {"fd", "approx", "ranked", "stream"} plus
engine options (``use_index``, ``initialization``, ``threshold``,
``similarity``, ``importance``) and a ``format`` ∈ {"labels", "padded"};
options a given engine does not understand are rejected with a clear error
rather than silently ignored.  The ``stream`` engine serves the live log
of the server's :class:`~repro.service.delta.StreamingFullDisjunction`
maintainer, so an open stream session observes ``ingest``-ed tuples without
restarting — and ``retract``/``update`` mutations too: a deleted result
crosses the wire as a ``{"retract": ...}`` object in stream order.  The
exact, approximate and ranked engines go through the prefix cache; an
``ingest`` invalidates its entries via the database generation token, while
a ``retract`` *revalidates* them — cached first-k prefixes untouched by the
deletion ride through and keep serving without recomputation.

With ``"format": "padded"`` answers carry Table-2-style padded row objects:
``{"labels": [...], "row": {attribute: value-or-null, ...}}`` over the
union schema of the served database, nulls rendered as JSON ``null``
(scores still included on ranked sessions).

The ``ranked`` engine is the top-``(k, f_max)`` surface: ``importance`` is
either a ``{label: value}`` map — validated against the database's labels at
``open`` time, so a typo'd map is a client error, not a silently wrong
ranking (pass ``"default"`` to opt into scoring unlisted labels) — or
absent, which ranks by the importance stored on each tuple.  Ranked results
cross the wire as ``{"labels": [...], "score": ...}`` objects; identical
importance maps from different clients share one cached computation (the
ranking participates in the cache key through its spec and ``c``).

Unranked results cross the wire as sorted label lists — the canonical,
order-insensitive rendering the CLI and tests use.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple as TupleType

from repro.core.approx_join import (
    EditDistanceSimilarity,
    ExactMatchSimilarity,
    MinJoin,
)
from repro.core.ranking import MaxRanking, validate_importance_spec
from repro.core.tupleset import TupleSet
from repro.exec import AsyncBackend
from repro.relational.database import Database
from repro.relational.errors import (
    DatabaseError,
    RankingError,
    RelationError,
    SchemaError,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import trace_span
from repro.relational.nulls import is_null
from repro.relational.operators import combined_schema, pad_tuple_set
from repro.service.cache import PrefixCache, database_generation
from repro.service.delta import StreamingFullDisjunction
from repro.service.session import QuerySession, Retraction
from repro.storage.codec import (
    CodecError,
    arrival_from_wire,
    decode_ops,
    removal_from_wire,
    update_from_wire,
)
from repro.storage.snapshot import load_latest_snapshot
from repro.storage.store import (
    DEFAULT_SNAPSHOT_EVERY,
    DurableStore,
    RecoveryError,
)
from repro.storage.wal import DEFAULT_FSYNC_EVERY, WAL_NAME, recover_wal


#: Options of an ``open`` request that shape the served computation — the
#: wire-level counterpart of the prefix cache's key options.  ``format``
#: stays out: it shapes the rendering, not the cached result log.  The
#: sharded router routes opens by this key; the durable store uses it to
#: index the wire requests whose cached prefixes a snapshot persists.
_ROUTING_KEYS = (
    "engine",
    "use_index",
    "initialization",
    "threshold",
    "similarity",
    "importance",
    "default",
    "k",
)


def open_routing_key(request: dict) -> str:
    """The canonical routing key of an ``open`` request.

    A deterministic JSON rendering of the options that key the prefix
    cache: two requests for the same query always produce the same key and
    therefore route to the same shard, where they share one cached prefix.
    """
    payload = {
        key: request[key] for key in _ROUTING_KEYS if request.get(key) is not None
    }
    payload.setdefault("engine", "fd")
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_result(item) -> List[str]:
    """A result (tuple set, or (tuple set, score) pair) as sorted labels."""
    tuple_set = item[0] if isinstance(item, tuple) else item
    return sorted(t.label for t in tuple_set)


def render_ranked_result(item) -> dict:
    """A ranked result as its wire object: sorted labels plus the score."""
    tuple_set, score = item
    return {"labels": sorted(t.label for t in tuple_set), "score": score}


def render_padded_result(item, schema, ranked: bool = False) -> dict:
    """A result as a Table-2-style padded row object over the union ``schema``.

    The row maps every attribute of the served database's combined schema to
    the result's merged value, with nulls rendered as JSON ``null`` — the
    wire-level counterpart of :func:`repro.relational.operators.pad_tuple_set`.
    The caller computes the schema once per batch of renderings.
    """
    tuple_set = item[0] if isinstance(item, tuple) else item
    padded = pad_tuple_set(tuple_set, schema)
    payload = {
        "labels": sorted(t.label for t in tuple_set),
        "row": {
            attribute: (None if is_null(value) else value)
            for attribute, value in padded.items()
        },
    }
    if ranked:
        payload["score"] = item[1]
    return payload


class QueryServer:
    """Session bookkeeping + request dispatch for one served database."""

    #: Bound on remembered persistable ``open`` requests (snapshot inputs).
    _MAX_PERSISTABLE_OPENS = 64

    def __init__(
        self,
        database: Database,
        use_index: bool = True,
        cache: Optional[PrefixCache] = None,
        registry: Optional[MetricsRegistry] = None,
        store: Optional[DurableStore] = None,
        read_only: bool = False,
    ):
        self.database = database
        self.use_index = use_index
        self.registry = registry if registry is not None else get_registry()
        self.cache = (
            cache if cache is not None else PrefixCache(registry=self.registry)
        )
        #: The durable store (WAL + snapshots) this server records into;
        #: ``None`` serves purely in memory, exactly as before PR 9.
        self.store = store
        #: Read-only replicas (follower mode) refuse mutating wire ops; the
        #: replication tailer applies the primary's WAL records directly
        #: through the maintainer instead.
        self.read_only = read_only
        self.backend = AsyncBackend()
        self.maintainer = StreamingFullDisjunction(database, use_index=use_index)
        #: Wire requests of cache-backed opens, keyed by routing key — the
        #: requests whose cached prefixes a snapshot can persist and a
        #: recovered server can re-install.  JSON-typed by construction.
        self._persistable_opens: "OrderedDict[str, dict]" = OrderedDict()
        self._sessions: Dict[str, QuerySession] = {}
        #: Names of sessions whose results carry scores on the wire.
        self._ranked_sessions: set = set()
        #: Names of sessions whose results cross as padded row objects.
        self._padded_sessions: set = set()
        #: Which engine each live session was opened with (latency labels).
        self._session_engines: Dict[str, str] = {}
        self._session_counter = 0
        self.requests = 0
        self.started_at = time.monotonic()
        # Metric children are resolved once here: the request path pays one
        # ``labels()`` dict probe plus one ``observe()``/``inc()`` per event
        # (and plain no-ops when the registry is disabled).
        self._m_requests = self.registry.counter(
            "repro_requests_total", "Requests handled, by wire op.", ("op",)
        )
        self._m_errors = self.registry.counter(
            "repro_request_errors_total",
            "Requests answered with ok=false, by wire op.",
            ("op",),
        )
        self._m_latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "Wall-clock latency of one request, by wire op.",
            ("op",),
        )
        self._m_engine_latency = self.registry.histogram(
            "repro_engine_latency_seconds",
            "Latency of session opens and next-batch pulls, by engine.",
            ("engine", "phase"),
        )
        self._m_ingest_lag = self.registry.gauge(
            "repro_ingest_lag_seconds",
            "Monotonic time from ingest receipt to maintainer apply, last batch.",
        )
        self._m_sessions = self.registry.gauge(
            "repro_live_sessions", "Query sessions currently open."
        )

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def handle_request(
        self, request: dict, connection_sessions: Optional[set] = None
    ) -> dict:
        """Dispatch one wire request, timed: every op lands in the per-op
        latency histogram and (as a complete span) on the active tracer."""
        self.requests += 1
        op = str(request.get("op"))
        start = time.perf_counter()
        span = trace_span(f"op.{op}", "server")
        ok = False
        try:
            response = await self._dispatch(op, request, connection_sessions)
            ok = bool(response.get("ok"))
            return response
        finally:
            self._m_requests.labels(op=op).inc()
            if not ok:
                self._m_errors.labels(op=op).inc()
            self._m_latency.labels(op=op).observe(time.perf_counter() - start)
            span.close()

    async def _dispatch(
        self, op: str, request: dict, connection_sessions: Optional[set]
    ) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "open":
            engine = str(request.get("engine", "fd"))
            started = time.perf_counter()
            response = self._open(request)
            self._m_engine_latency.labels(engine=engine, phase="open").observe(
                time.perf_counter() - started
            )
            if connection_sessions is not None and response.get("ok"):
                connection_sessions.add(response["session"])
            return response
        if op == "next":
            engine = self._session_engines.get(
                request.get("session"), "unknown"
            )
            started = time.perf_counter()
            response = await self._next(request)
            self._m_engine_latency.labels(engine=engine, phase="next").observe(
                time.perf_counter() - started
            )
            return response
        if op == "peek":
            return self._peek(request)
        if op == "close":
            if connection_sessions is not None:
                connection_sessions.discard(request.get("session"))
            return self._close(request)
        if op == "ingest":
            return self._ingest(request)
        if op == "retract":
            return self._retract(request)
        if op == "update":
            return self._update(request)
        if op == "snapshot":
            return self._snapshot_op(request)
        if op == "stats":
            response = {"ok": True, **server_stats(self)}
            if request.get("detail") == "metrics":
                response["metrics"] = self.registry.snapshot()
            return response
        return {"ok": False, "error": f"unknown op {op!r}"}

    # ------------------------------------------------------------------ #
    # observability surfaces
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The registry as a Prometheus text page (the sidecar's /metrics)."""
        return self.registry.render()

    def health(self) -> dict:
        """The liveness summary the sidecar serves as /health."""
        from repro.core.kernels import active_kernel

        return {
            "status": "ok",
            "sessions": len(self._sessions),
            "requests": self.requests,
            "epoch": self.database.epoch,
            "kernel": active_kernel().name,
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    #: Request keys every ``open`` understands, plus the per-engine extras.
    #: ``use_index`` is per-query, so the ``stream`` engine — which serves
    #: the maintainer's live log, built with the *server's* index setting —
    #: rejects it like any other option it would silently ignore.
    _OPEN_BASE_KEYS = frozenset({"op", "engine", "format"})
    _OPEN_ENGINE_KEYS = {
        "fd": frozenset({"use_index", "initialization"}),
        "approx": frozenset({"use_index", "threshold", "similarity"}),
        "ranked": frozenset({"use_index", "importance", "default", "k"}),
        "stream": frozenset(),
    }

    def _open(self, request: dict) -> dict:
        engine = request.get("engine", "fd")
        allowed = self._OPEN_ENGINE_KEYS.get(engine)
        if allowed is not None:
            unknown = sorted(set(request) - self._OPEN_BASE_KEYS - allowed)
            if unknown:
                # Silently dropping an option the engine never reads would
                # hand the client a different query than it asked for.
                return {
                    "ok": False,
                    "error": (
                        f"unknown option(s) for engine {engine!r}: "
                        f"{', '.join(unknown)}"
                    ),
                }
        render_format = request.get("format", "labels")
        if render_format not in ("labels", "padded"):
            return {
                "ok": False,
                "error": (
                    f"unknown format {render_format!r}; "
                    "expected 'labels' or 'padded'"
                ),
            }
        self._session_counter += 1
        name = f"s{self._session_counter}"
        ranked = False
        if engine == "stream":
            session = self.maintainer.session(name=name)
            cached = True  # the live log is always shared
        elif engine in ("fd", "approx", "ranked"):
            plan, error = self._query_plan(request)
            if plan is None:
                return error
            ranked = plan["ranked"]
            hits_before = self.cache.hits
            session = self.cache.open(
                self.database, plan["cache_engine"], name=name, **plan["options"]
            )
            cached = self.cache.hits > hits_before
            self._remember_open(request)
        else:
            return {"ok": False, "error": f"unknown engine {engine!r}"}
        self._sessions[name] = session
        self._session_engines[name] = engine
        self._m_sessions.set(len(self._sessions))
        if ranked:
            self._ranked_sessions.add(name)
        if render_format == "padded":
            self._padded_sessions.add(name)
        response = {"ok": True, "session": name, "cached": cached}
        if ranked:
            response["ranked"] = True
        if render_format == "padded":
            response["format"] = "padded"
        return response

    def _query_plan(self, request: dict):
        """Resolve a cache-backed ``open`` request into its cache call.

        Returns ``(plan, None)`` on success — ``plan`` holds the cache
        engine name, the option dict handed to
        :meth:`PrefixCache.open <repro.service.cache.PrefixCache.open>`
        (``cache_tag`` included), and the ``ranked`` flag — or
        ``(None, error_response)`` for a client error.  Shared by the live
        open path and the storage layer, which re-resolves persisted wire
        requests when snapshotting and re-installing cached prefixes, so
        the two can never key the cache differently.
        """
        engine = request.get("engine", "fd")
        options = {"use_index": request.get("use_index", self.use_index)}
        cache_engine = engine
        ranked = False
        if engine == "fd":
            if request.get("initialization"):
                options["initialization"] = request["initialization"]
        elif engine == "approx":
            similarity = (
                EditDistanceSimilarity()
                if request.get("similarity", "edit") == "edit"
                else ExactMatchSimilarity()
            )
            options["join_function"] = MinJoin(similarity)
            options["threshold"] = float(request.get("threshold", 0.8))
            options["cache_tag"] = f"minjoin-{request.get('similarity', 'edit')}"
        else:
            try:
                options["ranking"] = self._wire_ranking(request)
                if request.get("k") is not None:
                    try:
                        options["k"] = int(request["k"])
                    except (TypeError, ValueError):
                        raise RankingError(
                            "the 'k' option must be an integer"
                        ) from None
            except RankingError as error:
                # A bad importance spec is the *client's* error — refuse
                # the open instead of serving a wrong ranking order.
                return None, {"ok": False, "error": str(error)}
            cache_engine = "priority"
            ranked = True
        return (
            {"cache_engine": cache_engine, "options": options, "ranked": ranked},
            None,
        )

    def _remember_open(self, request: dict) -> None:
        """Record a successful cache-backed open for later snapshots.

        Keyed by routing key so repeats collapse; capped so adversarial
        clients cannot grow the snapshot without bound.  Requests that do
        not render to JSON (in-process callers passing exotic objects) are
        simply not persisted.
        """
        payload = {
            key: value for key, value in request.items() if key != "op"
        }
        try:
            key = open_routing_key(request)
            json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError):
            return
        self._persistable_opens[key] = payload
        self._persistable_opens.move_to_end(key)
        while len(self._persistable_opens) > self._MAX_PERSISTABLE_OPENS:
            self._persistable_opens.popitem(last=False)

    def _wire_ranking(self, request: dict) -> MaxRanking:
        """The ``importance`` spec of a ranked ``open``, validated.

        A ``{label: value}`` map must cover the database's labels exactly
        (``"default"`` opts into scoring unlisted labels); no spec ranks by
        the importance stored on each tuple.  Raises
        :class:`~repro.relational.errors.RankingError` on a bad spec.
        """
        spec = request.get("importance")
        if spec is not None and not isinstance(spec, dict):
            raise RankingError(
                "the 'importance' option must be a {label: value} object"
            )
        if spec is not None:
            try:
                spec = {str(label): float(value) for label, value in spec.items()}
            except (TypeError, ValueError):
                raise RankingError(
                    "importance values must be numbers"
                ) from None
        if "default" in request:
            if spec is None:
                raise RankingError(
                    "the 'default' option needs an 'importance' map to "
                    "complete; without a map, tuples are scored by their "
                    "stored importance and a default is meaningless"
                )
            try:
                default = float(request["default"])
            except (TypeError, ValueError):
                raise RankingError("the 'default' option must be a number") from None
            validate_importance_spec(self.database, spec, default=default)
            return MaxRanking(spec, default=default)
        validate_importance_spec(self.database, spec)
        return MaxRanking(spec)

    def _session_of(self, request: dict) -> TupleType[Optional[QuerySession], dict]:
        name = request.get("session")
        session = self._sessions.get(name)
        if session is None:
            return None, {"ok": False, "error": f"no session {name!r}"}
        return session, {}

    def _renderer(self, request: dict):
        """Ranked sessions ship scores; padded ones ship Table-2 row objects.

        Retraction markers on live stream logs cross as ``{"retract": ...}``
        wrapping the same rendering the original emission used.
        """
        name = request.get("session")
        ranked = name in self._ranked_sessions
        if name in self._padded_sessions:
            # One schema computation per request, not one per rendered item.
            schema = combined_schema(self.database.relations)

            def base(item):
                return render_padded_result(item, schema, ranked=ranked)
        elif ranked:
            base = render_ranked_result
        else:
            base = render_result

        def render(item):
            if isinstance(item, Retraction):
                return {"retract": base(item.item)}
            return base(item)

        return render

    async def _next(self, request: dict) -> dict:
        session, error = self._session_of(request)
        if session is None:
            return error
        k = int(request.get("k", 1))
        render = self._renderer(request)
        results = await self.backend.drive(session, k)
        return {
            "ok": True,
            "results": [render(item) for item in results],
            "exhausted": session.exhausted,
        }

    def _peek(self, request: dict) -> dict:
        session, error = self._session_of(request)
        if session is None:
            return error
        item = session.peek()
        render = self._renderer(request)
        return {
            "ok": True,
            "result": None if item is None else render(item),
            "exhausted": session.exhausted,
        }

    def _close(self, request: dict) -> dict:
        session, error = self._session_of(request)
        if session is None:
            return error
        session.close()
        del self._sessions[request["session"]]
        self._ranked_sessions.discard(request["session"])
        self._padded_sessions.discard(request["session"])
        self._session_engines.pop(request["session"], None)
        self._m_sessions.set(len(self._sessions))
        return {"ok": True}

    def _read_only_refusal(self, op: str) -> dict:
        return {
            "ok": False,
            "error": f"{op} refused: this replica is read-only (follower mode)",
            "read_only": True,
        }

    def _record_durable(self, kind: str, ops) -> None:
        """Log an *applied* batch, then maybe snapshot.

        Ordering is the durability contract: the maintainer validates
        before mutating, so only batches that really changed the database
        reach the WAL — the log is always a prefix of the applied history,
        and a crash between apply and append loses only a never-acked
        batch.  The snapshot check runs after the cache maintenance the
        caller already performed, so a cadence-triggered snapshot captures
        the post-mutation cache state.
        """
        if self.store is None or self.store.closed:
            return
        self.store.record(kind, ops, database_generation(self.database))
        self.store.maybe_snapshot(self)

    def _ingest(self, request: dict) -> dict:
        if self.read_only:
            return self._read_only_refusal("ingest")
        received = time.monotonic()
        tuples = request.get("tuples", [])
        try:
            arrivals = [arrival_from_wire(entry) for entry in tuples]
        except CodecError as error:
            return {"ok": False, "error": str(error)}
        record = self.maintainer.ingest(arrivals)
        # Ingest lag: receipt of the batch to the maintainer having applied
        # it — the freshness bound a reader of the live stream observes.
        self._m_ingest_lag.set(time.monotonic() - received)
        # Eagerly kill cached fd/approx logs of the old generation: an open
        # session straddling the ingest must fail fast ("reopen the query")
        # on its next deep pull, not stream from a generator that now
        # observes the mutated database.  Stream sessions live on — the
        # delta results were just appended to their log.
        invalidated = self.cache.invalidate(self.database)
        self._record_durable("ingest", arrivals)
        return {
            "ok": True,
            "applied": record["arrivals"],
            "new_results": record["results_emitted"],
            "candidates_generated": record["candidates_generated"],
            "invalidated_queries": invalidated,
        }

    def _retract(self, request: dict) -> dict:
        if self.read_only:
            return self._read_only_refusal("retract")
        entries = request.get("tuples", [])
        try:
            removals = [removal_from_wire(entry) for entry in entries]
        except CodecError as error:
            return {"ok": False, "error": str(error)}
        try:
            record = self.maintainer.remove(removals)
        except (DatabaseError, RelationError, ValueError) as error:
            # A bad target is the client's error; the batch was validated
            # before anything was tombstoned, so nothing changed.
            return {"ok": False, "error": str(error)}
        # Unlike ingest, a deletion *revalidates* the cache: entries whose
        # materialized prefix holds no deleted tuple are re-keyed under the
        # new generation and keep serving; only touched entries die.
        outcome = self.cache.revalidate(self.database)
        self._record_durable("retract", removals)
        return {
            "ok": True,
            "applied": record["removals"],
            "retracted": record["results_retracted"],
            "new_results": record["results_emitted"],
            "revalidated_queries": outcome["revalidated"],
            "invalidated_queries": outcome["invalidated"],
        }

    def _update(self, request: dict) -> dict:
        if self.read_only:
            return self._read_only_refusal("update")
        entries = request.get("tuples", [])
        try:
            updates = [update_from_wire(entry) for entry in entries]
        except CodecError as error:
            return {"ok": False, "error": str(error)}
        try:
            record = self.maintainer.update(updates)
        except (DatabaseError, RelationError, SchemaError, ValueError) as error:
            return {"ok": False, "error": str(error)}
        # Updates append fresh tuples, so no cached prefix can revalidate;
        # revalidate() degrades to the eager invalidation ingest uses.
        outcome = self.cache.revalidate(self.database)
        self._record_durable("update", updates)
        return {
            "ok": True,
            "applied": record["updates"],
            "retracted": record["results_retracted"],
            "new_results": record["results_emitted"],
            "revalidated_queries": outcome["revalidated"],
            "invalidated_queries": outcome["invalidated"],
        }

    def _snapshot_op(self, request: dict) -> dict:
        """The ``snapshot`` admin op: force a snapshot right now."""
        if self.read_only:
            return self._read_only_refusal("snapshot")
        if self.store is None:
            return {
                "ok": False,
                "error": (
                    "durability is not enabled on this server "
                    "(start it with --data-dir)"
                ),
            }
        return {"ok": True, **self.store.snapshot_now(self)}

    # ------------------------------------------------------------------ #
    # durable state (storage-layer snapshot/restore hooks)
    # ------------------------------------------------------------------ #
    def durable_state(self) -> dict:
        """Everything a snapshot captures about this server.

        The database (gid-stable), the maintainer's emitted stream and
        accumulated store, and every persistable cached prefix together
        with the wire request that opened it — enough for
        :func:`restore_server` to rebuild a server whose streams are
        byte-identical to this one's.
        """
        return {
            "use_index": self.use_index,
            "database": self.database.snapshot_state(),
            "maintainer": self.maintainer.durable_log(),
            "cached": self._cached_prefixes(),
        }

    def _cached_prefixes(self) -> List[dict]:
        """The persistable cached prefixes: request + gid-named results."""
        catalog = self.database.catalog()
        prefixes: List[dict] = []
        for request in self._persistable_opens.values():
            plan, _ = self._query_plan(request)
            if plan is None:  # pragma: no cover - a request that opened once
                continue  # cannot stop planning, but stay defensive
            log = self.cache.entry_log(
                self.database, plan["cache_engine"], **plan["options"]
            )
            if log is None:
                continue
            items: List[dict] = []
            serializable = True
            for item in log.results:
                ranked = isinstance(item, tuple)
                tuple_set = item[0] if ranked else item
                gids = [catalog.id_of(t) for t in tuple_set]
                if any(gid is None for gid in gids):
                    serializable = False  # pragma: no cover - uncatalogued
                    break
                record = {"gids": sorted(gids)}
                if ranked:
                    record["score"] = item[1]
                items.append(record)
            if not serializable:
                continue  # pragma: no cover
            prefixes.append(
                {"request": request, "items": items, "complete": log.complete}
            )
        return prefixes

    def _install_cached_prefix(self, cached: dict) -> None:
        """Re-install one persisted prefix into the cache (recovery path)."""
        request = cached.get("request", {})
        plan, _ = self._query_plan(request)
        if plan is None:
            return
        catalog = self.database.catalog()
        items: List[object] = []
        for record in cached.get("items", []):
            tuple_set = TupleSet(
                [catalog.tuple_at(gid) for gid in record["gids"]], catalog=catalog
            )
            items.append(
                (tuple_set, record["score"]) if "score" in record else tuple_set
            )
        installed = self.cache.install(
            self.database,
            plan["cache_engine"],
            items=items,
            complete=bool(cached.get("complete")),
            **plan["options"],
        )
        if installed:
            self._remember_open(dict(request, op="open"))

    def shutdown(self) -> None:
        """Graceful teardown: final snapshot, WAL flushed, live log sealed.

        Safe to call twice (signal handler plus ``finally`` block).  The
        snapshot runs before the maintainer closes so the persisted live
        log is the serving one; open stream sessions then observe a
        completed stream rather than a dropped connection.
        """
        if self.store is not None and not self.store.closed:
            if not self.read_only:
                self.store.snapshot_now(self)
            self.store.close()
        if not self.maintainer.log.closed:
            self.maintainer.close()

    # ------------------------------------------------------------------ #
    # the TCP face
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Sessions opened over this connection, released on teardown: a
        # client that drops the socket without sending `close` must not leak
        # its sessions in a long-running server.
        connection_sessions: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    # Server shutdown with the connection still open: end the
                    # handler normally so asyncio's stream teardown does not
                    # log the cancellation as a task crash.
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    response = {"ok": False, "error": f"bad JSON: {error}"}
                else:
                    try:
                        response = await self.handle_request(
                            request, connection_sessions
                        )
                    except Exception as error:  # serve errors, don't die
                        response = {"ok": False, "error": str(error)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            for name in connection_sessions:
                session = self._sessions.pop(name, None)
                self._ranked_sessions.discard(name)
                self._padded_sessions.discard(name)
                self._session_engines.pop(name, None)
                if session is not None:
                    session.close()
            self._m_sessions.set(len(self._sessions))
            writer.close()
            # Swallow cancellation too: when the server is closed while this
            # handler still awaits, ending the coroutine normally (we are
            # done anyway) keeps asyncio's stream teardown from logging a
            # spurious CancelledError traceback.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):  # pragma: no cover
                pass


def server_stats(state: QueryServer) -> dict:
    """The one shared shape of a server's self-description.

    Both consumers — the ``stats`` wire op and ``run_server``'s smoke
    summary — build on this, so a field added here shows up in both and
    the two can't drift.
    """
    from repro.core.kernels import active_kernel

    stats = {
        "cache": state.cache.stats(),
        "sessions": len(state._sessions),
        "requests": state.requests,
        "steps": dict(state.backend.steps),
        "kernel": active_kernel().name,
        "arrivals_applied": state.maintainer.arrivals_applied,
        "mutations_applied": state.maintainer.mutations_applied,
        "epoch": state.database.epoch,
        "read_only": state.read_only,
        "uptime_seconds": time.monotonic() - state.started_at,
    }
    if state.store is not None:
        stats["durability"] = state.store.stats()
    return stats


# ---------------------------------------------------------------------- #
# crash recovery: snapshot + WAL tail → an equivalent server
# ---------------------------------------------------------------------- #
def apply_wal_record(state: QueryServer, payload: dict) -> None:
    """Apply one decoded WAL record to ``state`` as the live path would.

    Shared by owner-side replay (:func:`open_durable_server`) and the
    follower tailer: the batch goes through the same maintainer entry
    points and the same cache maintenance as a wire mutation, then the
    database's generation token is asserted against the one the primary
    recorded *after* applying — divergence fails fast as a
    :class:`~repro.storage.store.RecoveryError` instead of silently
    serving wrong streams.
    """
    kind = payload.get("kind")
    ops = decode_ops(payload.get("ops", []))
    if kind == "ingest":
        state.maintainer.ingest(ops)
        state.cache.invalidate(state.database)
    elif kind == "retract":
        state.maintainer.remove(ops)
        state.cache.revalidate(state.database)
    elif kind == "update":
        state.maintainer.update(ops)
        state.cache.revalidate(state.database)
    else:
        raise RecoveryError(f"unknown WAL record kind {kind!r}")
    expected = payload.get("generation")
    actual = list(database_generation(state.database))
    if expected is not None and list(expected) != actual:
        raise RecoveryError(
            f"replay diverged: WAL record expects generation {expected}, "
            f"replayed database is at {actual}"
        )


def restore_server(
    snapshot: dict,
    registry: Optional[MetricsRegistry] = None,
    read_only: bool = False,
) -> QueryServer:
    """Rebuild a :class:`QueryServer` from a snapshot document.

    The inverse of :meth:`QueryServer.durable_state`: database (gid-stable),
    maintainer stream/store, and every persisted cached prefix — installed
    *before* any WAL-tail replay, so the cache keys carry the snapshot's
    generation and replay maintains them exactly as live mutations would.
    """
    database = Database.restore_state(snapshot["database"])
    state = QueryServer(
        database,
        use_index=bool(snapshot.get("use_index", True)),
        registry=registry,
        read_only=read_only,
    )
    state.maintainer.restore_durable_log(snapshot.get("maintainer"))
    for cached in snapshot.get("cached", []):
        state._install_cached_prefix(cached)
    return state


def open_durable_server(
    database: Optional[Database],
    data_dir: str,
    use_index: bool = True,
    registry: Optional[MetricsRegistry] = None,
    snapshot_every: Optional[int] = DEFAULT_SNAPSHOT_EVERY,
    fsync_every: int = DEFAULT_FSYNC_EVERY,
) -> QueryServer:
    """Open a durable server on ``data_dir``, recovering if state exists.

    Fresh directory: serve ``database`` and write a bootstrap snapshot so
    a crash before the first cadence snapshot still recovers.  Existing
    snapshot: ignore ``database`` (the directory is authoritative), load
    the latest valid snapshot, recover the WAL (truncating any torn tail),
    and replay every record past the snapshot's ``wal_offset`` through
    :func:`apply_wal_record`.  The recovered server is then attached to a
    fresh appender on the same WAL and serves exactly as if it had never
    crashed.
    """
    loaded = load_latest_snapshot(data_dir)
    wal_path = os.path.join(data_dir, WAL_NAME)
    if loaded is None:
        records, good_end, _ = recover_wal(wal_path)
        if records or good_end:
            raise RecoveryError(
                f"{data_dir} has a WAL but no readable snapshot; refusing to "
                "guess at the pre-WAL state"
            )
        if database is None:
            raise RecoveryError(
                f"{data_dir} holds no recoverable state and no database "
                "was supplied to bootstrap one"
            )
        store = DurableStore(
            data_dir,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
            registry=registry,
        )
        state = QueryServer(
            database, use_index=use_index, registry=registry, store=store
        )
        # Bootstrap snapshot: the base state every later WAL record builds
        # on.  Without it, a crash before the first cadence snapshot would
        # leave a WAL whose starting point exists nowhere on disk.
        store.snapshot_now(state)
        store.recovery_info = {"recovered": False}
        return state

    snapshot, snapshot_path = loaded
    records, good_end, truncated = recover_wal(wal_path)
    wal_offset = int(snapshot.get("wal_offset", 0))
    if good_end < wal_offset:
        raise RecoveryError(
            f"WAL ends at {good_end} but snapshot "
            f"{os.path.basename(snapshot_path)} is consistent with offset "
            f"{wal_offset}; the log was truncated beneath its snapshot"
        )
    state = restore_server(snapshot, registry=registry)
    tail = [(payload, end) for payload, end in records if end > wal_offset]
    for payload, _ in tail:
        apply_wal_record(state, payload)
    store = DurableStore(
        data_dir,
        fsync_every=fsync_every,
        snapshot_every=snapshot_every,
        registry=registry,
    )
    store.ops_since_snapshot = len(tail)
    store.recovery_info = {
        "recovered": True,
        "snapshot": os.path.basename(snapshot_path),
        "replayed_records": len(tail),
        "truncated_bytes": truncated,
    }
    state.store = store
    return state


async def start_server(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    use_index: bool = True,
    state: Optional[QueryServer] = None,
) -> TupleType[asyncio.AbstractServer, QueryServer, int]:
    """Start serving; returns ``(asyncio server, state, bound port)``.

    ``port=0`` binds an ephemeral port — the smoke harness and tests use
    this to avoid collisions.  Pass ``state`` to serve a prepared server —
    a recovered one from :func:`open_durable_server`, or a read-only
    follower — instead of a fresh in-memory ``QueryServer``.
    """
    if state is None:
        state = QueryServer(database, use_index=use_index)
    server = await asyncio.start_server(state.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    return server, state, bound_port


# ---------------------------------------------------------------------- #
# client helpers (used by tests, the smoke harness and examples)
# ---------------------------------------------------------------------- #
async def client_call(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, request: dict
) -> dict:
    """One request/response round trip on an open connection."""
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


async def fetch_first_k(
    host: str, port: int, k: Optional[int], engine: str = "fd", chunk: int = 4, **opts
) -> List[List[str]]:
    """A complete client: open, pull ``k`` results chunk by chunk, close.

    ``k=None`` drains the stream.  Pulling in chunks (rather than one big
    ``next``) is what actually exercises pause/resume over the wire.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        opened = await client_call(
            reader, writer, {"op": "open", "engine": engine, **opts}
        )
        if not opened.get("ok"):
            raise RuntimeError(opened.get("error", "open failed"))
        session = opened["session"]
        results: List[List[str]] = []
        while k is None or len(results) < k:
            want = chunk if k is None else min(chunk, k - len(results))
            reply = await client_call(
                reader, writer, {"op": "next", "session": session, "k": want}
            )
            if not reply.get("ok"):
                raise RuntimeError(reply.get("error", "next failed"))
            results.extend(reply["results"])
            if len(reply["results"]) < want:
                break
        await client_call(reader, writer, {"op": "close", "session": session})
        return results
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def smoke_importance_map(database: Database) -> Dict[str, float]:
    """A deterministic ``{label: importance}`` map over a served database.

    Label-derived (not random, not stored): the ranked smoke harness sends
    it over the wire and recomputes the reference ranking in-process, so
    both sides must agree on it without sharing state.  The modulus keeps
    values small and forces score ties.
    """
    return {
        t.label: float(sum(ord(ch) for ch in t.label) % 7)
        for t in database.tuples()
    }


async def _smoke(
    database: Database, clients: int, k: Optional[int], use_index: bool, **opts
) -> dict:
    server, state, port = await start_server(database, use_index=use_index)
    try:
        per_client = await asyncio.gather(
            *(
                fetch_first_k("127.0.0.1", port, k, chunk=3, **opts)
                for _ in range(clients)
            )
        )
    finally:
        server.close()
        await server.wait_closed()
    return {"per_client": per_client, **server_stats(state)}


def run_smoke(
    database: Database,
    clients: int = 4,
    k: Optional[int] = None,
    use_index: bool = True,
    engine: str = "fd",
) -> dict:
    """Start a server, run concurrent clients, assert parity with serial.

    The end-to-end check behind ``repro serve --smoke-clients`` and the CI
    serving job: every client must receive exactly the serial engine's
    result sequence (label lists for ``engine="fd"``; label-plus-score
    objects, scores included, for ``engine="ranked"``), and all clients but
    the first must have hit the shared prefix cache.  Raises
    ``AssertionError`` on any mismatch; returns the summary dict on success.
    """
    opts: dict = {"engine": engine}
    if engine == "ranked":
        from repro.core.priority import priority_incremental_fd

        importance = smoke_importance_map(database)
        opts["importance"] = importance
        serial: List[object] = []
        for tuple_set, score in priority_incremental_fd(
            database, MaxRanking(importance), use_index=use_index
        ):
            if k is not None and len(serial) >= k:
                break
            serial.append(
                {"labels": sorted(t.label for t in tuple_set), "score": score}
            )
    elif engine == "fd":
        from repro.core.full_disjunction import full_disjunction_sets

        serial = []
        for tuple_set in full_disjunction_sets(database, use_index=use_index):
            if k is not None and len(serial) >= k:
                break
            serial.append(sorted(t.label for t in tuple_set))
    else:
        raise ValueError(f"run_smoke supports engines 'fd' and 'ranked', not {engine!r}")

    outcome = asyncio.run(_smoke(database, clients, k, use_index, **opts))
    for index, received in enumerate(outcome["per_client"]):
        assert received == serial, (
            f"client {index} diverged from the serial run: "
            f"{len(received)} vs {len(serial)} results"
        )
    cache = outcome["cache"]
    assert cache["misses"] >= 1
    assert cache["hits"] >= clients - 1, f"expected shared prefixes: {cache}"
    outcome["results_per_client"] = len(serial)
    outcome["clients"] = clients
    outcome["engine"] = engine
    return outcome
