"""The serving layer: long-lived, resumable query sessions over the engines.

The paper's algorithm is an *iterator* — ``GetNextResult`` hands out the next
answer on demand — but a reproduction that can only run a driver start to
finish wastes that shape.  This package turns the engines into a service:

:mod:`repro.service.session`
    :class:`~repro.service.session.QuerySession` — a pausable first-k cursor
    over any driver (fd / priority / approx / ranked-approx), backed by a
    shared append-only :class:`~repro.service.session.ResultLog` so pausing,
    resuming, forking and replaying never recompute an already-emitted
    prefix.
:mod:`repro.service.cache`
    :class:`~repro.service.cache.PrefixCache` — an LRU of result logs keyed
    by (database generation, engine, options) so identical queries from
    different clients share one computation; the append-only catalog's
    generation counter is the invalidation token.
:mod:`repro.service.delta`
    :class:`~repro.service.delta.StreamingFullDisjunction` — incremental
    maintenance under streaming ingest: each arrival seeds only its own
    singleton into a live pass against the accumulated ``Complete`` store
    (with a ``ranking``, only its own size-≤c subsets into the live priority
    queues), so per-arrival work is proportional to the delta and open
    sessions observe new results without restarting.
:mod:`repro.service.server`
    An asyncio JSON-lines TCP server (``repro serve``) driving sessions for
    many concurrent clients through the ``async`` execution backend; a
    ranked ``open`` validates its wire importance map and ships scores with
    every answer.
:mod:`repro.service.sharding`
    The scale-out face: shard processes each running a full ``QueryServer``
    replica, a router that places sessions by consistent hash of the query's
    cache key (``repro serve --shards N``), broadcast mutations, and
    admission control with ``busy`` backpressure responses plus per-shard
    gauges in ``stats``.
"""

from repro.service.session import (
    ENGINES,
    QuerySession,
    ResultLog,
    Retraction,
    StaleResultLog,
    open_session,
)
from repro.service.cache import PrefixCache, database_generation
from repro.service.delta import (
    DeltaSummary,
    StreamingFullDisjunction,
    incremental_replay_stream,
)

__all__ = [
    "ENGINES",
    "QuerySession",
    "ResultLog",
    "Retraction",
    "StaleResultLog",
    "open_session",
    "PrefixCache",
    "database_generation",
    "DeltaSummary",
    "StreamingFullDisjunction",
    "incremental_replay_stream",
]
