"""repro — a reproduction of *An Incremental Algorithm for Computing Ranked Full Disjunctions*.

The **full disjunction** ``FD(R)`` of a set of connected relations maximally
combines join-consistent tuples while preserving all information — the
associative, n-ary generalisation of the outerjoin that information
integration needs.  This library reproduces Cohen & Sagiv (PODS 2005 / JCSS
2007): the incremental algorithm ``IncrementalFD``, its ranked variant
``PriorityIncrementalFD`` and its approximate variant ``ApproxIncrementalFD``,
together with the relational substrate, the baselines the paper compares
against and the workloads/benchmarks that validate the paper's claims.

Quick start::

    from repro import Database, Relation, FullDisjunction

    climates = Relation.from_rows("Climates", ["Country", "Climate"],
                                  [["Canada", "diverse"], ["UK", "temperate"]])
    hotels = Relation.from_rows("Hotels", ["Country", "Hotel"],
                                [["Canada", "Plaza"], ["Bahamas", "Hilton"]])
    fd = FullDisjunction(Database([climates, hotels]))
    for tuple_set in fd:          # streamed, one result at a time
        print(tuple_set)

See ``examples/`` for ranked retrieval (top-k), approximate integration and
block-based execution.
"""

from repro.relational import (
    NULL,
    Null,
    is_null,
    Schema,
    Tuple,
    Relation,
    Database,
    ReproError,
    SchemaError,
    RelationError,
    DatabaseError,
    CSVFormatError,
)
from repro.core import (
    TupleSet,
    jcc,
    FDStatistics,
    incremental_fd,
    full_disjunction,
    full_disjunction_sets,
    first_k,
    FullDisjunction,
    trace_incremental_fd,
    format_trace,
    MaxRanking,
    SumRanking,
    CDeterminedRanking,
    RankingFunction,
    priority_incremental_fd,
    top_k,
    above_threshold,
    MinJoin,
    ProductJoin,
    ExactJoin,
    ExactMatchSimilarity,
    EditDistanceSimilarity,
    TableSimilarity,
    SimilarityFunction,
    ApproximateJoinFunction,
    approx_incremental_fd,
    approx_full_disjunction,
    ApproximateFullDisjunction,
    ranked_approx_full_disjunction,
    approx_top_k,
    block_based_full_disjunction,
    compare_block_sizes,
)
from repro.service import (
    QuerySession,
    open_session,
    PrefixCache,
    StreamingFullDisjunction,
    incremental_replay_stream,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "NULL",
    "Null",
    "is_null",
    "Schema",
    "Tuple",
    "Relation",
    "Database",
    "ReproError",
    "SchemaError",
    "RelationError",
    "DatabaseError",
    "CSVFormatError",
    # core algorithms
    "TupleSet",
    "jcc",
    "FDStatistics",
    "incremental_fd",
    "full_disjunction",
    "full_disjunction_sets",
    "first_k",
    "FullDisjunction",
    "trace_incremental_fd",
    "format_trace",
    # ranking
    "RankingFunction",
    "MaxRanking",
    "SumRanking",
    "CDeterminedRanking",
    "priority_incremental_fd",
    "top_k",
    "above_threshold",
    # approximate
    "SimilarityFunction",
    "ExactMatchSimilarity",
    "EditDistanceSimilarity",
    "TableSimilarity",
    "ApproximateJoinFunction",
    "MinJoin",
    "ProductJoin",
    "ExactJoin",
    "approx_incremental_fd",
    "approx_full_disjunction",
    "ApproximateFullDisjunction",
    "ranked_approx_full_disjunction",
    "approx_top_k",
    # execution variants
    "block_based_full_disjunction",
    "compare_block_sizes",
    # serving layer
    "QuerySession",
    "open_session",
    "PrefixCache",
    "StreamingFullDisjunction",
    "incremental_replay_stream",
]
