"""Reporting used by every benchmark: aligned text tables + JSON artifacts.

Each benchmark regenerates one of the experiments listed in DESIGN.md and
prints its rows in a uniform aligned-table format so that EXPERIMENTS.md can
quote the output directly.  Alongside the text, every reported table is
recorded into a machine-readable ``BENCH_<EXPERIMENT>.json`` artifact
(:class:`BenchArtifacts`), so the performance trajectory across commits can
be diffed and plotted instead of eyeballed — CI uploads the artifact
directory from its smoke runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

# Re-exported for the benchmark tables; the implementation lives next to its
# producer, record_store_statistics.
from repro.core.store import probe_counters  # noqa: F401


class Table:
    """A simple accumulating text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append([_render(cell) for cell in cells])

    def render(self) -> str:
        return format_table(self.title, self.headers, self.rows)

    def show(self) -> None:
        print()
        print(self.render())


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (abs(cell) < 0.001 and cell != 0):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Format a titled, aligned text table."""
    rows = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[index]) for index, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a titled table built from raw (unrendered) rows."""
    table = Table(title, headers)
    for row in rows:
        table.add_row(*row)
    table.show()


def time_call(function: Callable[[], object]) -> Tuple[object, float]:
    """Run ``function`` once and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size in bytes (``None`` off-POSIX).

    On Linux this reads ``VmHWM`` — the high-water mark of this process's
    *own* address space.  ``ru_maxrss`` would be wrong in a subprocess:
    Linux never resets it across ``exec``, so a child forked from a fat
    parent inherits the parent's mark.  Elsewhere ``ru_maxrss`` is used
    (kibibytes on Linux, bytes on macOS), normalised to bytes so benchmark
    assertions can state budgets portably.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw if sys.platform == "darwin" else raw * 1024


# --------------------------------------------------------------------------- #
# machine-readable artifacts
# --------------------------------------------------------------------------- #

def experiment_id(module_name: str) -> str:
    """The experiment tag of a benchmark module: ``bench_e6_indexing`` → ``E6``.

    Modules outside the naming convention fall back to their own upper-cased
    name, so every table lands in *some* artifact.
    """
    match = re.match(r"(?:.*\.)?bench_([a-z]+\d+[a-z]?)_", module_name)
    if match:
        return match.group(1).upper()
    return module_name.rpartition(".")[2].upper()


def _json_cell(cell: object) -> object:
    """A JSON-serializable rendering of one table cell (numbers stay numbers)."""
    if cell is None or isinstance(cell, (bool, int, float)):
        return cell
    return str(cell)


class BenchArtifacts:
    """Accumulates reported tables into per-experiment JSON files.

    One artifact per experiment — ``BENCH_E6.json`` holds every table the E6
    module reported this session::

        {"experiment": "E6", "schema_version": 1,
         "tables": [{"title": ..., "headers": [...], "rows": [[...], ...]}],
         "memory": [{"label": ..., "peak_rss_bytes": ..., ...}]}

    The ``memory`` list (present only when something was recorded) carries
    machine-checkable memory measurements — peak RSS, allocated bytes, the
    budget they were asserted against — so artifact diffing can flag memory
    regressions the same way it flags timing ones.

    ``record``/``record_memory`` rewrite the file after every entry, so a
    crashed or interrupted benchmark session still leaves what it completed.
    """

    SCHEMA_VERSION = 1

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        self._tables: dict = {}
        self._memory: dict = {}

    def reset(self) -> None:
        """Start a fresh session: drop recorded state and stale artifact files."""
        self._tables.clear()
        self._memory.clear()
        if self.directory.exists():
            for stale in self.directory.glob("BENCH_*.json"):
                stale.unlink()

    def path_for(self, experiment: str) -> pathlib.Path:
        return self.directory / f"BENCH_{experiment}.json"

    def _write(self, experiment: str) -> pathlib.Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(experiment)
        payload = {
            "experiment": experiment,
            "schema_version": self.SCHEMA_VERSION,
            "tables": self._tables.get(experiment, []),
        }
        if self._memory.get(experiment):
            payload["memory"] = self._memory[experiment]
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
        return path

    def record(
        self,
        experiment: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> pathlib.Path:
        """Record one table and rewrite the experiment's artifact file."""
        table = {
            "title": str(title),
            "headers": [str(h) for h in headers],
            "rows": [[_json_cell(cell) for cell in row] for row in rows],
        }
        self._tables.setdefault(experiment, []).append(table)
        return self._write(experiment)

    def record_memory(
        self,
        experiment: str,
        label: str,
        peak_rss_bytes: Optional[int],
        allocated_bytes: Optional[int] = None,
        budget_bytes: Optional[int] = None,
    ) -> pathlib.Path:
        """Record one memory measurement into the experiment's artifact."""
        entry = {"label": str(label), "peak_rss_bytes": peak_rss_bytes}
        if allocated_bytes is not None:
            entry["allocated_bytes"] = int(allocated_bytes)
        if budget_bytes is not None:
            entry["budget_bytes"] = int(budget_bytes)
        self._memory.setdefault(experiment, []).append(entry)
        return self._write(experiment)




#: Backend sweep used by the E1/E6 execution-backend axes.
DEFAULT_BENCH_BACKENDS = ("serial", "batched", "sharded:2")


def backends_under_test() -> List[str]:
    """Backend specs the benchmarks sweep over.

    Defaults to serial, batched and 2-worker sharded; override with a
    comma-separated ``REPRO_BENCH_BACKENDS`` (the CI smoke job restricts the
    sweep to ``batched,sharded:2``).
    """
    raw = os.environ.get("REPRO_BENCH_BACKENDS", "")
    specs = [spec.strip() for spec in raw.split(",") if spec.strip()]
    return specs or list(DEFAULT_BENCH_BACKENDS)


#: Column headers matching the rows of :func:`backend_sweep_rows`.
BACKEND_SWEEP_HEADERS = (
    "workload",
    "backend",
    "|FD|",
    "wall time (s)",
    "vs serial",
    "bucket probes",
    "full scans",
)


def backend_sweep_rows(database, label: str, use_index: bool = True) -> List[list]:
    """One backend-axis sweep: run the full driver per backend, assert parity.

    The serial baseline always runs first (even when excluded from
    ``REPRO_BENCH_BACKENDS``) so the ``vs serial`` column is meaningful, and
    every backend's result *set* is asserted identical to it.  Timing is the
    best of two runs — at smoke scale the schedules differ by milliseconds,
    so a single sample is mostly process-start noise.
    """
    from repro.core.full_disjunction import full_disjunction
    from repro.core.incremental import FDStatistics

    database.catalog()  # shared build; not charged to any one backend
    rows: List[list] = []
    reference = None
    serial_seconds = None
    for spec in ["serial"] + [s for s in backends_under_test() if s != "serial"]:
        statistics = FDStatistics()
        results, seconds = time_call(
            lambda: full_disjunction(
                database, use_index=use_index, statistics=statistics, backend=spec
            )
        )
        _, second_run = time_call(
            lambda: full_disjunction(database, use_index=use_index, backend=spec)
        )
        seconds = min(seconds, second_run)
        produced = {ts.labels() for ts in results}
        if reference is None:
            reference = produced
            serial_seconds = seconds
        assert produced == reference, f"backend {spec} changed the result set"
        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                label,
                spec,
                len(results),
                f"{seconds:.3f}",
                f"{serial_seconds / seconds:.2f}x",
                bucket_probes,
                full_scans,
            ]
        )
    return rows
