"""Plain-text reporting used by every benchmark.

Each benchmark regenerates one of the experiments listed in DESIGN.md and
prints its rows in a uniform aligned-table format so that EXPERIMENTS.md can
quote the output directly.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


class Table:
    """A simple accumulating text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append([_render(cell) for cell in cells])

    def render(self) -> str:
        return format_table(self.title, self.headers, self.rows)

    def show(self) -> None:
        print()
        print(self.render())


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (abs(cell) < 0.001 and cell != 0):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Format a titled, aligned text table."""
    rows = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[index]) for index, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a titled table built from raw (unrendered) rows."""
    table = Table(title, headers)
    for row in rows:
        table.add_row(*row)
    table.show()


def time_call(function: Callable[[], object]) -> Tuple[object, float]:
    """Run ``function`` once and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started
