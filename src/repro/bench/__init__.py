"""Shared helpers for the benchmark harness under ``benchmarks/``."""

from repro.bench.reporting import Table, format_table, print_table, time_call

__all__ = ["Table", "format_table", "print_table", "time_call"]
