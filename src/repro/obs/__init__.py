"""Dependency-free observability: metrics, phase tracing, HTTP exposition.

``repro.obs`` is the substrate the serving stack instruments itself with:

- :mod:`repro.obs.metrics` — counters / gauges / log-bucketed histograms in
  a :class:`MetricsRegistry`, rendered as Prometheus text or shipped as
  mergeable snapshots (how the sharded router aggregates shard registries).
  ``REPRO_METRICS=off`` swaps every series for a shared no-op.
- :mod:`repro.obs.tracing` — a :class:`PhaseTracer` of complete spans
  (engine init, passes, bucket ranges, store probes, cache revalidation,
  delta apply) dumped as Chrome-trace-event JSON for Perfetto.
- :mod:`repro.obs.http` — the asyncio ``/metrics`` + ``/health`` sidecar.

The durable storage layer (PR 9) exports its series through the same
registry: the WAL's ``repro_wal_records_total`` / ``repro_wal_bytes_total``
/ ``repro_wal_fsyncs_total`` (group commits), the snapshot writer's
``repro_snapshots_total`` / ``repro_snapshot_seconds`` /
``repro_snapshot_wal_offset``, and the follower tailer's
``repro_replication_lag_seconds`` / ``repro_replication_records_total`` /
``repro_replication_offset_bytes`` — so one ``/metrics`` scrape covers
serving, durability, and replication health together.
"""

from repro.obs.http import MetricsSidecar, start_sidecar
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    get_registry,
    labeled_snapshot,
    merge_snapshots,
    metrics_enabled,
    render_snapshot,
    set_default_registry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    PhaseTracer,
    get_tracer,
    set_tracer,
    summarize_events,
    trace_instant,
    trace_span,
    use_tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSidecar",
    "NULL_METRIC",
    "NULL_SPAN",
    "PhaseTracer",
    "get_registry",
    "get_tracer",
    "labeled_snapshot",
    "merge_snapshots",
    "metrics_enabled",
    "render_snapshot",
    "set_default_registry",
    "set_tracer",
    "start_sidecar",
    "summarize_events",
    "trace_instant",
    "trace_span",
    "use_tracer",
]
