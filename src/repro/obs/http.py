"""A minimal stdlib-asyncio HTTP sidecar for ``/metrics`` and ``/health``.

The serving protocol is JSON-lines over TCP; scrapers and load balancers
speak HTTP.  Rather than pulling in a web framework, this module serves the
two read-only observability endpoints with ``asyncio.start_server`` and a
hand-rolled HTTP/1.0 response — sufficient for Prometheus (which sends a
plain ``GET /metrics``) and for ``curl``-based health checks, and zero new
dependencies.

The sidecar is handed two callables at startup:

- ``metrics()`` → the Prometheus text page (``text/plain; version=0.0.4``)
- ``health()`` → a JSON-serializable dict (``application/json``, 200)

Either may be a coroutine function — the sharded router's callbacks fan out
to shard processes, so they must await.  Callback exceptions become a 500
with the error message in the body rather than a dropped connection: a
scraper seeing a 500 is a *signal*; a reset is a mystery.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from typing import Awaitable, Callable, Optional, Union

_MetricsFn = Callable[[], Union[str, Awaitable[str]]]
_HealthFn = Callable[[], Union[dict, Awaitable[dict]]]

_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 500: "Internal Server Error"}


def _response(status: int, content_type: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


async def _call(fn):
    result = fn()
    if inspect.isawaitable(result):
        result = await result
    return result


class MetricsSidecar:
    """The ``/metrics`` + ``/health`` HTTP listener beside a query server."""

    def __init__(self, metrics: _MetricsFn, health: _HealthFn):
        self._metrics = metrics
        self._health = health
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        assert self._server is not None, "sidecar not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "MetricsSidecar":
        self._server = await asyncio.start_server(self._handle, host, port)
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers up to the blank line; we route on the path alone.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            writer.write(await self._route(request_line))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(self, request_line: bytes) -> bytes:
        try:
            method, path, _ = request_line.decode("ascii", "replace").split(None, 2)
        except ValueError:
            return _response(404, "text/plain", "bad request\n")
        path = path.split("?", 1)[0]
        if method not in ("GET", "HEAD"):
            return _response(405, "text/plain", "method not allowed\n")
        try:
            if path == "/metrics":
                body = await _call(self._metrics)
                return _response(
                    200, "text/plain; version=0.0.4; charset=utf-8", body
                )
            if path == "/health":
                body = await _call(self._health)
                return _response(
                    200, "application/json", json.dumps(body) + "\n"
                )
        except Exception as error:  # surface callback failures as a 500
            return _response(500, "text/plain", f"{type(error).__name__}: {error}\n")
        return _response(404, "text/plain", "not found; try /metrics or /health\n")


async def start_sidecar(
    metrics: _MetricsFn,
    health: _HealthFn,
    host: str = "127.0.0.1",
    port: int = 0,
) -> MetricsSidecar:
    """Start a :class:`MetricsSidecar` and return it (``.port`` is bound)."""
    return await MetricsSidecar(metrics, health).start(host, port)
