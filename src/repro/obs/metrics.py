"""A dependency-free metrics registry with Prometheus text exposition.

The serving layer needs live series — counters, gauges, log-bucketed latency
histograms — that an operator can scrape, not snapshot dicts that vanish
between ``stats`` calls.  This module is the substrate: a
:class:`MetricsRegistry` hands out metric *families* (one per name, shared by
everyone asking for that name), each family hands out labelled children, and
the whole registry renders to the Prometheus text exposition format or to a
JSON-serializable *snapshot* that can cross a process boundary.

Snapshots are how the sharded router aggregates: each shard process ships its
registry as a snapshot over the wire (``stats {"detail": "metrics"}``), the
router stamps a ``shard`` label onto every sample (:func:`labeled_snapshot`),
merges the stamped snapshots with its own (:func:`merge_snapshots`) and
renders one page (:func:`render_snapshot`).  ``registry.render()`` is just
``render_snapshot(registry.snapshot())``.

**The off switch.**  ``REPRO_METRICS=off`` (checked when a registry is
created; ``MetricsRegistry(enabled=...)`` overrides per instance) makes every
family request return one shared :data:`NULL_METRIC` whose ``inc``/``set``/
``observe`` are no-ops — the instrumented hot paths keep their call sites but
pay only a method call.  The E15 benchmark holds the *enabled* path to ≤ 5%
overhead over this null path on identical workloads.

Histogram buckets are log-spaced by default (:data:`DEFAULT_LATENCY_BUCKETS`,
10 µs – 50 s in 1/2.5/5 decades), the right shape for latency distributions
whose tails matter: the paper's incremental-polynomial-delay guarantee is a
claim about exactly that tail.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Log-spaced latency buckets: 1/2.5/5 per decade from 10 µs to 50 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(m * 10.0**e, 10) for e in range(-5, 2) for m in (1.0, 2.5, 5.0)
)


def metrics_enabled() -> bool:
    """The process-wide default of the ``REPRO_METRICS`` switch."""
    return os.environ.get("REPRO_METRICS", "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


def _format_value(value: float) -> str:
    """A Prometheus-compatible number rendering (integers without ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Child:
    """One labelled series of a family: the object hot paths actually touch."""

    __slots__ = ("labels",)

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels):
        super().__init__(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels):
        super().__init__(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild(_Child):
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, labels, bounds: Sequence[float]):
        super().__init__(labels)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # the last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class MetricFamily:
    """All series of one metric name: type, help text, labelled children.

    Children are created on first :meth:`labels` call and cached by label
    values, so hot paths can pre-resolve a child once and touch only it.  A
    label-less family materializes its single child eagerly — a registered
    counter is visible at ``0`` before the first increment, which is what
    lets a scrape assert a series exists before traffic arrives.
    """

    kind = "untyped"
    _child_class = _Child

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._children: "Dict[Tuple[str, ...], _Child]" = {}
        if not self.labelnames:
            self.labels()

    def _make_child(self, labels: Dict[str, str]) -> _Child:
        return self._child_class(labels)

    def labels(self, **labels: object):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child(dict(zip(self.labelnames, key)))
            self._children[key] = child
        return child

    # Label-less convenience: the family proxies to its single child.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; call .labels() first"
            )
        return self.labels()

    def samples(self) -> List[dict]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": self.samples(),
        }


class Counter(MetricFamily):
    kind = "counter"
    _child_class = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value

    def samples(self) -> List[dict]:
        return [
            {"labels": dict(child.labels), "value": child.value}
            for child in self._children.values()
        ]


class Gauge(MetricFamily):
    kind = "gauge"
    _child_class = _GaugeChild

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value

    def samples(self) -> List[dict]:
        return [
            {"labels": dict(child.labels), "value": child.value}
            for child in self._children.values()
        ]


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        self.bounds = bounds
        super().__init__(name, help_text, labelnames)

    def _make_child(self, labels: Dict[str, str]) -> _HistogramChild:
        return _HistogramChild(labels, self.bounds)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def samples(self) -> List[dict]:
        out = []
        for child in self._children.values():
            cumulative = []
            running = 0
            for bound, count in zip(child.bounds, child.counts):
                running += count
                cumulative.append([bound, running])
            out.append(
                {
                    "labels": dict(child.labels),
                    "buckets": cumulative,
                    "sum": child.sum,
                    "count": child.count,
                }
            )
        return out


class _NullMetric:
    """The disabled stand-in: every op is a no-op, every child is itself."""

    kind = "null"
    value = 0.0

    def labels(self, **labels):  # noqa: ARG002 - intentionally ignored
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The shared no-op metric handed out by disabled registries.
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """A named collection of metric families, renderable and shippable.

    ``enabled=None`` follows the process-wide ``REPRO_METRICS`` switch at
    construction time.  Disabled registries hand out :data:`NULL_METRIC` for
    every request and render as empty — instrumented code never branches on
    the switch itself.

    Family getters are idempotent: asking twice for one name returns the one
    family (help/labels from the first registration), so independently
    constructed components — a server and its cache, say — share series by
    naming convention alone.  Asking for an existing name as a different
    metric type is a programming error and raises.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = metrics_enabled() if enabled is None else bool(enabled)
        self._families: "Dict[str, MetricFamily]" = {}
        self._lock = threading.Lock()

    def _get(self, factory, name: str, help_text: str, labelnames, **extra):
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory(name, help_text, labelnames, **extra)
                self._families[name] = family
            elif not isinstance(family, factory):
                raise ValueError(
                    f"metric {name!r} is already registered as a {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        return self._get(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        return self._get(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        return self._get(Histogram, name, help_text, labelnames, buckets=buckets)

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """A JSON-serializable copy of every family (wire-safe, mergeable)."""
        return {
            "families": [
                family.snapshot()
                for _, family in sorted(self._families.items())
            ]
        }

    def render(self) -> str:
        """The registry as one Prometheus text-exposition page."""
        return render_snapshot(self.snapshot())


# --------------------------------------------------------------------------- #
# snapshots: labelling, merging, rendering
# --------------------------------------------------------------------------- #
def labeled_snapshot(snapshot: dict, **labels: object) -> dict:
    """A copy of ``snapshot`` with ``labels`` stamped onto every sample.

    The router uses this to attribute each shard's series before merging:
    identical metric names from different shards stay distinct samples
    (``repro_cache_hits_total{shard="0"}`` vs ``{shard="1"}``) instead of
    silently summing.
    """
    stamped = {str(k): str(v) for k, v in labels.items()}
    families = []
    for family in snapshot.get("families", []):
        samples = []
        for sample in family.get("samples", []):
            merged = dict(sample)
            merged["labels"] = {**sample.get("labels", {}), **stamped}
            samples.append(merged)
        families.append({**family, "samples": samples})
    return {"families": families}


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Union several snapshots into one: families by name, samples concatenated.

    Type and help come from the first snapshot that carries the family.  The
    caller is responsible for keeping same-name samples distinguishable
    (stamp a ``shard`` label first — :func:`labeled_snapshot`).
    """
    by_name: "Dict[str, dict]" = {}
    order: List[str] = []
    for snapshot in snapshots:
        for family in snapshot.get("families", []):
            name = family["name"]
            existing = by_name.get(name)
            if existing is None:
                by_name[name] = {**family, "samples": list(family.get("samples", []))}
                order.append(name)
            else:
                existing["samples"].extend(family.get("samples", []))
    return {"families": [by_name[name] for name in sorted(order)]}


def _render_family(lines: List[str], family: dict) -> None:
    name = family["name"]
    lines.append(f"# HELP {name} {_escape_help(family.get('help', ''))}")
    lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
    for sample in family.get("samples", []):
        labels = sample.get("labels", {})
        if "buckets" in sample:
            for bound, cumulative in sample["buckets"]:
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{name}_bucket{_render_labels(inf_labels)} {sample['count']}"
            )
            lines.append(
                f"{name}_sum{_render_labels(labels)} {_format_value(sample['sum'])}"
            )
            lines.append(f"{name}_count{_render_labels(labels)} {sample['count']}")
        else:
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(sample['value'])}"
            )


def render_snapshot(snapshot: dict) -> str:
    """Render a snapshot (a registry's, or a merged one) as Prometheus text."""
    lines: List[str] = []
    for family in snapshot.get("families", []):
        _render_family(lines, family)
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# the process-default registry
# --------------------------------------------------------------------------- #
_DEFAULT: Optional[MetricsRegistry] = None
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-default registry (created lazily under ``REPRO_METRICS``)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = MetricsRegistry()
    return _DEFAULT


def set_default_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace the process-default registry (tests and benchmarks)."""
    global _DEFAULT
    _DEFAULT = registry
