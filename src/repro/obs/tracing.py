"""A span-based phase tracer that dumps Chrome-trace-event JSON.

Metrics answer "how often / how slow on aggregate"; the tracer answers
"where did *this* run spend its time".  A :class:`PhaseTracer` records
complete spans — named, categorized, wall-clock-bounded phases such as
engine initialization, one singleton pass, one bucket range on a sharded
worker, a store batch probe, a cache revalidation, a delta apply — and
serializes them as Chrome trace events (``ph: "X"``) that Perfetto or
``chrome://tracing`` render as a flame chart.

The instrumentation sites never hold a tracer: they call
:func:`trace_span`, which consults the process-global active tracer and
returns a shared no-op span when none is installed (the common case — the
hot path pays one function call and one ``is None`` test).  Callers that
want a trace install one around the work:

    tracer = PhaseTracer()
    with use_tracer(tracer):
        run_workload()
    tracer.dump(path)

Sharded workers are separate processes with no access to the parent's
tracer, so the worker records into its own :class:`PhaseTracer` and ships
``tracer.events()`` back with the results; the parent absorbs them via
:meth:`PhaseTracer.absorb` during the existing plan-order merge, stamping
the real worker pid so the flame chart shows true parallelism.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional


class Span:
    """One open phase; close it (or use it as a context manager) to record."""

    __slots__ = ("tracer", "name", "category", "args", "start", "_done")

    def __init__(self, tracer: "PhaseTracer", name: str, category: str, args):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start = time.perf_counter()
        self._done = False

    def annotate(self, **args: Any) -> None:
        """Attach extra key/values shown in the trace viewer's args pane."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def close(self) -> None:
        if self._done:
            return
        self._done = True
        self.tracer._record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullSpan:
    """The span handed out when no tracer is active: every op is a no-op."""

    __slots__ = ()

    def annotate(self, **args: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class PhaseTracer:
    """An append-only log of complete spans, one per recorded phase.

    Events are stored in the Chrome trace event format's units (µs since
    the tracer's epoch) so :meth:`dump` is a plain JSON write.  The tracer
    is thread-safe: the asyncio server and its sidecar share one.
    """

    def __init__(self, pid: Optional[int] = None):
        self.pid = os.getpid() if pid is None else pid
        self.epoch = time.perf_counter()
        self._events: List[dict] = []
        self._lock = threading.Lock()

    def span(self, name: str, category: str = "phase", **args: Any) -> Span:
        return Span(self, name, category, dict(args) if args else None)

    def _record(self, span: Span) -> None:
        now = time.perf_counter()
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.start - self.epoch) * 1e6,
            "dur": (now - span.start) * 1e6,
            "pid": self.pid,
            "tid": threading.get_ident() % 1_000_000,
        }
        if span.args:
            event["args"] = span.args
        with self._lock:
            self._events.append(event)

    def instant(self, name: str, category: str = "mark", **args: Any) -> None:
        """Record a zero-duration marker (``ph: "i"``)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "p",
            "ts": (time.perf_counter() - self.epoch) * 1e6,
            "pid": self.pid,
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def events(self) -> List[dict]:
        """A copy of the recorded events (wire-safe: plain JSON types)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def absorb(
        self,
        events: List[dict],
        pid: Optional[int] = None,
        **extra_args: Any,
    ) -> None:
        """Merge another tracer's events (a worker's) into this log.

        The events keep their own timebase — workers measure real
        durations; only relative alignment across processes is
        approximate — and are re-stamped with ``pid`` (the worker's) and
        any ``extra_args`` (e.g. ``range_id``) for attribution.
        """
        stamped = []
        for event in events:
            event = dict(event)
            if pid is not None:
                event["pid"] = pid
            if extra_args:
                event["args"] = {**event.get("args", {}), **extra_args}
            stamped.append(event)
        with self._lock:
            self._events.extend(stamped)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def dump(self, path: str) -> str:
        """Write the trace as Chrome trace-event JSON (Perfetto-loadable)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")
        return path


# --------------------------------------------------------------------------- #
# the process-global active tracer
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[PhaseTracer] = None


def get_tracer() -> Optional[PhaseTracer]:
    return _ACTIVE


def set_tracer(tracer: Optional[PhaseTracer]) -> None:
    global _ACTIVE
    _ACTIVE = tracer


@contextmanager
def use_tracer(tracer: PhaseTracer):
    """Install ``tracer`` as the process-global active tracer for a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def trace_span(name: str, category: str = "phase", **args: Any):
    """A span on the active tracer, or the shared no-op span when none is."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **args)


def trace_instant(name: str, category: str = "mark", **args: Any) -> None:
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, category, **args)


def summarize_events(events: List[dict]) -> Dict[str, dict]:
    """Per-name totals over complete spans: count, total/max duration (µs)."""
    summary: Dict[str, dict] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        entry = summary.setdefault(
            event["name"], {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        duration = float(event.get("dur", 0.0))
        entry["count"] += 1
        entry["total_us"] += duration
        entry["max_us"] = max(entry["max_us"], duration)
    return summary
