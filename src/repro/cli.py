"""Command-line interface: full disjunctions over CSV files.

The CLI makes the library usable without writing Python: point it at a set of
CSV files (one relation per file, header row = attribute names, ``⊥`` or empty
cells = nulls) and compute the full disjunction, its top-k under a ranking
attribute, its approximate variant, or the execution trace of one pass.

Examples
--------
::

    python -m repro fd sources/*.csv --limit 20
    python -m repro fd sources/*.csv --backend sharded --workers 4
    python -m repro fd sources/*.csv --output fd.csv --initialization previous-results
    python -m repro topk sources/*.csv --k 5 --importance-attribute Stars
    python -m repro approx sources/*.csv --threshold 0.8 --similarity edit
    python -m repro trace sources/*.csv --anchor Climates
    python -m repro stream sources/*.csv --arrival-fraction 0.5 --batch-size 2
    python -m repro stream sources/*.csv --mode delta
    python -m repro stream sources/*.csv --mode delta --mutations 3
    python -m repro serve sources/*.csv --port 7411
    python -m repro serve --workload star --smoke-clients 4
    python -m repro serve --workload star --port 7411 --metrics-port 9100
    python -m repro trace star --out trace.json --backend batched
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.approx import ApproximateFullDisjunction
from repro.core.approx_join import EditDistanceSimilarity, ExactMatchSimilarity, MinJoin
from repro.core.full_disjunction import FullDisjunction
from repro.core.initialization import STRATEGIES
from repro.core.priority import priority_incremental_fd
from repro.core.ranking import MaxRanking
from repro.core.trace import format_trace, trace_incremental_fd
from repro.exec import BACKENDS, resolve_backend
from repro.relational import csv_io
from repro.relational.database import Database
from repro.relational.nulls import is_null
from repro.workloads.streaming import (
    IngestEvent,
    ResultEvent,
    StreamSummary,
    hold_back_arrivals,
    inject_mutations,
    replay_stream,
)


def _load_database(paths: Sequence[str], null_token: str) -> Database:
    if not paths:
        raise SystemExit("error: at least one CSV file is required")
    return csv_io.load_database(paths, null_token=null_token)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("csv", nargs="+", help="CSV files, one relation per file")
    parser.add_argument(
        "--null-token",
        default=csv_io.DEFAULT_NULL_TOKEN,
        help="cell value treated as null (default: ⊥; empty cells are always null)",
    )
    parser.add_argument(
        "--use-index",
        action="store_true",
        help="enable the Section 7 hash index on the Complete/Incomplete lists",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="execution backend: serial reference, anchor-bucket batched, or "
        "process-sharded passes (identical results either way)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded backend (default: 2)",
    )


def _backend_of(arguments: argparse.Namespace):
    return resolve_backend(arguments.backend, workers=arguments.workers)


def _command_fd(arguments: argparse.Namespace) -> int:
    database = _load_database(arguments.csv, arguments.null_token)
    fd = FullDisjunction(
        database,
        use_index=arguments.use_index,
        initialization=arguments.initialization,
        block_size=arguments.block_size,
        backend=_backend_of(arguments),
    )
    if arguments.limit is not None:
        results = fd.first(arguments.limit)
        for tuple_set in results:
            print(tuple_set)
        print(f"({len(results)} answers shown; computation stopped early)")
        return 0
    print(fd.pretty())
    print(f"({len(fd.compute())} answers)")
    if arguments.output:
        path = csv_io.save_relation(fd.to_relation(), arguments.output)
        print(f"padded result written to {path}")
    return 0


def _attribute_importance(attribute: Optional[str]):
    """``imp(t)`` reading a numeric attribute (missing/invalid → 0)."""

    def importance(t):
        if attribute is None or not t.has_attribute(attribute):
            return 0.0
        value = t[attribute]
        if is_null(value):
            return 0.0
        try:
            return float(value)
        except (TypeError, ValueError):
            return 0.0

    return importance


def _command_topk(arguments: argparse.Namespace) -> int:
    database = _load_database(arguments.csv, arguments.null_token)
    ranking = MaxRanking(_attribute_importance(arguments.importance_attribute))
    ranked = priority_incremental_fd(
        database, ranking, k=arguments.k, use_index=arguments.use_index,
        backend=_backend_of(arguments),
    )
    for tuple_set, score in ranked:
        members = ", ".join(sorted(t.label for t in tuple_set))
        print(f"score {score:10.4f}   {{{members}}}")
    return 0


def _command_approx(arguments: argparse.Namespace) -> int:
    database = _load_database(arguments.csv, arguments.null_token)
    if arguments.similarity == "edit":
        similarity = EditDistanceSimilarity()
    else:
        similarity = ExactMatchSimilarity()
    afd = ApproximateFullDisjunction(
        database,
        MinJoin(similarity),
        threshold=arguments.threshold,
        use_index=arguments.use_index,
        backend=_backend_of(arguments),
    )
    print(afd.pretty())
    print(f"({len(afd.compute())} answers at threshold {arguments.threshold})")
    return 0


def _command_stream(arguments: argparse.Namespace) -> int:
    from repro.service.delta import DeltaSummary, incremental_replay_stream

    if arguments.importance_attribute and not arguments.rank:
        raise SystemExit("error: --importance-attribute requires --rank")
    if arguments.workers is not None and arguments.backend != "sharded":
        raise SystemExit(
            "error: --workers only applies to --backend sharded "
            f"(got --backend {arguments.backend})"
        )
    if arguments.mode == "delta" and arguments.backend == "sharded":
        # The delta maintainer schedules single seeded passes — there are no
        # per-relation passes to shard, so the option would be silently
        # ignored; refuse it instead.
        raise SystemExit(
            "error: --backend sharded is not supported with --mode delta "
            "(the per-arrival delta pass is a single in-process loop); "
            "use serial, batched or async"
        )
    if arguments.mutations < 0:
        raise SystemExit("error: --mutations must be non-negative")
    database = _load_database(arguments.csv, arguments.null_token)
    workload = hold_back_arrivals(database, arguments.arrival_fraction)
    ops = workload.arrivals
    if arguments.mutations:
        try:
            ops = inject_mutations(
                workload, arguments.mutations, seed=arguments.mutation_seed
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    ranking = None
    if arguments.rank:
        # The streamed tuples carry their values, so an attribute-derived
        # importance scores arrivals and base tuples alike; without an
        # attribute, the importance stored on each tuple is used.
        spec = (
            _attribute_importance(arguments.importance_attribute)
            if arguments.importance_attribute
            else None
        )
        ranking = MaxRanking(spec)
    if arguments.mode == "delta":
        summary = DeltaSummary()
        events = incremental_replay_stream(
            workload.database,
            ops,
            batch_size=arguments.batch_size,
            use_index=arguments.use_index,
            backend=_backend_of(arguments),
            summary=summary,
            ranking=ranking,
        )
    else:
        summary = StreamSummary()
        events = replay_stream(
            workload.database,
            ops,
            batch_size=arguments.batch_size,
            use_index=arguments.use_index,
            backend=_backend_of(arguments),
            summary=summary,
            ranking=ranking,
        )
    for event in events:
        if isinstance(event, IngestEvent):
            print(f"-- applied {event.applied} op(s) "
                  f"({event.total_applied}/{len(ops)})")
        elif isinstance(event, ResultEvent):
            members = ", ".join(sorted(t.label for t in event.tuple_set))
            verb = "retract " if event.kind == "retract" else ""
            if event.score is not None:
                print(f"[after {event.after_arrivals:3d} ops] {verb}"
                      f"score {event.score:10.4f}   {{{members}}}")
            else:
                print(f"[after {event.after_arrivals:3d} ops] {verb}{{{members}}}")
    print(
        f"({len(summary.results)} standing answers over "
        f"{summary.arrivals_applied} streamed ops; "
        f"{summary.catalog_rebuilds} catalog build)"
    )
    if arguments.mutations:
        print(
            f"({arguments.mutations} mutations interleaved: tombstone "
            f"deletions and in-place updates; epoch "
            f"{workload.database.epoch})"
        )
    if arguments.mode == "delta":
        print(
            f"(delta maintenance: {summary.delta_work()} candidates generated "
            f"and {summary.retractions()} results retracted across "
            f"{len(summary.per_batch)} batches)"
        )
    return 0


#: Generated databases servable without CSV files (``repro serve --workload``).
SERVE_WORKLOADS = ("tourist", "star", "chain")


def _serve_database(arguments: argparse.Namespace) -> Database:
    if arguments.workload:
        from repro.workloads.generators import chain_database, star_database
        from repro.workloads.tourist import tourist_database

        if arguments.workload == "tourist":
            return tourist_database()
        if arguments.workload == "star":
            return star_database(
                spokes=3, tuples_per_relation=5, hub_domain=2, seed=arguments.seed
            )
        return chain_database(
            relations=3, tuples_per_relation=6, domain_size=3,
            null_rate=0.1, seed=arguments.seed,
        )
    return _load_database(arguments.csv, arguments.null_token)


def _command_serve(arguments: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.exec import shutdown_pools
    from repro.service.server import run_smoke, start_server

    if arguments.csv and arguments.workload:
        raise SystemExit(
            "error: give CSV files or --workload, not both"
        )
    if arguments.shards < 1:
        raise SystemExit("error: --shards must be positive")
    if arguments.follow is not None:
        if arguments.data_dir is not None:
            raise SystemExit(
                "error: --follow tails a primary's --data-dir; a follower "
                "does not own one of its own"
            )
        if arguments.shards > 1:
            raise SystemExit("error: --follow serves a single read-only process")
        if arguments.ranked:
            raise SystemExit("error: --ranked smoke does not apply to --follow")
    if arguments.data_dir is None and arguments.follow is None:
        if arguments.snapshot_every is not None:
            raise SystemExit("error: --snapshot-every requires --data-dir")
        if arguments.fsync_every is not None:
            raise SystemExit("error: --fsync-every requires --data-dir")
    if arguments.smoke_clients is not None and arguments.metrics_port is not None:
        # The smoke self-test runs to completion and exits; a metrics
        # sidecar would bind, serve nothing, and vanish — refuse the combo.
        raise SystemExit(
            "error: --metrics-port runs alongside a real server, "
            "not the --smoke-clients self-test"
        )
    if arguments.smoke_clients is None:
        # Options that only shape the smoke self-test would be silently
        # ignored by a real server; refuse them instead.
        ignored = [
            flag
            for flag, value in (("--k", arguments.k), ("--ranked", arguments.ranked))
            if value
        ]
        if ignored:
            raise SystemExit(
                f"error: {', '.join(ignored)} only applies with "
                "--smoke-clients"
            )
    async def _start_sidecar(metrics, health):
        if arguments.metrics_port is None:
            return None
        from repro.obs import start_sidecar

        sidecar = await start_sidecar(
            metrics, health, host=arguments.host, port=arguments.metrics_port
        )
        print(
            f"metrics sidecar on {arguments.host}:{sidecar.port} "
            "(GET /metrics, GET /health)"
        )
        return sidecar

    if arguments.follow is not None and arguments.smoke_clients is not None:
        # Follower parity self-test: bootstrap (or recover) a durable
        # primary on the followed directory, then serve concurrent
        # read-only clients from a follower of it and assert parity.
        from repro.service.follower import run_follower_smoke
        from repro.service.server import open_durable_server

        database = _serve_database(arguments)
        primary = open_durable_server(
            database, arguments.follow, use_index=arguments.use_index
        )
        try:
            outcome = run_follower_smoke(
                primary,
                arguments.follow,
                clients=arguments.smoke_clients,
                k=arguments.k,
            )
        finally:
            primary.shutdown()
            shutdown_pools()
        print(
            f"follower smoke OK: {arguments.smoke_clients} concurrent "
            f"read-only clients matched the primary's answers; "
            f"{outcome['records_applied']} WAL records replicated "
            f"(lag {outcome['lag_seconds'] * 1000.0:.1f} ms)"
        )
        return 0

    if arguments.follow is not None:
        from repro.service.follower import serve_follower

        async def _serve_follower() -> None:
            server, state, tailer, task, port = await serve_follower(
                arguments.follow, host=arguments.host, port=arguments.port
            )
            print(
                f"following {arguments.follow} on {arguments.host}:{port} "
                "(read-only; ops: open/next/peek/close/stats)"
            )
            sidecar = await _start_sidecar(state.render_metrics, state.health)
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, stop.set)
            try:
                async with server:
                    await stop.wait()
            finally:
                tailer.stop()
                await task
                if sidecar is not None:
                    await sidecar.close()

        try:
            asyncio.run(_serve_follower())
            print("stopped")
        except KeyboardInterrupt:
            print("stopped")
        finally:
            shutdown_pools()
        return 0

    database = _serve_database(arguments)
    if arguments.smoke_clients is not None:
        flavour = "ranked answers (scores included)" if arguments.ranked else "answers"
        engine = "ranked" if arguments.ranked else "fd"
        if arguments.shards > 1:
            from repro.service.sharding import run_sharded_smoke

            outcome = run_sharded_smoke(
                database,
                clients=arguments.smoke_clients,
                k=arguments.k,
                shards=arguments.shards,
                use_index=arguments.use_index,
                engine=engine,
            )
            gauges = ", ".join(
                f"shard {entry['shard']}: {entry['requests']} requests"
                for entry in outcome["stats"]["per_shard"]
            )
            print(
                f"smoke OK: {outcome['clients']} concurrent clients each "
                f"received {outcome['results_per_client']} {flavour} identical "
                f"to the serial run through {outcome['shards']} shards "
                f"({gauges})"
            )
            return 0
        outcome = run_smoke(
            database,
            clients=arguments.smoke_clients,
            k=arguments.k,
            use_index=arguments.use_index,
            engine=engine,
        )
        cache = outcome["cache"]
        print(
            f"smoke OK: {outcome['clients']} concurrent clients each received "
            f"{outcome['results_per_client']} {flavour} identical to the serial "
            f"run (cache: {cache['hits']} hits / {cache['misses']} misses, "
            f"{outcome['requests']} requests)"
        )
        return 0

    async def _stop_signal() -> "asyncio.Event":
        # SIGTERM/SIGINT land here as a graceful stop: the serve loops
        # below fall out of ``stop.wait()``, seal WALs and logs through
        # ``QueryServer.shutdown()``, and release the worker pools — a
        # durable server leaves a clean final snapshot instead of a torn
        # tail to recover.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        return stop

    async def _serve() -> None:
        if arguments.shards > 1:
            from repro.service.sharding import start_sharded_server

            server, router, port = await start_sharded_server(
                database, shards=arguments.shards, host=arguments.host,
                port=arguments.port, use_index=arguments.use_index,
                data_dir=arguments.data_dir,
            )
            durable = (
                f", durable in {arguments.data_dir}/shard-N"
                if arguments.data_dir
                else ""
            )
            print(
                f"serving {len(database)} relations on {arguments.host}:{port} "
                f"across {arguments.shards} shard processes{durable} "
                "(JSON lines; ops: open/next/peek/close/ingest/stats)"
            )
            sidecar = await _start_sidecar(router.render_metrics, router.health)
            stop = await _stop_signal()
            try:
                async with server:
                    await stop.wait()
            finally:
                if sidecar is not None:
                    await sidecar.close()
                await router.shutdown()
            return
        state = None
        if arguments.data_dir is not None:
            from repro.service.server import open_durable_server
            from repro.storage import DEFAULT_FSYNC_EVERY, DEFAULT_SNAPSHOT_EVERY

            state = open_durable_server(
                database,
                arguments.data_dir,
                use_index=arguments.use_index,
                snapshot_every=(
                    arguments.snapshot_every
                    if arguments.snapshot_every is not None
                    else DEFAULT_SNAPSHOT_EVERY
                ),
                fsync_every=(
                    arguments.fsync_every
                    if arguments.fsync_every is not None
                    else DEFAULT_FSYNC_EVERY
                ),
            )
        server, state, port = await start_server(
            database, host=arguments.host, port=arguments.port,
            use_index=arguments.use_index, state=state,
        )
        durable = ""
        if state.store is not None:
            recovery = state.store.recovery_info
            durable = (
                f", recovered from {arguments.data_dir} "
                f"(replayed {recovery.get('replayed_records', 0)} WAL records)"
                if recovery.get("recovered")
                else f", durable in {arguments.data_dir}"
            )
        print(
            f"serving {len(state.database)} relations on "
            f"{arguments.host}:{port}{durable} "
            "(JSON lines; ops: open/next/peek/close/ingest/stats)"
        )
        sidecar = await _start_sidecar(state.render_metrics, state.health)
        stop = await _stop_signal()
        try:
            async with server:
                await stop.wait()
        finally:
            if sidecar is not None:
                await sidecar.close()
            state.shutdown()

    try:
        asyncio.run(_serve())
        print("stopped")
    except KeyboardInterrupt:
        print("stopped")
    finally:
        # The server may have run sharded-backend passes; release the worker
        # pool with the service instead of waiting for interpreter exit.
        shutdown_pools()
    return 0


def _command_trace(arguments: argparse.Namespace) -> int:
    # ``repro trace star --out trace.json`` profiles a generated workload:
    # accept a workload name in the positional slot as well as via --workload.
    if (
        not arguments.workload
        and len(arguments.csv) == 1
        and arguments.csv[0] in SERVE_WORKLOADS
    ):
        import os

        if not os.path.exists(arguments.csv[0]):
            arguments.workload = arguments.csv[0]
            arguments.csv = []
    if arguments.csv and arguments.workload:
        raise SystemExit("error: give CSV files or --workload, not both")
    database = _serve_database(arguments)
    if arguments.out:
        return _trace_profile(arguments, database)
    anchor = arguments.anchor or database.relation_names[0]
    trace = trace_incremental_fd(database, anchor, use_index=arguments.use_index)
    print(format_trace(trace))
    print(f"({trace.iterations} iterations, anchor relation {anchor!r})")
    return 0


def _trace_profile(arguments: argparse.Namespace, database: Database) -> int:
    """Run the full engine under a phase tracer and dump a Chrome trace."""
    from repro.obs import PhaseTracer, summarize_events, use_tracer

    tracer = PhaseTracer()
    with use_tracer(tracer):
        fd = FullDisjunction(
            database, use_index=arguments.use_index, backend=_backend_of(arguments)
        )
        answers = fd.compute()
    path = tracer.dump(arguments.out)
    events = tracer.events()
    print(f"trace written to {path} ({len(events)} events; "
          f"open in Perfetto or chrome://tracing)")
    print(f"({len(answers)} answers over {len(database)} relations, "
          f"backend {arguments.backend!r})")
    summary = summarize_events(events)
    if summary:
        width = max(len(name) for name in summary)
        print(f"{'span':<{width}}  {'count':>6}  {'total_ms':>10}  {'max_ms':>10}")
        for name in sorted(summary, key=lambda n: -summary[n]["total_us"]):
            entry = summary[name]
            print(
                f"{name:<{width}}  {entry['count']:>6}  "
                f"{entry['total_us'] / 1000.0:>10.3f}  "
                f"{entry['max_us'] / 1000.0:>10.3f}"
            )
    return 0


def _command_pack(arguments: argparse.Namespace) -> int:
    # ``repro pack star --out db.rpmc``: accept a workload name in the
    # positional slot as well as via --workload, exactly like ``trace``.
    if (
        not arguments.workload
        and len(arguments.csv) == 1
        and arguments.csv[0] in SERVE_WORKLOADS
    ):
        import os

        if not os.path.exists(arguments.csv[0]):
            arguments.workload = arguments.csv[0]
            arguments.csv = []
    if arguments.csv and arguments.workload:
        raise SystemExit("error: give CSV files or --workload, not both")
    if not arguments.csv and not arguments.workload:
        raise SystemExit("error: give CSV files or --workload")
    database = _serve_database(arguments)
    try:
        from repro.relational.catalog_file import MirrorFile

        database.save_mirror(arguments.out)
        handle = MirrorFile.open(arguments.out)
    except Exception as error:
        raise SystemExit(f"error: cannot pack mirror file: {error}")
    try:
        size = handle.size_bytes()
        print(f"packed {handle.n} tuples over {handle.relation_count} relations "
              f"into {arguments.out}")
        print(f"({size} bytes, width {handle.width} words, "
              f"generation {tuple(handle.generation)}, "
              f"sealed={handle.sealed}, body intact={handle.verify_body()})")
    finally:
        handle.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full disjunctions of CSV relations (Cohen & Sagiv, PODS 2005).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fd_parser = subparsers.add_parser("fd", help="compute the full disjunction")
    _add_common_arguments(fd_parser)
    fd_parser.add_argument("--limit", type=int, default=None,
                           help="stop after this many answers (incremental retrieval)")
    fd_parser.add_argument("--initialization", choices=STRATEGIES, default="singletons",
                           help="Incomplete initialization strategy (Section 7)")
    fd_parser.add_argument("--block-size", type=int, default=None,
                           help="block-based execution with this block size (Section 7)")
    fd_parser.add_argument("--output", default=None,
                           help="write the padded result to this CSV file")
    fd_parser.set_defaults(handler=_command_fd)

    topk_parser = subparsers.add_parser("topk", help="top-k answers under f_max")
    _add_common_arguments(topk_parser)
    topk_parser.add_argument("--k", type=int, required=True, help="number of answers")
    topk_parser.add_argument(
        "--importance-attribute",
        default=None,
        help="numeric attribute used as the tuple importance imp(t) (missing/invalid -> 0)",
    )
    topk_parser.set_defaults(handler=_command_topk)

    approx_parser = subparsers.add_parser(
        "approx", help="(A_min, τ)-approximate full disjunction"
    )
    _add_common_arguments(approx_parser)
    approx_parser.add_argument("--threshold", type=float, required=True,
                               help="threshold τ in [0, 1]")
    approx_parser.add_argument("--similarity", choices=("edit", "exact"), default="edit",
                               help="pairwise similarity: normalised edit distance or exact match")
    approx_parser.set_defaults(handler=_command_approx)

    stream_parser = subparsers.add_parser(
        "stream",
        help="streaming ingest: hold back a fraction of every relation and "
        "replay it while serving results (append-only catalog maintenance)",
    )
    _add_common_arguments(stream_parser)
    stream_parser.add_argument(
        "--arrival-fraction", type=float, default=0.5,
        help="fraction of every relation's tuples replayed as arrivals (default: 0.5)",
    )
    stream_parser.add_argument(
        "--batch-size", type=int, default=1,
        help="arrivals ingested per recomputation step (default: 1)",
    )
    stream_parser.add_argument(
        "--mode", choices=("recompute", "delta"), default="recompute",
        help="per-batch strategy: full engine re-run with dedup, or true "
        "delta maintenance (each arrival seeds only its own singleton; "
        "with --rank, only the arrival's size-<=c subsets)",
    )
    stream_parser.add_argument(
        "--rank", action="store_true",
        help="serve the *ranked* full disjunction under f_max: results carry "
        "scores and each batch's new results are emitted in rank order",
    )
    stream_parser.add_argument(
        "--importance-attribute", default=None,
        help="numeric attribute used as imp(t) with --rank "
        "(default: the importance stored on each tuple)",
    )
    stream_parser.add_argument(
        "--mutations", type=int, default=0, metavar="N",
        help="interleave N mutations (tombstone deletions and in-place "
        "updates of base tuples) into the arrival stream; retracted "
        "results are announced as retract events",
    )
    stream_parser.add_argument(
        "--mutation-seed", type=int, default=0,
        help="seed for the mutation schedule (default: 0)",
    )
    stream_parser.set_defaults(handler=_command_stream)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve resumable first-k query sessions to concurrent clients "
        "over an asyncio JSON-lines TCP server",
    )
    serve_parser.add_argument(
        "csv", nargs="*", help="CSV files, one relation per file"
    )
    serve_parser.add_argument(
        "--workload", choices=SERVE_WORKLOADS, default=None,
        help="serve a generated workload instead of CSV files",
    )
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="seed for generated workloads (default: 0)")
    serve_parser.add_argument(
        "--null-token", default=csv_io.DEFAULT_NULL_TOKEN,
        help="cell value treated as null (default: ⊥; empty cells are always null)",
    )
    serve_parser.add_argument("--use-index", action="store_true",
                              help="enable the Section 7 hash index")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (default: 0 = ephemeral)")
    serve_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run N shard processes behind a consistent-hash router with "
        "admission control (default: 1 = the single-process server)",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve GET /metrics (Prometheus text) and GET /health "
        "(JSON) over HTTP on this port (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="serve durably: write-ahead-log every mutation into DIR, "
        "snapshot periodically, and recover DIR's state on restart "
        "(the CSV/--workload database only seeds a fresh directory)",
    )
    serve_parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="with --data-dir: snapshot after every N WAL records "
        "(default: 64)",
    )
    serve_parser.add_argument(
        "--fsync-every", type=int, default=None, metavar="N",
        help="with --data-dir: fsync the WAL once per N appends "
        "(group commit; default: 8)",
    )
    serve_parser.add_argument(
        "--follow", default=None, metavar="DIR",
        help="serve as a read-only follower replica: restore the primary's "
        "latest snapshot from DIR and tail its WAL, applying its ops live; "
        "with --smoke-clients, run the follower parity self-test instead",
    )
    serve_parser.add_argument(
        "--smoke-clients", type=int, default=None, metavar="N",
        help="self-test: run N concurrent clients against an in-process "
        "server, assert result parity with a serial run, and exit",
    )
    serve_parser.add_argument(
        "--k", type=int, default=None,
        help="answers per client in --smoke-clients mode (default: all)",
    )
    serve_parser.add_argument(
        "--ranked", action="store_true",
        help="--smoke-clients parity over the ranked engine: clients open "
        "with a label-derived importance map and must receive the serial "
        "top-k stream, scores included",
    )
    serve_parser.set_defaults(handler=_command_serve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="print the Incomplete/Complete trace of one IncrementalFD pass, "
        "or (--out) profile a full run and dump a Chrome trace",
    )
    trace_parser.add_argument(
        "csv", nargs="*",
        help="CSV files, one relation per file — or a workload name "
        f"({', '.join(SERVE_WORKLOADS)})",
    )
    trace_parser.add_argument(
        "--workload", choices=SERVE_WORKLOADS, default=None,
        help="trace a generated workload instead of CSV files",
    )
    trace_parser.add_argument("--seed", type=int, default=0,
                              help="seed for generated workloads (default: 0)")
    trace_parser.add_argument(
        "--null-token", default=csv_io.DEFAULT_NULL_TOKEN,
        help="cell value treated as null (default: ⊥; empty cells are always null)",
    )
    trace_parser.add_argument("--use-index", action="store_true",
                              help="enable the Section 7 hash index")
    trace_parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="execution backend for --out profiling runs",
    )
    trace_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sharded backend (default: 2)",
    )
    trace_parser.add_argument("--anchor", default=None,
                              help="anchor relation R_i (default: the first relation)")
    trace_parser.add_argument(
        "--out", default=None, metavar="TRACE.json",
        help="run the full engine under the phase tracer and write "
        "Chrome-trace-event JSON here (open in Perfetto) instead of "
        "printing the one-pass Incomplete/Complete trace",
    )
    trace_parser.set_defaults(handler=_command_trace)

    pack_parser = subparsers.add_parser(
        "pack",
        help="pack a database into a sealed, memory-mappable catalog mirror "
        "file (servable out-of-core, shareable zero-copy by sharded workers)",
    )
    pack_parser.add_argument(
        "csv", nargs="*",
        help="CSV files, one relation per file — or a workload name "
        f"({', '.join(SERVE_WORKLOADS)})",
    )
    pack_parser.add_argument(
        "--workload", choices=SERVE_WORKLOADS, default=None,
        help="pack a generated workload instead of CSV files",
    )
    pack_parser.add_argument("--seed", type=int, default=0,
                             help="seed for generated workloads (default: 0)")
    pack_parser.add_argument(
        "--null-token", default=csv_io.DEFAULT_NULL_TOKEN,
        help="cell value treated as null (default: ⊥; empty cells are always null)",
    )
    pack_parser.add_argument(
        "--out", required=True, metavar="MIRROR.rpmc",
        help="write the mirror file here (load with "
        "repro.relational.catalog_file.load_database)",
    )
    pack_parser.set_defaults(handler=_command_pack)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
