"""Durable storage: stream-op codec, write-ahead log, snapshots.

The storage layer gives the serving stack crash recovery and follower
replication on top of the stream-op vocabulary the system already speaks:

* :mod:`repro.storage.codec` — the one canonical serialization of
  ``Arrival``/``Removal``/``Update`` shared by the WAL, the wire protocol,
  and the replay helpers.
* :mod:`repro.storage.wal` — append-only, checksummed, fsync-batched
  record log with owner-side (truncating) and follower-side (tailing)
  readers.
* :mod:`repro.storage.snapshot` — checksummed snapshot documents with
  atomic replacement and retention.
* :mod:`repro.storage.store` — :class:`~repro.storage.store.DurableStore`,
  the per-data-directory owner tying the two together.

Server-side recovery (rebuilding a ``QueryServer`` from a data directory)
lives in :mod:`repro.service.server`; follower tailing in
:mod:`repro.service.follower` — storage never imports the service layer.
"""

from repro.storage.codec import (
    CodecError,
    decode_op,
    decode_ops,
    decode_values,
    encode_op,
    encode_ops,
    encode_values,
    normalize_stream_op,
)
from repro.storage.snapshot import (
    KEEP_SNAPSHOTS,
    SNAPSHOT_FORMAT,
    SnapshotError,
    list_snapshots,
    load_latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.storage.store import DEFAULT_SNAPSHOT_EVERY, DurableStore, RecoveryError
from repro.storage.wal import (
    DEFAULT_FSYNC_EVERY,
    WAL_NAME,
    WalError,
    WriteAheadLog,
    read_available,
    recover_wal,
)

__all__ = [
    "CodecError",
    "decode_op",
    "decode_ops",
    "decode_values",
    "encode_op",
    "encode_ops",
    "encode_values",
    "normalize_stream_op",
    "KEEP_SNAPSHOTS",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "list_snapshots",
    "load_latest_snapshot",
    "load_snapshot",
    "write_snapshot",
    "DEFAULT_SNAPSHOT_EVERY",
    "DurableStore",
    "RecoveryError",
    "DEFAULT_FSYNC_EVERY",
    "WAL_NAME",
    "WalError",
    "WriteAheadLog",
    "read_available",
    "recover_wal",
]
