"""Checksummed snapshot files with atomic replacement and retention.

A snapshot is one JSON document capturing everything a server needs to
resume without replaying the whole WAL:

* the database state (relations, every catalogued tuple in gid-issuance
  order with its dead flag, epoch, rebuild counter, generation token),
* the delta maintainer's emitted log and accumulated ``Complete`` store
  (as stable gid lists — gids survive restore by construction),
* the prefix cache's materialized first-k prefixes plus the wire requests
  that opened them,
* ``wal_offset`` — the WAL position the snapshot is consistent with;
  recovery replays only records past it.

Writes are crash-safe: the document is written to a temp file, fsynced,
then ``os.replace``d into ``snapshot-<seq>.json`` — a crash mid-write
leaves the previous snapshot untouched.  The last :data:`KEEP_SNAPSHOTS`
files are retained so a snapshot corrupted at rest (bad checksum) falls
back to its predecessor plus a longer WAL replay rather than failing
recovery outright.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import List, Optional, Tuple

SNAPSHOT_FORMAT = 1
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"

#: How many snapshot generations to retain.
KEEP_SNAPSHOTS = 2


class SnapshotError(Exception):
    """A snapshot that cannot be written or decoded."""


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"{SNAPSHOT_PREFIX}{seq:08d}{SNAPSHOT_SUFFIX}")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` pairs, newest first."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        if not (name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX)):
            continue
        stem = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
        try:
            seq = int(stem)
        except ValueError:
            continue
        found.append((seq, os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def write_snapshot(directory: str, payload: dict, seq: int) -> str:
    """Atomically write ``payload`` as snapshot ``seq``; returns the path.

    The checksum covers the canonical encoding of every other field, so a
    bit flipped anywhere in the document fails validation on load.
    """
    document = dict(payload)
    document["format"] = SNAPSHOT_FORMAT
    document["seq"] = seq
    document.pop("checksum", None)
    document["checksum"] = zlib.crc32(_canonical(document))
    path = snapshot_path(directory, seq)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(_canonical(document))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _prune(directory, keep=KEEP_SNAPSHOTS)
    return path


def _prune(directory: str, keep: int) -> None:
    for _, path in list_snapshots(directory)[keep:]:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - best-effort retention
            pass


def external_references(document: dict) -> List[str]:
    """Paths of mirror files the snapshot records **by reference**.

    Snapshots of databases with a durable file-backed catalog mirror carry
    ``tuples_ref`` dicts (path + payload prefix + dead mask) instead of
    inline tuple entries — see ``Database.snapshot_state``.  Recovery needs
    those files to still exist; this walks the document and collects every
    referenced path so callers can check before committing to a snapshot.
    """
    paths: List[str] = []

    def walk(node) -> None:
        if isinstance(node, dict):
            ref = node.get("tuples_ref")
            if isinstance(ref, dict) and isinstance(ref.get("path"), str):
                paths.append(ref["path"])
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(document)
    return paths


def load_snapshot(path: str, check_references: bool = False) -> Optional[dict]:
    """Load and validate one snapshot file; ``None`` if it does not verify.

    With ``check_references`` set, a snapshot whose by-reference mirror
    files have vanished also answers ``None`` — the caller then falls back
    to an older snapshot exactly as it would for a bad checksum.
    """
    try:
        with open(path, "rb") as handle:
            document = json.loads(handle.read().decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format") != SNAPSHOT_FORMAT:
        return None
    expected = document.pop("checksum", None)
    if expected != zlib.crc32(_canonical(document)):
        return None
    if check_references:
        for ref_path in external_references(document):
            if not os.path.exists(ref_path):
                return None
    return document


def load_latest_snapshot(
    directory: str, check_references: bool = True
) -> Optional[Tuple[dict, str]]:
    """Newest snapshot that validates, or ``None`` when none does."""
    for _, path in list_snapshots(directory):
        document = load_snapshot(path, check_references=check_references)
        if document is not None:
            return document, path
    return None
