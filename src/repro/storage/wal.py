"""Append-only, checksummed, fsync-batched write-ahead log.

The WAL is a single flat file of framed records.  Each frame is

    magic (2 bytes) | body length (4 bytes, big-endian) | crc32 (4 bytes) | body

where the body is a compact JSON document::

    {"kind": "ingest" | "retract" | "update",
     "ops": [<codec record>, ...],
     "generation": [rebuilds, epoch, relations, tuples],   # post-apply token
     "ts": <wall-clock seconds>}

``generation`` is the database's generation token *after* the batch was
applied: replay asserts it record by record, so a divergent recovery fails
fast instead of serving silently wrong streams.  ``ts`` is wall-clock time
at append, which is what lets a follower compute replication lag.

Durability contract (see README "Durability and replication"): the server
applies a batch through the delta maintainer first — the maintainer
validates before mutating — then appends the WAL record, then acks.  The
log is therefore always a prefix of the applied history; a crash between
apply and append loses only a batch that was never acknowledged.  ``fsync``
is batched (group commit): every record is buffered and flushed to the OS,
but the expensive ``fsync`` runs once per ``fsync_every`` appends, bounding
the window of acked-but-not-yet-durable records.

Two readers with different tail policies share the frame parser:

* :func:`recover_wal` — crash recovery on the *owning* process's log.  A
  torn or corrupt tail (partial frame, bad checksum) marks the end of the
  log and is truncated away so the file is clean for appending.
* :func:`read_available` — a follower tailing a *live* primary's log.  An
  incomplete tail frame simply hasn't been written yet; the follower keeps
  its offset and polls again, and must never truncate the primary's file.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Iterable, List, Optional, Tuple

_MAGIC = b"RW"
_HEADER = struct.Struct(">2sII")

#: Default group-commit size: fsync once per this many appends.
DEFAULT_FSYNC_EVERY = 8

WAL_NAME = "wal.log"


class WalError(Exception):
    """A write-ahead log that cannot be read or written."""


def encode_frame(payload: dict) -> bytes:
    """Frame one record: magic + length + crc32 + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(_MAGIC, len(body), zlib.crc32(body)) + body


def _parse_frame(buffer: bytes, offset: int) -> Optional[Tuple[dict, int]]:
    """Parse the frame at ``offset``; ``None`` on a torn/corrupt/short tail."""
    header_end = offset + _HEADER.size
    if header_end > len(buffer):
        return None
    magic, length, checksum = _HEADER.unpack_from(buffer, offset)
    if magic != _MAGIC:
        return None
    body_end = header_end + length
    if body_end > len(buffer):
        return None
    body = buffer[header_end:body_end]
    if zlib.crc32(body) != checksum:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return payload, body_end


def scan_frames(buffer: bytes, start: int = 0) -> Tuple[List[Tuple[dict, int]], int]:
    """All complete valid frames from ``start``; returns ``(records, good_end)``.

    Each record is ``(payload, end_offset)``.  Scanning stops at the first
    frame that does not parse — in an append-only log written through
    :class:`WriteAheadLog` anything after a bad frame is by construction
    torn-tail garbage, never valid data.
    """
    records: List[Tuple[dict, int]] = []
    offset = start
    while True:
        parsed = _parse_frame(buffer, offset)
        if parsed is None:
            return records, offset
        payload, offset = parsed
        records.append((payload, offset))


def read_available(path: str, offset: int = 0) -> Tuple[List[Tuple[dict, int]], int]:
    """Follower read: complete records past ``offset``, tail left untouched.

    Returns ``(records, new_offset)`` where ``new_offset`` is the end of the
    last complete record — an in-flight partial frame stays pending for the
    next poll.  A missing file reads as empty.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            buffer = handle.read()
    except FileNotFoundError:
        return [], offset
    records, good_end = scan_frames(buffer)
    absolute = [(payload, offset + end) for payload, end in records]
    return absolute, offset + good_end


def recover_wal(path: str) -> Tuple[List[Tuple[dict, int]], int, int]:
    """Owner-side recovery: parse the log and truncate any torn tail.

    Returns ``(records, good_end, truncated_bytes)`` where each record is
    ``(payload, end_offset)`` — recovery filters by end offset against the
    snapshot's ``wal_offset``.  A missing file is an empty log.  The
    truncation makes the file safe to append to again — a half-written
    frame from the crashed process would otherwise corrupt every later
    record.
    """
    try:
        with open(path, "rb") as handle:
            buffer = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    records, good_end = scan_frames(buffer)
    truncated = len(buffer) - good_end
    if truncated:
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return records, good_end, truncated


class WriteAheadLog:
    """Appender half: framed records with batched fsync (group commit)."""

    def __init__(
        self,
        path: str,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        registry=None,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = path
        self.fsync_every = fsync_every
        self._handle = open(path, "ab")
        self.offset = self._handle.tell()
        self._pending_sync = 0
        self.records_appended = 0
        self.fsyncs = 0
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self._m_records = registry.counter(
            "repro_wal_records_total", "WAL records appended."
        )
        self._m_bytes = registry.counter(
            "repro_wal_bytes_total", "WAL bytes appended."
        )
        self._m_fsyncs = registry.counter(
            "repro_wal_fsyncs_total", "WAL fsync calls (group commits)."
        )

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def append(self, kind: str, ops: Iterable[object], generation) -> int:
        """Append one record; returns the offset after it.

        The record is flushed to the OS immediately; ``fsync`` runs when the
        group-commit counter fills (or on :meth:`sync`/:meth:`close`).
        """
        from repro.storage.codec import encode_ops

        payload = {
            "kind": kind,
            "ops": encode_ops(ops),
            "generation": list(generation),
            "ts": time.time(),
        }
        frame = encode_frame(payload)
        self._handle.write(frame)
        self._handle.flush()
        self.offset += len(frame)
        self.records_appended += 1
        self._pending_sync += 1
        self._m_records.inc()
        self._m_bytes.inc(len(frame))
        if self._pending_sync >= self.fsync_every:
            self.sync()
        return self.offset

    def sync(self) -> None:
        """Force the group commit: flush and fsync pending records."""
        if self._handle.closed or not self._pending_sync:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending_sync = 0
        self.fsyncs += 1
        self._m_fsyncs.inc()

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def stats(self) -> dict:
        return {
            "path": self.path,
            "offset": self.offset,
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "fsync_every": self.fsync_every,
        }
