"""One canonical serialization of stream operations.

Until this module existed, three call sites each re-encoded stream ops ad
hoc: :func:`repro.workloads.streaming.apply_stream_op` coerced plain tuples
with ``Arrival(*op)``, the server's ``ingest``/``retract``/``update`` wire
handlers unpacked positional JSON entries inline, and the ``repro stream``
replay helpers normalized again on their own.  The write-ahead log made a
fourth encoding untenable, so every layer now goes through this codec:

* **record form** — the JSON dict written to the WAL and into snapshots
  (``{"kind": "arrival", "relation": ..., "values": [...]}``); defaults
  (importance 0.0, probability 1.0) are omitted so records are minimal and
  byte-stable.
* **wire form** — the positional JSON entries of the serving protocol
  (``[relation, values, imp?, prob?]`` for ingest, ``[relation, label]``
  for retract, ``[relation, label, values, imp?, prob?]`` for update),
  kept exactly as PR 3/PR 5 shipped them so existing clients never notice.

Null cells are canonicalized: the paper's ``⊥`` may arrive as JSON ``null``
(wire), Python ``None`` (convenience), or the :data:`~repro.relational.NULL`
singleton (in-process).  Encoding always emits JSON ``null``; decoding always
yields ``NULL``, so a round-tripped op is null-normalized regardless of how
the caller spelled its nulls.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.relational.nulls import NULL, is_null
from repro.workloads.streaming import Arrival, Removal, Update

StreamOp = Union[Arrival, Removal, Update]

#: Values a canonical record may carry besides nulls.  JSON-representable
#: scalars only — anything richer has no stable on-disk form.
_SCALARS = (str, int, float, bool)


class CodecError(ValueError):
    """A stream-op payload that cannot be encoded or decoded."""


# ---------------------------------------------------------------------- #
# values
# ---------------------------------------------------------------------- #
def encode_values(values: Sequence[object]) -> List[object]:
    """Attribute values → JSON list; nulls (``NULL`` or ``None``) → ``null``."""
    encoded: List[object] = []
    for value in values:
        if is_null(value):
            encoded.append(None)
        elif isinstance(value, _SCALARS):
            encoded.append(value)
        else:
            raise CodecError(
                f"value {value!r} is not JSON-serializable; stream-op values "
                "must be scalars or nulls"
            )
    return encoded


def decode_values(values: Sequence[object]) -> tuple:
    """JSON list → attribute tuple; ``null``/``None`` → the ``NULL`` singleton."""
    if not isinstance(values, (list, tuple)):
        raise CodecError(f"values must be a list, got {values!r}")
    return tuple(NULL if is_null(value) else value for value in values)


def _check_relation(relation: object) -> str:
    if not isinstance(relation, str) or not relation:
        raise CodecError(f"relation name must be a non-empty string, got {relation!r}")
    return relation


def _check_label(label: object) -> str:
    if not isinstance(label, str) or not label:
        raise CodecError(f"tuple label must be a non-empty string, got {label!r}")
    return label


def _check_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what} must be a number, got {value!r}")
    return float(value)


# ---------------------------------------------------------------------- #
# normalization (the shape ``apply_stream_op`` and the replay helpers use)
# ---------------------------------------------------------------------- #
def normalize_stream_op(op: object) -> StreamOp:
    """Coerce a stream op to its typed form.

    ``Arrival``/``Removal``/``Update`` pass through untouched; a plain
    ``(relation_name, values[, importance[, probability]])`` tuple becomes an
    ``Arrival``, preserving the historical convenience form.
    """
    if isinstance(op, (Arrival, Removal, Update)):
        return op
    try:
        return Arrival(*op)
    except TypeError as exc:
        raise CodecError(f"cannot interpret {op!r} as a stream op: {exc}") from None


# ---------------------------------------------------------------------- #
# record form (WAL + snapshots)
# ---------------------------------------------------------------------- #
def encode_op(op: object) -> dict:
    """Typed (or plain-tuple) op → canonical JSON record dict."""
    op = normalize_stream_op(op)
    if isinstance(op, Arrival):
        record: dict = {
            "kind": "arrival",
            "relation": _check_relation(op.relation_name),
            "values": encode_values(op.values),
        }
        if op.importance:
            record["importance"] = _check_number(op.importance, "importance")
        if op.probability != 1.0:
            record["probability"] = _check_number(op.probability, "probability")
        return record
    if isinstance(op, Removal):
        return {
            "kind": "removal",
            "relation": _check_relation(op.relation_name),
            "label": _check_label(op.label),
        }
    record = {
        "kind": "update",
        "relation": _check_relation(op.relation_name),
        "label": _check_label(op.label),
        "values": encode_values(op.values),
    }
    if op.importance is not None:
        record["importance"] = _check_number(op.importance, "importance")
    if op.probability is not None:
        record["probability"] = _check_number(op.probability, "probability")
    return record


def decode_op(record: dict) -> StreamOp:
    """Canonical JSON record dict → typed op (values null-normalized)."""
    if not isinstance(record, dict):
        raise CodecError(f"op records must be dicts, got {record!r}")
    kind = record.get("kind")
    if kind == "arrival":
        return Arrival(
            _check_relation(record.get("relation")),
            decode_values(record.get("values")),
            _check_number(record.get("importance", 0.0), "importance"),
            _check_number(record.get("probability", 1.0), "probability"),
        )
    if kind == "removal":
        return Removal(
            _check_relation(record.get("relation")),
            _check_label(record.get("label")),
        )
    if kind == "update":
        importance = record.get("importance")
        probability = record.get("probability")
        return Update(
            _check_relation(record.get("relation")),
            _check_label(record.get("label")),
            decode_values(record.get("values")),
            None if importance is None else _check_number(importance, "importance"),
            None if probability is None else _check_number(probability, "probability"),
        )
    raise CodecError(f"unknown stream-op kind {kind!r}")


def encode_ops(ops: Iterable[object]) -> List[dict]:
    """Encode a batch of ops to record form."""
    return [encode_op(op) for op in ops]


def decode_ops(records: Iterable[dict]) -> List[StreamOp]:
    """Decode a batch of record dicts to typed ops."""
    return [decode_op(record) for record in records]


# ---------------------------------------------------------------------- #
# wire form (the serving protocol's positional entries)
# ---------------------------------------------------------------------- #
def arrival_from_wire(entry: object) -> Arrival:
    """``[relation, values, importance?, probability?]`` → ``Arrival``."""
    shape = "ingest entries must be [relation, values, importance?, probability?]"
    if not isinstance(entry, (list, tuple)) or not 2 <= len(entry) <= 4:
        raise CodecError(shape)
    relation, values = entry[0], entry[1]
    if not isinstance(values, (list, tuple)):
        raise CodecError(shape)
    extras = [
        _check_number(extra, "importance/probability") for extra in entry[2:]
    ]
    return Arrival(_check_relation(relation), decode_values(values), *extras)


def removal_from_wire(entry: object) -> Removal:
    """``[relation, label]`` → ``Removal``."""
    if not isinstance(entry, (list, tuple)) or len(entry) != 2:
        raise CodecError("retract entries must be [relation, label] pairs")
    return Removal(_check_relation(entry[0]), _check_label(entry[1]))


def update_from_wire(entry: object) -> Update:
    """``[relation, label, values, importance?, probability?]`` → ``Update``."""
    shape = "update entries must be [relation, label, values] triples"
    if not isinstance(entry, (list, tuple)) or not 3 <= len(entry) <= 5:
        raise CodecError(shape)
    relation, label, values = entry[0], entry[1], entry[2]
    if not isinstance(values, (list, tuple)):
        raise CodecError(shape)
    extras = [
        _check_number(extra, "importance/probability") for extra in entry[3:]
    ]
    return Update(
        _check_relation(relation), _check_label(label), decode_values(values), *extras
    )


def op_to_wire(op: object) -> list:
    """Typed op → the positional wire entry the serving protocol expects."""
    op = normalize_stream_op(op)
    if isinstance(op, Arrival):
        entry: list = [op.relation_name, encode_values(op.values)]
        if op.importance or op.probability != 1.0:
            entry.append(float(op.importance))
        if op.probability != 1.0:
            entry.append(float(op.probability))
        return entry
    if isinstance(op, Removal):
        return [op.relation_name, op.label]
    entry = [op.relation_name, op.label, encode_values(op.values)]
    if op.probability is not None and op.importance is None:
        # Positional wire entries cannot skip the importance slot; "keep the
        # stored importance but change probability" has no wire spelling.
        raise CodecError(
            "wire update entries cannot carry probability without importance"
        )
    if op.importance is not None:
        entry.append(float(op.importance))
    if op.probability is not None:
        entry.append(float(op.probability))
    return entry
