"""The durable store: one data directory tying WAL and snapshots together.

Layout of a data directory::

    <data_dir>/
        wal.log               # append-only framed stream-op records
        snapshot-00000001.json
        snapshot-00000002.json  # last KEEP_SNAPSHOTS retained

The store is deliberately ignorant of the serving layer: whoever owns it
passes a *state provider* (anything with a ``durable_state()`` method —
in practice :class:`repro.service.server.QueryServer`) when asking for a
snapshot, so ``repro.storage`` never imports ``repro.service``.

The primary never truncates or rewrites ``wal.log`` while running (torn
tails are trimmed once, during its own recovery, before the appender is
opened) — that append-only discipline is what makes the same file safe
for followers to tail concurrently.  Log rotation/compaction after a
snapshot is future work; see the README durability section.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

from repro.storage.snapshot import (
    list_snapshots,
    write_snapshot,
)
from repro.storage.wal import DEFAULT_FSYNC_EVERY, WAL_NAME, WriteAheadLog

#: Default snapshot cadence: one snapshot per this many WAL records.
DEFAULT_SNAPSHOT_EVERY = 64


class RecoveryError(Exception):
    """A data directory that cannot be recovered into a consistent server."""


class DurableStore:
    """Owner-side durability for one server process."""

    def __init__(
        self,
        data_dir: str,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        snapshot_every: Optional[int] = DEFAULT_SNAPSHOT_EVERY,
        registry=None,
    ):
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.snapshot_every = snapshot_every
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self.wal = WriteAheadLog(
            os.path.join(data_dir, WAL_NAME), fsync_every=fsync_every, registry=registry
        )
        existing = list_snapshots(data_dir)
        self._snapshot_seq = existing[0][0] if existing else 0
        self.ops_since_snapshot = 0
        self.snapshots_written = 0
        #: Filled in by recovery (``open_durable_server``) for ``stats``.
        self.recovery_info: dict = {}
        self._m_snapshots = registry.counter(
            "repro_snapshots_total", "Snapshots written."
        )
        self._m_snapshot_seconds = registry.gauge(
            "repro_snapshot_seconds", "Duration of the most recent snapshot write."
        )
        self._m_snapshot_offset = registry.gauge(
            "repro_snapshot_wal_offset",
            "WAL offset the most recent snapshot is consistent with.",
        )

    @property
    def closed(self) -> bool:
        return self.wal.closed

    def record(self, kind: str, ops: Iterable[object], generation) -> int:
        """Append one applied batch to the WAL; returns the new offset."""
        offset = self.wal.append(kind, ops, generation)
        self.ops_since_snapshot += 1
        return offset

    def maybe_snapshot(self, state) -> Optional[dict]:
        """Snapshot when the cadence counter fills; no-op otherwise."""
        if self.snapshot_every is None:
            return None
        if self.ops_since_snapshot < self.snapshot_every:
            return None
        return self.snapshot_now(state)

    def snapshot_now(self, state) -> dict:
        """Write a snapshot of ``state`` consistent with the current WAL.

        The WAL is fsynced first so ``wal_offset`` never points past
        durable bytes; on load, every record ≤ the offset is already folded
        into the snapshot and replay starts exactly after it.
        """
        started = time.monotonic()
        self.wal.sync()
        payload = state.durable_state()
        payload["wal_offset"] = self.wal.offset
        payload["created"] = time.time()
        self._snapshot_seq += 1
        path = write_snapshot(self.data_dir, payload, self._snapshot_seq)
        self.ops_since_snapshot = 0
        self.snapshots_written += 1
        elapsed = time.monotonic() - started
        self._m_snapshots.inc()
        self._m_snapshot_seconds.set(elapsed)
        self._m_snapshot_offset.set(self.wal.offset)
        return {
            "snapshot": os.path.basename(path),
            "seq": self._snapshot_seq,
            "wal_offset": self.wal.offset,
            "seconds": elapsed,
        }

    def close(self) -> None:
        self.wal.close()

    def stats(self) -> dict:
        return {
            "data_dir": self.data_dir,
            "wal": self.wal.stats(),
            "snapshot_seq": self._snapshot_seq,
            "snapshots_written": self.snapshots_written,
            "snapshot_every": self.snapshot_every,
            "ops_since_snapshot": self.ops_since_snapshot,
            "recovery": dict(self.recovery_info),
        }
