"""Dirty-data workloads for the approximate full disjunction (Section 6).

The motivating scenario of Section 6 is information integration from wrapped
web sources: the same entity appears in several sources with spelling noise,
and each source has a reliability (a probability that its tuples are correct).
This module generates such data: a set of entities, one relation per source,
each source reporting a subset of the entities with typo-corrupted keys and a
source-specific tuple probability.

With the :class:`~repro.core.approx_join.EditDistanceSimilarity` similarity
and :class:`~repro.core.approx_join.MinJoin`, lowering the threshold ``τ``
re-links the corrupted records that the exact full disjunction keeps apart —
the behaviour experiment E4 measures.
"""

from __future__ import annotations

import random
import string
from typing import List, Optional, Sequence

from repro.relational.database import Database
from repro.relational.nulls import NULL
from repro.relational.relation import Relation


def corrupt_string(value: str, edits: int, rng: random.Random) -> str:
    """Apply ``edits`` random character-level edits (substitute/insert/delete/duplicate)."""
    corrupted = list(value)
    for _ in range(edits):
        if not corrupted:
            corrupted.append(rng.choice(string.ascii_lowercase))
            continue
        position = rng.randrange(len(corrupted))
        operation = rng.choice(("substitute", "insert", "delete", "duplicate"))
        if operation == "substitute":
            corrupted[position] = rng.choice(string.ascii_lowercase)
        elif operation == "insert":
            corrupted.insert(position, rng.choice(string.ascii_lowercase))
        elif operation == "delete" and len(corrupted) > 1:
            del corrupted[position]
        else:
            corrupted.insert(position, corrupted[position])
    return "".join(corrupted)


def dirty_sources_database(
    entities: int = 12,
    sources: int = 3,
    coverage: float = 0.8,
    typo_rate: float = 0.3,
    max_edits: int = 1,
    null_rate: float = 0.05,
    seed: int = 0,
    source_reliability: Optional[Sequence[float]] = None,
) -> Database:
    """Generate ``sources`` relations describing the same ``entities`` with noise.

    Every source relation has the schema ``(Entity, F_j)`` — the shared key
    plus one source-specific attribute — so the clean data would join
    perfectly on ``Entity``.  Each source covers a random ``coverage``
    fraction of the entities, corrupts the key with probability ``typo_rate``
    (up to ``max_edits`` edits), nulls it with probability ``null_rate`` and
    stamps its tuples with the source's reliability as ``prob``.
    """
    if sources < 2:
        raise ValueError("need at least two sources to integrate")
    rng = random.Random(seed)
    # Entity keys carry a long random body so that *different* entities are
    # far apart under edit distance (similarity well below any sensible τ)
    # while a one-or-two-character typo keeps the similarity high.  Purely
    # sequential names like "entity_003"/"entity_007" would sit one edit
    # apart and make every pair of entities look like a near-duplicate.
    names = [
        "entity_" + "".join(rng.choice(string.ascii_lowercase) for _ in range(10))
        for _ in range(entities)
    ]
    if source_reliability is None:
        source_reliability = [round(0.95 - 0.1 * j, 2) for j in range(sources)]
    database = Database()
    for source_index in range(sources):
        relation = Relation(
            f"Source{source_index + 1}",
            ["Entity", f"F{source_index + 1}"],
            label_prefix=f"t{source_index + 1}_",
        )
        reliability = source_reliability[source_index % len(source_reliability)]
        for entity_index, name in enumerate(names):
            if rng.random() > coverage:
                continue
            key: object = name
            if rng.random() < typo_rate:
                key = corrupt_string(name, rng.randint(1, max_edits), rng)
            if rng.random() < null_rate:
                key = NULL
            payload = f"s{source_index + 1}_fact_{entity_index}"
            relation.add([key, payload], probability=reliability)
        database.add_relation(relation)
    return database


def clean_and_dirty_pair(
    entities: int = 12,
    sources: int = 3,
    typo_rate: float = 0.3,
    seed: int = 0,
) -> List[Database]:
    """Return ``[clean, dirty]`` databases over the same entities.

    The clean database has ``typo_rate=0`` so its exact full disjunction is
    the ground truth the approximate run on the dirty database tries to
    recover; used by tests and by experiment E4's recall measure.
    """
    clean = dirty_sources_database(
        entities=entities, sources=sources, coverage=1.0, typo_rate=0.0,
        null_rate=0.0, seed=seed,
    )
    dirty = dirty_sources_database(
        entities=entities, sources=sources, coverage=1.0, typo_rate=typo_rate,
        null_rate=0.0, seed=seed,
    )
    return [clean, dirty]
