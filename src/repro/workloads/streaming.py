"""Streaming ingest: tuples arrive while results are being emitted.

The paper's guarantee is *incremental delivery on a static database*; this
workload exercises the next step towards a production system: the database
keeps growing while the full disjunction is being served.  Two pieces make
that cheap:

* **append-only catalog maintenance** —
  :meth:`~repro.relational.database.Database.add_tuple` extends the interned
  catalog's ids and bitmatrices in place, so ingesting N tuples performs
  exactly one initial catalog build (``Database.catalog_rebuilds``) instead
  of N rebuilds, and every tuple set interned before an arrival stays valid;
* **monotonicity of the full disjunction's support** — adding tuples can add
  new results and extend old ones, but a previously emitted set remains a
  join-consistent, connected answer over the data that existed when it was
  emitted.  The replay driver therefore emits each distinct result set the
  first time it appears and never retracts.

:func:`streaming_chain_workload` and :func:`streaming_star_workload` generate
a base database plus an arrival sequence; :func:`replay_stream` ingests the
arrivals batch by batch, recomputing through any execution backend
(:mod:`repro.exec`) and yielding events as they happen.  The CLI exposes the
driver as ``repro stream``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple as TupleType,
    Union,
)

from repro.relational.database import Database
from repro.core.full_disjunction import full_disjunction_sets
from repro.core.incremental import FDStatistics
from repro.core.tupleset import TupleSet
from repro.workloads.generators import chain_database, star_database

class Arrival(NamedTuple):
    """One streamed tuple: target relation, values, and ranking metadata.

    ``importance`` and ``prob`` ride along so a replayed database is
    equivalent to one that never streamed (ranking functions read
    ``imp(t)``; approximate joins read ``prob(t)``).
    """

    relation_name: str
    values: TupleType[object, ...]
    importance: float = 0.0
    probability: float = 1.0


class Removal(NamedTuple):
    """One streamed deletion: the tuple labelled ``label`` leaves ``relation_name``.

    Applied through :meth:`~repro.relational.database.Database.remove_tuple`
    — an append-only catalog tombstone plus an epoch bump; previously emitted
    results containing the tuple are *retracted* from the stream.
    """

    relation_name: str
    label: str


class Update(NamedTuple):
    """One streamed in-place update: the tuple keeps its label, values change.

    Applied through :meth:`~repro.relational.database.Database.update_tuple`
    — downstream this is exactly a deletion of the old incarnation plus an
    arrival of the new one, in a single epoch bump.  ``importance`` /
    ``probability`` of ``None`` keep the old tuple's values.
    """

    relation_name: str
    label: str
    values: TupleType[object, ...]
    importance: Optional[float] = None
    probability: Optional[float] = None


#: Anything a stream batch may carry: an arrival (also as a plain
#: ``(relation, values)`` pair), a deletion, or an in-place update.
StreamOp = Union[Arrival, Removal, Update, tuple]


def _tuple_identity(t) -> tuple:
    """What makes a tuple "the same row" across recomputes.

    Importance and probability participate alongside the values: a
    score-only in-place update is still a mutation (rankings and
    approximate joins read those fields), so the result built from the old
    incarnation must not alias the one built from the new.
    """
    return (t.relation_name, t.label, t.values, t.importance, t.probability)


def result_key(tuple_set: TupleSet) -> frozenset:
    """The identity a result keeps across engine re-runs.

    The shared cross-recompute result identity: the streaming reference
    uses it to diff consecutive recomputes (retract vs emit) and the prefix
    cache's revalidation tail uses it to deduplicate a fresh run against a
    served prefix.  An in-place update (same label; new values, importance
    or probability) therefore retracts the old result and emits the new one
    instead of silently aliasing them.
    """
    return frozenset(_tuple_identity(t) for t in tuple_set)


#: Backwards-compatible private alias (pre-existing internal name).
_event_key = result_key


@dataclass
class StreamingWorkload:
    """A base database plus the tuples that will arrive while it is served."""

    database: Database
    arrivals: List[Arrival]

    def total_tuples(self) -> int:
        """Tuples in the fully ingested database."""
        return self.database.tuple_count() + len(self.arrivals)


def hold_back_arrivals(database: Database, fraction: float, interleave_seed: int = 0) -> StreamingWorkload:
    """Split ``database`` into a base prefix and an interleaved arrival stream.

    The last ``fraction`` of every relation's tuples (at least one per
    relation when possible, never all of them) becomes the arrival stream,
    interleaved round-robin across relations so consecutive arrivals hit
    different relations — the adversarial case for snapshot invalidation.
    """
    if not (0.0 <= fraction < 1.0):
        raise ValueError(f"arrival fraction must be in [0, 1), got {fraction}")
    base = Database()
    per_relation: List[List[Arrival]] = []
    for relation in database.relations:
        tuples = list(relation)
        # The epsilon guards against float dust in derived fractions
        # (1 - 4/5 is 0.19999…, whose truncation would hold back nothing).
        held = int(len(tuples) * fraction + 1e-9)
        if fraction > 0 and held == 0 and len(tuples) > 1:
            held = 1
        held = min(held, max(len(tuples) - 1, 0))
        kept = tuples[: len(tuples) - held]
        fresh = type(relation)(
            relation.name, relation.schema, label_prefix=relation._label_prefix
        )
        for t in kept:
            fresh.add(t.values, label=t.label, importance=t.importance,
                      probability=t.probability)
        base.add_relation(fresh)
        per_relation.append(
            [
                Arrival(relation.name, t.values, t.importance, t.probability)
                for t in tuples[len(tuples) - held:]
            ]
        )
    arrivals: List[Arrival] = []
    cursor = 0
    while any(per_relation):
        bucket = per_relation[cursor % len(per_relation)]
        if bucket:
            arrivals.append(bucket.pop(0))
        cursor += 1
    return StreamingWorkload(database=base, arrivals=arrivals)


def streaming_chain_workload(
    relations: int = 3,
    base_tuples: int = 4,
    arrivals: int = 6,
    domain_size: int = 3,
    null_rate: float = 0.1,
    seed: int = 0,
) -> StreamingWorkload:
    """A chain database whose last ``arrivals`` tuples arrive as a stream."""
    total = base_tuples + -(-arrivals // relations)  # ceil-divide the arrivals
    database = chain_database(
        relations=relations,
        tuples_per_relation=total,
        domain_size=domain_size,
        null_rate=null_rate,
        seed=seed,
    )
    workload = hold_back_arrivals(database, fraction=1.0 - base_tuples / total)
    workload.arrivals = workload.arrivals[:arrivals]
    return workload


def streaming_star_workload(
    spokes: int = 3,
    base_tuples: int = 3,
    arrivals: int = 6,
    hub_domain: int = 2,
    seed: int = 0,
) -> StreamingWorkload:
    """A star database whose last ``arrivals`` tuples arrive as a stream."""
    total = base_tuples + -(-arrivals // spokes)
    database = star_database(
        spokes=spokes,
        tuples_per_relation=total,
        hub_domain=hub_domain,
        seed=seed,
    )
    workload = hold_back_arrivals(database, fraction=1.0 - base_tuples / total)
    workload.arrivals = workload.arrivals[:arrivals]
    return workload


def inject_mutations(
    workload: StreamingWorkload,
    mutations: int,
    seed: int = 0,
    update_fraction: float = 0.5,
) -> List[StreamOp]:
    """Interleave deletions and in-place updates into an arrival stream.

    Picks ``mutations`` distinct *base* tuples (present before any arrival,
    so every target exists whenever its op fires), turns a ``seed``-chosen
    ``update_fraction`` of them into :class:`Update` ops — each non-null
    value gains a ``*`` suffix, a genuinely different row — and the rest
    into :class:`Removal` ops, then spreads the mutations evenly through a
    copy of ``workload.arrivals``.  The result is the mixed op list
    ``repro stream --mutations`` and the E12 benchmark replay.
    """
    if mutations < 0:
        raise ValueError(f"mutations must be non-negative, got {mutations}")
    targets = [
        (relation.name, t)
        for relation in workload.database.relations
        for t in relation
    ]
    if mutations > len(targets):
        raise ValueError(
            f"cannot mutate {mutations} tuples: the base database has "
            f"only {len(targets)}"
        )
    rng = random.Random(seed)
    chosen = rng.sample(targets, mutations)
    ops: List[StreamOp] = []
    for relation_name, t in chosen:
        if rng.random() < update_fraction:
            from repro.relational.nulls import is_null

            values = tuple(
                value if is_null(value) else f"{value}*" for value in t.values
            )
            ops.append(Update(relation_name, t.label, values))
        else:
            ops.append(Removal(relation_name, t.label))
    mixed: List[StreamOp] = list(workload.arrivals)
    # Spread the mutations evenly, never all bunched at either end.
    step = max(1, (len(mixed) + 1) // (mutations + 1)) if mutations else 1
    for index, op in enumerate(ops):
        mixed.insert(min((index + 1) * step + index, len(mixed)), op)
    return mixed


@dataclass
class IngestEvent:
    """A batch of stream operations (arrivals, deletions, updates) was applied."""

    applied: int
    total_applied: int


@dataclass
class ResultEvent:
    """A result set appeared (``kind="emit"``) or was withdrawn (``kind="retract"``).

    ``score`` carries the result's rank on ranked streams (``None`` on
    unranked ones).  A ``retract`` event names a previously emitted result
    that contained a deleted tuple; the *net* stream — emits minus retracts
    — always equals a full recompute on the current database.
    """

    tuple_set: TupleSet
    after_arrivals: int
    score: Optional[float] = None
    kind: str = "emit"


StreamEvent = Union[IngestEvent, ResultEvent]


@dataclass
class StreamSummary:
    """Final state of one :func:`replay_stream` run."""

    results: List[TupleSet] = field(default_factory=list)
    arrivals_applied: int = 0
    catalog_rebuilds: int = 0
    statistics: FDStatistics = field(default_factory=FDStatistics)


def apply_stream_op(database: Database, op: StreamOp):
    """Apply one stream operation to ``database`` (in-place catalog maintenance).

    Plain ``(relation, values, ...)`` tuples are accepted as arrivals; typed
    :class:`Removal` and :class:`Update` ops dispatch to the tombstoning
    mutation entry points.  Normalization goes through the storage codec —
    the same canonicalization the WAL and the wire handlers use, so every
    consumer of stream ops agrees on one op vocabulary.
    """
    from repro.storage.codec import normalize_stream_op

    op = normalize_stream_op(op)
    if isinstance(op, Removal):
        return database.remove_tuple(op.relation_name, op.label)
    if isinstance(op, Update):
        return database.update_tuple(
            op.relation_name,
            op.label,
            op.values,
            importance=op.importance,
            probability=op.probability,
        )
    return database.add_tuple(
        op.relation_name,
        op.values,
        importance=op.importance,
        probability=op.probability,
    )


def replay_stream(
    database: Database,
    arrivals: Sequence[StreamOp],
    batch_size: int = 1,
    use_index: bool = False,
    backend=None,
    summary: Optional[StreamSummary] = None,
    ranking=None,
) -> Iterator[StreamEvent]:
    """Serve the full disjunction while applying ``arrivals`` batch by batch.

    This is the recompute *reference* the delta maintainer is checked
    against: each batch of stream operations — arrivals, and with
    :class:`Removal` / :class:`Update` ops also deletions and in-place
    updates — is applied through the in-place catalog maintenance entry
    points, the full disjunction is recomputed through ``backend``, and the
    event stream is the diff against the previous recompute: a ``retract``
    :class:`ResultEvent` for every previously emitted result that
    disappeared, then an ``emit`` event for every new one.  Events
    interleave :class:`IngestEvent` and :class:`ResultEvent` in stream
    order, and the net emitted set always equals the current database's full
    disjunction.

    With a ``ranking`` (a monotonically c-determined
    :class:`~repro.core.ranking.RankingFunction`), each recomputation runs
    the ranked engine instead, and the batch's new results are emitted in
    canonical rank order — sorted by ``(-score, sort key)``, so rank ties
    land in a deterministic order the delta-maintained counterpart
    (:func:`repro.service.delta.incremental_replay_stream`) reproduces
    exactly.  ``ResultEvent.score`` carries each result's rank.

    Pass a :class:`StreamSummary` to collect the final (net) result list,
    the operation count, the engine statistics, and the number of catalog
    rebuilds the run performed — exactly one (the initial build) when the
    database's catalog was not built before the call.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if summary is None:
        summary = StreamSummary()
    if ranking is not None:
        ranking.require_monotonically_c_determined()
    rebuilds_before = database.catalog_rebuilds
    database.catalog()  # the single initial build
    # Maintained eagerly (not just on exhaustion) so a partially consumed
    # stream still reports the builds that already happened.
    summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before

    #: key -> (tuple set, score) of every currently-standing emitted result,
    #: in emission order (dicts preserve insertion order).
    seen: "dict" = {}

    def recompute() -> List[TupleType[TupleSet, Optional[float]]]:
        if ranking is not None:
            from repro.core.priority import priority_incremental_fd

            return list(
                priority_incremental_fd(
                    database,
                    ranking,
                    use_index=use_index,
                    backend=backend,
                    statistics=summary.statistics,
                )
            )
        return [
            (tuple_set, None)
            for tuple_set in full_disjunction_sets(
                database,
                use_index=use_index,
                backend=backend,
                statistics=summary.statistics,
            )
        ]

    def emit(after_arrivals: int) -> Iterator[ResultEvent]:
        current = recompute()
        # Retract exactly the standing results that lost a member tuple to a
        # deletion or an update (score-only updates included).  A result
        # that merely became non-maximal under later *arrivals* stays, per
        # the monotone-emission contract: it remains a join-consistent,
        # connected answer over the data that existed when it was emitted —
        # and the delta maintainer keeps it for the same reason.
        live = {_tuple_identity(t) for t in database.tuples()}
        for key in [key for key in seen if not key <= live]:
            tuple_set, score = seen.pop(key)
            try:
                summary.results.remove(tuple_set)
            except ValueError:  # pragma: no cover - defensive
                pass
            yield ResultEvent(
                tuple_set=tuple_set,
                after_arrivals=after_arrivals,
                score=score,
                kind="retract",
            )
        fresh = [
            (tuple_set, score)
            for tuple_set, score in current
            if _event_key(tuple_set) not in seen
        ]
        if ranking is not None:
            # The engine emits in rank order already; re-sorting with the
            # sort key as tie-break canonicalises the order *within* equal
            # scores.
            from repro.core.ranking import canonical_rank_key

            fresh.sort(key=canonical_rank_key)
        for tuple_set, score in fresh:
            seen[_event_key(tuple_set)] = (tuple_set, score)
            summary.results.append(tuple_set)
            yield ResultEvent(
                tuple_set=tuple_set, after_arrivals=after_arrivals, score=score
            )

    yield from emit(after_arrivals=0)
    position = 0
    while position < len(arrivals):
        batch = arrivals[position : position + batch_size]
        for op in batch:
            apply_stream_op(database, op)
        position += len(batch)
        summary.arrivals_applied = position
        summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before
        yield IngestEvent(applied=len(batch), total_applied=position)
        yield from emit(after_arrivals=position)
