"""Streaming ingest: tuples arrive while results are being emitted.

The paper's guarantee is *incremental delivery on a static database*; this
workload exercises the next step towards a production system: the database
keeps growing while the full disjunction is being served.  Two pieces make
that cheap:

* **append-only catalog maintenance** —
  :meth:`~repro.relational.database.Database.add_tuple` extends the interned
  catalog's ids and bitmatrices in place, so ingesting N tuples performs
  exactly one initial catalog build (``Database.catalog_rebuilds``) instead
  of N rebuilds, and every tuple set interned before an arrival stays valid;
* **monotonicity of the full disjunction's support** — adding tuples can add
  new results and extend old ones, but a previously emitted set remains a
  join-consistent, connected answer over the data that existed when it was
  emitted.  The replay driver therefore emits each distinct result set the
  first time it appears and never retracts.

:func:`streaming_chain_workload` and :func:`streaming_star_workload` generate
a base database plus an arrival sequence; :func:`replay_stream` ingests the
arrivals batch by batch, recomputing through any execution backend
(:mod:`repro.exec`) and yielding events as they happen.  The CLI exposes the
driver as ``repro stream``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple as TupleType,
    Union,
)

from repro.relational.database import Database
from repro.core.full_disjunction import full_disjunction_sets
from repro.core.incremental import FDStatistics
from repro.core.tupleset import TupleSet
from repro.workloads.generators import chain_database, star_database

class Arrival(NamedTuple):
    """One streamed tuple: target relation, values, and ranking metadata.

    ``importance`` and ``prob`` ride along so a replayed database is
    equivalent to one that never streamed (ranking functions read
    ``imp(t)``; approximate joins read ``prob(t)``).
    """

    relation_name: str
    values: TupleType[object, ...]
    importance: float = 0.0
    probability: float = 1.0


@dataclass
class StreamingWorkload:
    """A base database plus the tuples that will arrive while it is served."""

    database: Database
    arrivals: List[Arrival]

    def total_tuples(self) -> int:
        """Tuples in the fully ingested database."""
        return self.database.tuple_count() + len(self.arrivals)


def hold_back_arrivals(database: Database, fraction: float, interleave_seed: int = 0) -> StreamingWorkload:
    """Split ``database`` into a base prefix and an interleaved arrival stream.

    The last ``fraction`` of every relation's tuples (at least one per
    relation when possible, never all of them) becomes the arrival stream,
    interleaved round-robin across relations so consecutive arrivals hit
    different relations — the adversarial case for snapshot invalidation.
    """
    if not (0.0 <= fraction < 1.0):
        raise ValueError(f"arrival fraction must be in [0, 1), got {fraction}")
    base = Database()
    per_relation: List[List[Arrival]] = []
    for relation in database.relations:
        tuples = list(relation)
        # The epsilon guards against float dust in derived fractions
        # (1 - 4/5 is 0.19999…, whose truncation would hold back nothing).
        held = int(len(tuples) * fraction + 1e-9)
        if fraction > 0 and held == 0 and len(tuples) > 1:
            held = 1
        held = min(held, max(len(tuples) - 1, 0))
        kept = tuples[: len(tuples) - held]
        fresh = type(relation)(
            relation.name, relation.schema, label_prefix=relation._label_prefix
        )
        for t in kept:
            fresh.add(t.values, label=t.label, importance=t.importance,
                      probability=t.probability)
        base.add_relation(fresh)
        per_relation.append(
            [
                Arrival(relation.name, t.values, t.importance, t.probability)
                for t in tuples[len(tuples) - held:]
            ]
        )
    arrivals: List[Arrival] = []
    cursor = 0
    while any(per_relation):
        bucket = per_relation[cursor % len(per_relation)]
        if bucket:
            arrivals.append(bucket.pop(0))
        cursor += 1
    return StreamingWorkload(database=base, arrivals=arrivals)


def streaming_chain_workload(
    relations: int = 3,
    base_tuples: int = 4,
    arrivals: int = 6,
    domain_size: int = 3,
    null_rate: float = 0.1,
    seed: int = 0,
) -> StreamingWorkload:
    """A chain database whose last ``arrivals`` tuples arrive as a stream."""
    total = base_tuples + -(-arrivals // relations)  # ceil-divide the arrivals
    database = chain_database(
        relations=relations,
        tuples_per_relation=total,
        domain_size=domain_size,
        null_rate=null_rate,
        seed=seed,
    )
    workload = hold_back_arrivals(database, fraction=1.0 - base_tuples / total)
    workload.arrivals = workload.arrivals[:arrivals]
    return workload


def streaming_star_workload(
    spokes: int = 3,
    base_tuples: int = 3,
    arrivals: int = 6,
    hub_domain: int = 2,
    seed: int = 0,
) -> StreamingWorkload:
    """A star database whose last ``arrivals`` tuples arrive as a stream."""
    total = base_tuples + -(-arrivals // spokes)
    database = star_database(
        spokes=spokes,
        tuples_per_relation=total,
        hub_domain=hub_domain,
        seed=seed,
    )
    workload = hold_back_arrivals(database, fraction=1.0 - base_tuples / total)
    workload.arrivals = workload.arrivals[:arrivals]
    return workload


@dataclass
class IngestEvent:
    """A batch of arrivals was applied to the database."""

    applied: int
    total_applied: int


@dataclass
class ResultEvent:
    """A result set appeared for the first time.

    ``score`` carries the result's rank on ranked streams (``None`` on
    unranked ones).
    """

    tuple_set: TupleSet
    after_arrivals: int
    score: Optional[float] = None


StreamEvent = Union[IngestEvent, ResultEvent]


@dataclass
class StreamSummary:
    """Final state of one :func:`replay_stream` run."""

    results: List[TupleSet] = field(default_factory=list)
    arrivals_applied: int = 0
    catalog_rebuilds: int = 0
    statistics: FDStatistics = field(default_factory=FDStatistics)


def replay_stream(
    database: Database,
    arrivals: Sequence[Arrival],
    batch_size: int = 1,
    use_index: bool = False,
    backend=None,
    summary: Optional[StreamSummary] = None,
    ranking=None,
) -> Iterator[StreamEvent]:
    """Serve the full disjunction while ingesting ``arrivals`` batch by batch.

    The initial database is served first; then each batch is ingested through
    :meth:`Database.add_tuple` (append-only catalog maintenance — no snapshot
    rebuild) and the full disjunction is recomputed through ``backend``,
    emitting only result sets not seen before.  Events interleave
    :class:`IngestEvent` and :class:`ResultEvent` in stream order.

    With a ``ranking`` (a monotonically c-determined
    :class:`~repro.core.ranking.RankingFunction`), each recomputation runs
    the ranked engine instead, and the batch's not-seen-before results are
    emitted in canonical rank order — sorted by ``(-score, sort key)``, so
    rank ties land in a deterministic order the delta-maintained counterpart
    (:func:`repro.service.delta.incremental_replay_stream`) reproduces
    exactly.  ``ResultEvent.score`` carries each result's rank.

    Pass a :class:`StreamSummary` to collect the final result list, the
    arrival count, the engine statistics, and the number of catalog rebuilds
    the run performed — exactly one (the initial build) when the database's
    catalog was not built before the call.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if summary is None:
        summary = StreamSummary()
    if ranking is not None:
        ranking.require_monotonically_c_determined()
    rebuilds_before = database.catalog_rebuilds
    database.catalog()  # the single initial build
    # Maintained eagerly (not just on exhaustion) so a partially consumed
    # stream still reports the builds that already happened.
    summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before

    seen = set()

    def emit(after_arrivals: int) -> Iterator[ResultEvent]:
        if ranking is not None:
            yield from emit_ranked(after_arrivals)
            return
        for tuple_set in full_disjunction_sets(
            database,
            use_index=use_index,
            backend=backend,
            statistics=summary.statistics,
        ):
            key = frozenset((t.relation_name, t.label) for t in tuple_set)
            if key in seen:
                continue
            seen.add(key)
            summary.results.append(tuple_set)
            yield ResultEvent(tuple_set=tuple_set, after_arrivals=after_arrivals)

    def emit_ranked(after_arrivals: int) -> Iterator[ResultEvent]:
        from repro.core.priority import priority_incremental_fd
        from repro.core.ranking import canonical_rank_key

        fresh = []
        for tuple_set, score in priority_incremental_fd(
            database,
            ranking,
            use_index=use_index,
            backend=backend,
            statistics=summary.statistics,
        ):
            key = frozenset((t.relation_name, t.label) for t in tuple_set)
            if key in seen:
                continue
            seen.add(key)
            fresh.append((tuple_set, score))
        # The engine emits in rank order already; re-sorting with the sort
        # key as tie-break canonicalises the order *within* equal scores.
        fresh.sort(key=canonical_rank_key)
        for tuple_set, score in fresh:
            summary.results.append(tuple_set)
            yield ResultEvent(
                tuple_set=tuple_set, after_arrivals=after_arrivals, score=score
            )

    yield from emit(after_arrivals=0)
    position = 0
    while position < len(arrivals):
        batch = arrivals[position : position + batch_size]
        for arrival in batch:
            arrival = Arrival(*arrival)  # accept plain (name, values) pairs
            database.add_tuple(
                arrival.relation_name,
                arrival.values,
                importance=arrival.importance,
                probability=arrival.probability,
            )
        position += len(batch)
        summary.arrivals_applied = position
        summary.catalog_rebuilds = database.catalog_rebuilds - rebuilds_before
        yield IngestEvent(applied=len(batch), total_applied=position)
        yield from emit(after_arrivals=position)
