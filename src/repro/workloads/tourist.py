"""The paper's running example: the tourist-information relations of Table 1.

This module encodes, verbatim:

* **Table 1** — the relations ``Climates``, ``Accommodations`` and ``Sites``
  (including the null ``Stars`` value of the Hilton);
* **Table 2** — the expected full disjunction, as frozensets of tuple labels;
* **Table 3** — the expected contents of ``Incomplete`` and ``Complete`` after
  initialization and after each iteration of
  ``IncrementalFD({Climates, Accommodations, Sites}, 1)``;
* the ranked-retrieval scenario of the introduction (a tourist preferring a
  tropical climate to a temperate one and a temperate one to a diverse one);
* **Fig. 4 / Examples 6.1 and 6.3** — the noisy variant with the misspelled
  ``Cannada`` tuple, per-tuple probabilities and pairwise similarities chosen
  to reproduce the worked numbers ``A_min(T1) = 0.5`` and
  ``A_prod(T1) = 0.32``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.relational.database import Database
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.core.approx_join import TableSimilarity

#: Table 2, first column: the full disjunction as frozensets of tuple labels.
TABLE2_TUPLE_SETS = [
    frozenset({"c1", "a1"}),
    frozenset({"c1", "a2", "s1"}),
    frozenset({"c1", "s2"}),
    frozenset({"c2", "s3"}),
    frozenset({"c2", "s4"}),
    frozenset({"c3", "a3"}),
]

#: Table 3: (snapshot label, Incomplete contents, Complete contents), each a
#: list of frozensets of tuple labels, in the paper's column order.
TABLE3_TRACE = [
    (
        "Initialization",
        [frozenset({"c1"}), frozenset({"c2"}), frozenset({"c3"})],
        [],
    ),
    (
        "Iteration 1",
        [frozenset({"c1", "a2", "s1"}), frozenset({"c1", "s2"}), frozenset({"c2"}), frozenset({"c3"})],
        [frozenset({"c1", "a1"})],
    ),
    (
        "Iteration 2",
        [frozenset({"c1", "s2"}), frozenset({"c2"}), frozenset({"c3"})],
        [frozenset({"c1", "a1"}), frozenset({"c1", "a2", "s1"})],
    ),
    (
        "Iteration 3",
        [frozenset({"c2"}), frozenset({"c3"})],
        [frozenset({"c1", "a1"}), frozenset({"c1", "a2", "s1"}), frozenset({"c1", "s2"})],
    ),
    (
        "Iteration 4",
        [frozenset({"c2", "s4"}), frozenset({"c3"})],
        [
            frozenset({"c1", "a1"}),
            frozenset({"c1", "a2", "s1"}),
            frozenset({"c1", "s2"}),
            frozenset({"c2", "s3"}),
        ],
    ),
    (
        "Iteration 5",
        [frozenset({"c3"})],
        [
            frozenset({"c1", "a1"}),
            frozenset({"c1", "a2", "s1"}),
            frozenset({"c1", "s2"}),
            frozenset({"c2", "s3"}),
            frozenset({"c2", "s4"}),
        ],
    ),
    (
        "Iteration 6",
        [],
        [
            frozenset({"c1", "a1"}),
            frozenset({"c1", "a2", "s1"}),
            frozenset({"c1", "s2"}),
            frozenset({"c2", "s3"}),
            frozenset({"c2", "s4"}),
            frozenset({"c3", "a3"}),
        ],
    ),
]

#: Climate preference of the introduction's tourist: tropical > temperate > diverse.
CLIMATE_PREFERENCE = {"tropical": 3.0, "temperate": 2.0, "diverse": 1.0}


def tourist_database() -> Database:
    """Build the three relations of Table 1 (with the paper's tuple labels)."""
    climates = Relation("Climates", ["Country", "Climate"], label_prefix="c")
    climates.add(["Canada", "diverse"], label="c1")
    climates.add(["UK", "temperate"], label="c2")
    climates.add(["Bahamas", "tropical"], label="c3")

    accommodations = Relation(
        "Accommodations", ["Country", "City", "Hotel", "Stars"], label_prefix="a"
    )
    accommodations.add(["Canada", "Toronto", "Plaza", 4], label="a1")
    accommodations.add(["Canada", "London", "Ramada", 3], label="a2")
    accommodations.add(["Bahamas", "Nassau", "Hilton", NULL], label="a3")

    sites = Relation("Sites", ["Country", "City", "Site"], label_prefix="s")
    sites.add(["Canada", "London", "Air Show"], label="s1")
    sites.add(["Canada", NULL, "Mount Logan"], label="s2")
    sites.add(["UK", "London", "Buckingham"], label="s3")
    sites.add(["UK", "London", "Hyde Park"], label="s4")

    return Database([climates, accommodations, sites])


def tourist_importance() -> Dict[str, float]:
    """Per-tuple importance for the introduction's ranking scenario.

    Climate tuples are scored by the tourist's climate preference; hotels by
    their star rating; sites get a small constant bonus.
    """
    importance: Dict[str, float] = {
        "c1": CLIMATE_PREFERENCE["diverse"],
        "c2": CLIMATE_PREFERENCE["temperate"],
        "c3": CLIMATE_PREFERENCE["tropical"],
        "a1": 4.0,
        "a2": 3.0,
        "a3": 0.0,
        "s1": 1.0,
        "s2": 1.0,
        "s3": 1.0,
        "s4": 1.0,
    }
    return importance


#: Per-tuple probabilities of the Fig. 4 scenario (all at least 0.5 so that the
#: worked value ``A_min({c1, a2, s2}) = 0.5`` is decided by the similarities).
FIG4_PROBABILITIES = {
    "c1": 0.7,
    "c2": 0.9,
    "c3": 0.9,
    "a1": 0.9,
    "a2": 0.9,
    "a3": 0.8,
    "s1": 0.9,
    "s2": 0.6,
    "s3": 0.9,
    "s4": 0.9,
}

#: Pairwise similarities of Fig. 4 (Examples 6.1 and 6.3).  The values satisfy
#: the worked examples: A_min({c1, a2, s2}) = 0.5, A_prod({c1, a2, s2}) = 0.32,
#: and with τ = 0.4 the maximal A_prod-qualifying subsets of {c1, s1, a2} ∪ {s2}
#: containing s2 are {c1, s2} and {s2, a2}.
FIG4_SIMILARITIES = [
    ("c1", "a2", 0.5),
    ("c1", "s2", 0.8),
    ("a2", "s2", 0.8),
    ("c1", "a1", 0.7),
    ("c1", "s1", 0.9),
    ("a2", "s1", 0.9),
    ("a1", "s1", 0.0),
    ("a1", "s2", 0.7),
    ("s1", "s2", 0.0),
]


def noisy_tourist_database() -> Database:
    """The Fig. 4 variant: tuple ``c1`` is misspelled ``Cannada`` and tuples carry probabilities."""
    climates = Relation("Climates", ["Country", "Climate"], label_prefix="c")
    climates.add(["Cannada", "diverse"], label="c1", probability=FIG4_PROBABILITIES["c1"])
    climates.add(["UK", "temperate"], label="c2", probability=FIG4_PROBABILITIES["c2"])
    climates.add(["Bahamas", "tropical"], label="c3", probability=FIG4_PROBABILITIES["c3"])

    accommodations = Relation(
        "Accommodations", ["Country", "City", "Hotel", "Stars"], label_prefix="a"
    )
    accommodations.add(
        ["Canada", "Toronto", "Plaza", 4], label="a1", probability=FIG4_PROBABILITIES["a1"]
    )
    accommodations.add(
        ["Canada", "London", "Ramada", 3], label="a2", probability=FIG4_PROBABILITIES["a2"]
    )
    accommodations.add(
        ["Bahamas", "Nassau", "Hilton", NULL], label="a3", probability=FIG4_PROBABILITIES["a3"]
    )

    sites = Relation("Sites", ["Country", "City", "Site"], label_prefix="s")
    sites.add(["Canada", "London", "Air Show"], label="s1", probability=FIG4_PROBABILITIES["s1"])
    sites.add(["Canada", NULL, "Mount Logan"], label="s2", probability=FIG4_PROBABILITIES["s2"])
    sites.add(["UK", "London", "Buckingham"], label="s3", probability=FIG4_PROBABILITIES["s3"])
    sites.add(["UK", "London", "Hyde Park"], label="s4", probability=FIG4_PROBABILITIES["s4"])

    return Database([climates, accommodations, sites])


def noisy_tourist_similarity() -> TableSimilarity:
    """The pairwise similarity function of Fig. 4, as a lookup table.

    Pairs not listed fall back to exact matching (1 when join consistent,
    0 otherwise) via the default of 0.0 combined with the explicit entries for
    every pair Fig. 4 draws an edge for; exact-match pairs among the clean
    tuples are listed explicitly where the examples need them.
    """
    from repro.core.approx_join import ExactMatchSimilarity

    return TableSimilarity.from_pairs(FIG4_SIMILARITIES, default=ExactMatchSimilarity())


def table2_padded_rows() -> List[Dict[str, object]]:
    """The last six columns of Table 2, keyed by the tuple-set labels."""
    return [
        {
            "labels": frozenset({"c1", "a1"}),
            "Country": "Canada",
            "City": "Toronto",
            "Climate": "diverse",
            "Hotel": "Plaza",
            "Stars": 4,
            "Site": NULL,
        },
        {
            "labels": frozenset({"c1", "a2", "s1"}),
            "Country": "Canada",
            "City": "London",
            "Climate": "diverse",
            "Hotel": "Ramada",
            "Stars": 3,
            "Site": "Air Show",
        },
        {
            "labels": frozenset({"c1", "s2"}),
            "Country": "Canada",
            "City": NULL,
            "Climate": "diverse",
            "Hotel": NULL,
            "Stars": NULL,
            "Site": "Mount Logan",
        },
        {
            "labels": frozenset({"c2", "s3"}),
            "Country": "UK",
            "City": "London",
            "Climate": "temperate",
            "Hotel": NULL,
            "Stars": NULL,
            "Site": "Buckingham",
        },
        {
            "labels": frozenset({"c2", "s4"}),
            "Country": "UK",
            "City": "London",
            "Climate": "temperate",
            "Hotel": NULL,
            "Stars": NULL,
            "Site": "Hyde Park",
        },
        {
            "labels": frozenset({"c3", "a3"}),
            "Country": "Bahamas",
            "City": "Nassau",
            "Climate": "tropical",
            "Hotel": "Hilton",
            "Stars": NULL,
            "Site": NULL,
        },
    ]
