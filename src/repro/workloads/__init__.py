"""Workloads: the paper's running example and synthetic data generators."""

from repro.workloads.tourist import (
    tourist_database,
    tourist_importance,
    noisy_tourist_database,
    noisy_tourist_similarity,
    TABLE2_TUPLE_SETS,
    TABLE3_TRACE,
)
from repro.workloads.generators import (
    chain_database,
    cycle_database,
    skewed_chain_database,
    star_database,
    random_database,
)
from repro.workloads.dirty import dirty_sources_database, corrupt_string
from repro.workloads.streaming import (
    StreamingWorkload,
    StreamSummary,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)

__all__ = [
    "tourist_database",
    "tourist_importance",
    "noisy_tourist_database",
    "noisy_tourist_similarity",
    "TABLE2_TUPLE_SETS",
    "TABLE3_TRACE",
    "chain_database",
    "cycle_database",
    "skewed_chain_database",
    "star_database",
    "random_database",
    "dirty_sources_database",
    "corrupt_string",
    "StreamingWorkload",
    "StreamSummary",
    "replay_stream",
    "streaming_chain_workload",
    "streaming_star_workload",
]
