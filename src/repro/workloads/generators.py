"""Synthetic workload generators.

The paper has no empirical section, so the benchmarks of this reproduction
exercise the algorithms on synthetic databases whose shape controls the
quantities the paper reasons about:

* :func:`chain_database` — ``R_1(A_0, A_1, P_1), R_2(A_1, A_2, P_2), …``; a
  γ-acyclic schema with tunable join selectivity and null rate whose output
  grows roughly linearly with the input, the "well-behaved" regime.
* :func:`star_database` — ``R_1(Hub, X_1), …, R_n(Hub, X_n)``; every relation
  shares the single ``Hub`` attribute, so the output size is the product of
  the per-hub group sizes — exponential in ``n`` (the Section 3 regime that
  motivates input–output complexity).
* :func:`cycle_database` — ``R_i(A_i, A_{i+1 mod n})``; the smallest schemas
  that are *not* γ-acyclic, where the outerjoin baseline of [2] fails.
* :func:`random_database` — random connected schemas and data, used by the
  property-based tests to cross-check the algorithms against the oracle.

All generators take a ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.relational.database import Database
from repro.relational.nulls import NULL
from repro.relational.relation import Relation


def _maybe_null(rng: random.Random, value: object, null_rate: float) -> object:
    return NULL if rng.random() < null_rate else value


def chain_database(
    relations: int = 4,
    tuples_per_relation: int = 20,
    domain_size: int = 8,
    null_rate: float = 0.1,
    seed: int = 0,
) -> Database:
    """A chain schema ``R_j(A_{j-1}, A_j, P_j)`` with shared attributes between neighbours.

    ``domain_size`` controls join selectivity: smaller domains make more tuple
    pairs join-consistent and therefore a larger full disjunction.
    """
    if relations < 2:
        raise ValueError("a chain needs at least two relations")
    rng = random.Random(seed)
    database = Database()
    for index in range(1, relations + 1):
        relation = Relation(
            f"R{index}",
            [f"A{index - 1}", f"A{index}", f"P{index}"],
            label_prefix=f"r{index}_",
        )
        for row in range(tuples_per_relation):
            left = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            right = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            payload = f"p{index}_{row}"
            relation.add([left, right, payload])
        database.add_relation(relation)
    return database


def star_database(
    spokes: int = 4,
    tuples_per_relation: int = 6,
    hub_domain: int = 2,
    null_rate: float = 0.0,
    seed: int = 0,
) -> Database:
    """A star schema ``R_i(Hub, X_i)``: output size is exponential in ``spokes``.

    Every combination of one tuple per relation agreeing on ``Hub`` is join
    consistent and connected, so with ``g`` tuples per hub value per relation
    the full disjunction has about ``hub_domain · g^spokes`` members.
    """
    if spokes < 2:
        raise ValueError("a star needs at least two spoke relations")
    rng = random.Random(seed)
    database = Database()
    for index in range(1, spokes + 1):
        relation = Relation(
            f"S{index}", ["Hub", f"X{index}"], label_prefix=f"s{index}_"
        )
        for row in range(tuples_per_relation):
            hub = _maybe_null(rng, f"h{rng.randrange(hub_domain)}", null_rate)
            relation.add([hub, f"x{index}_{row}"])
        database.add_relation(relation)
    return database


def skewed_chain_database(
    relations: int = 4,
    tuples_per_relation: int = 12,
    hot_relation: int = 2,
    hot_factor: int = 8,
    domain_size: int = 4,
    null_rate: float = 0.1,
    seed: int = 0,
) -> Database:
    """A chain schema with one *hot* relation carrying ``hot_factor``× the tuples.

    The adversarial fixture for pass-grained parallelism: with whole passes as
    the unit of distribution the hot relation's pass dominates the makespan
    no matter how many workers run, while bucket-grained scheduling splits the
    hot pass into ranges that the whole pool can steal.  ``hot_relation`` is
    the 1-based chain position of the hot relation (``R2`` by default, so the
    skew sits mid-chain and joins in both directions).

    Used by the scale-out benchmark (E14) and the determinism-under-stealing
    tests; deterministic in ``seed`` like every generator here.
    """
    if relations < 2:
        raise ValueError("a chain needs at least two relations")
    if not 1 <= hot_relation <= relations:
        raise ValueError(
            f"hot_relation must be in 1..{relations}, got {hot_relation}"
        )
    if hot_factor < 1:
        raise ValueError(f"hot_factor must be positive, got {hot_factor}")
    rng = random.Random(seed)
    database = Database()
    for index in range(1, relations + 1):
        relation = Relation(
            f"R{index}",
            [f"A{index - 1}", f"A{index}", f"P{index}"],
            label_prefix=f"r{index}_",
        )
        rows = tuples_per_relation * (hot_factor if index == hot_relation else 1)
        for row in range(rows):
            left = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            right = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            payload = f"p{index}_{row}"
            relation.add([left, right, payload])
        database.add_relation(relation)
    return database


def cycle_database(
    relations: int = 4,
    tuples_per_relation: int = 10,
    domain_size: int = 4,
    null_rate: float = 0.05,
    seed: int = 0,
) -> Database:
    """A cyclic schema ``R_i(A_i, A_{i+1 mod n})`` — not γ-acyclic for ``n ≥ 3``."""
    if relations < 3:
        raise ValueError("a cycle needs at least three relations")
    rng = random.Random(seed)
    database = Database()
    for index in range(relations):
        nxt = (index + 1) % relations
        relation = Relation(
            f"C{index + 1}", [f"A{index}", f"A{nxt}"], label_prefix=f"c{index + 1}_"
        )
        for _ in range(tuples_per_relation):
            left = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            right = _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
            relation.add([left, right])
        database.add_relation(relation)
    return database


def random_database(
    relations: int = 3,
    attributes: int = 5,
    arity: int = 3,
    tuples_per_relation: int = 5,
    domain_size: int = 3,
    null_rate: float = 0.15,
    seed: int = 0,
    connected: bool = True,
) -> Database:
    """A random database over a shared attribute pool.

    Each relation draws ``arity`` attributes from a pool of ``attributes``
    names; when ``connected`` is true the schemas are re-drawn until the
    relation-connection graph is connected (the paper's precondition).
    """
    rng = random.Random(seed)
    pool = [f"A{index}" for index in range(attributes)]
    for _ in range(200):
        schemas: List[Sequence[str]] = []
        for _ in range(relations):
            size = min(arity, attributes)
            schemas.append(rng.sample(pool, size))
        database = Database()
        for index, schema in enumerate(schemas):
            relation = Relation(f"R{index + 1}", schema, label_prefix=f"r{index + 1}_")
            for _ in range(tuples_per_relation):
                relation.add(
                    [
                        _maybe_null(rng, f"v{rng.randrange(domain_size)}", null_rate)
                        for _ in schema
                    ]
                )
            database.add_relation(relation)
        if not connected or database.is_connected():
            return database
    raise RuntimeError(
        "could not draw a connected random schema; increase arity or lower the "
        "number of relations"
    )
