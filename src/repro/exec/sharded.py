"""The sharded backend: per-relation passes across a process pool.

Under the ``singletons`` initialization strategy the ``n`` ``IncrementalFD``
passes of the full-disjunction driver are completely independent: each pass
reads only the (immutable) database and writes only its own ``Complete`` /
``Incomplete`` containers.  This backend fans them out to a
``concurrent.futures.ProcessPoolExecutor``:

* the database — including its cached, immutable
  :class:`~repro.relational.catalog.Catalog` snapshot with the precomputed
  bitmatrices — is pickled to each worker, so workers skip the catalog build;
* each worker runs the unmodified serial/batched pass and ships back its
  results as ``(relation_name, label)`` key sets plus its
  :class:`~repro.core.incremental.FDStatistics`;
* the parent re-interns the results against its own catalog, applies the
  earlier-relation duplicate suppression, and yields pass results **in
  database relation order** — so the output sequence and the merged
  statistics are deterministic and identical to the serial driver's.

Passes are consumed as they finish but always in relation order, so the first
pass's results stream while later passes are still running.  Worker pools are
long-lived (one per worker count, shut down at interpreter exit): the
tens-of-milliseconds process spawn is paid once per Python process, not once
per call.  When the host cannot spawn processes (restricted sandboxes,
unpicklable ad-hoc databases) the backend degrades to the inherited
in-process schedule with a warning rather than failing — the schedule is a
performance choice, never a correctness one.

Per-step scheduling (``next_result``) is inherited from
:class:`~repro.exec.batched.BatchedBackend`: sharding composes with bucket
batching instead of replacing it.
"""

from __future__ import annotations

import atexit
import warnings
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple as TupleType

from repro.relational.database import Database
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.kernels import active_kernel, set_kernel
from repro.core.scanner import make_scanner
from repro.core.tupleset import TupleSet
from repro.exec.batched import BatchedBackend

#: A result shipped across the process boundary: its member tuples' keys.
ResultKeys = FrozenSet[TupleType[str, str]]

#: Long-lived worker pools, one per worker count.  Spawning processes costs
#: tens of milliseconds — paid once per Python process, not once per call.
_POOLS: Dict[int, object] = {}


def _shared_pool(max_workers: int):
    from concurrent.futures import ProcessPoolExecutor

    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
    return pool


def _discard_pool(max_workers: int) -> None:
    pool = _POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for max_workers in list(_POOLS):
        _discard_pool(max_workers)


def _singleton_passes_worker(
    database: Database,
    anchor_names: List[str],
    use_index: bool,
    block_size: Optional[int],
    batched: bool,
    kernel_name: Optional[str] = None,
) -> List[TupleType[List[ResultKeys], FDStatistics]]:
    """A chunk of ``IncrementalFD`` passes, run inside one worker process.

    Module-level so it is picklable by ``ProcessPoolExecutor``.  Shipping a
    *chunk* of anchors per task means the database (with its O(s²)-bit
    catalog matrices) is serialized once per chunk, not once per relation.
    Results are returned as frozensets of ``(relation_name, label)`` keys —
    tiny to ship, and unambiguous because labels are unique per relation.
    The parent's kernel name rides along so workers run the same inner-loop
    implementation even when the parent selected it programmatically rather
    than through the (inherited) ``REPRO_KERNEL`` environment.
    """
    if kernel_name is not None:
        set_kernel(kernel_name)
    backend = BatchedBackend() if batched else None
    outputs: List[TupleType[List[ResultKeys], FDStatistics]] = []
    for anchor_name in anchor_names:
        scanner = make_scanner(database, block_size)
        statistics = FDStatistics()
        results: List[ResultKeys] = []
        for result in incremental_fd(
            database,
            anchor_name,
            use_index=use_index,
            scanner=scanner,
            statistics=statistics,
            backend=backend,
        ):
            results.append(frozenset((t.relation_name, t.label) for t in result))
        statistics.block_reads = getattr(scanner, "block_reads", 0)
        outputs.append((results, statistics))
    return outputs


def _approx_passes_worker(
    database: Database,
    anchor_names: List[str],
    join_function,
    threshold: float,
    use_index: bool,
    kernel_name: Optional[str] = None,
) -> List[TupleType[List[ResultKeys], FDStatistics]]:
    """A chunk of ``ApproxIncrementalFD`` passes, run inside one worker process.

    Mirrors :func:`_singleton_passes_worker`: the join function rides along in
    the pickle (the stock similarity/aggregation classes are plain picklable
    objects) and the results come back as ``(relation_name, label)`` key sets.
    """
    from repro.core.approx import approx_incremental_fd

    if kernel_name is not None:
        set_kernel(kernel_name)
    backend = BatchedBackend()
    outputs: List[TupleType[List[ResultKeys], FDStatistics]] = []
    for anchor_name in anchor_names:
        statistics = FDStatistics()
        results: List[ResultKeys] = []
        for result in approx_incremental_fd(
            database,
            anchor_name,
            join_function,
            threshold,
            use_index=use_index,
            statistics=statistics,
            backend=backend,
        ):
            results.append(frozenset((t.relation_name, t.label) for t in result))
        outputs.append((results, statistics))
    return outputs


def _contiguous_chunks(items: List[str], count: int) -> List[List[str]]:
    """Split ``items`` into at most ``count`` contiguous, balanced chunks."""
    count = min(count, len(items))
    base, remainder = divmod(len(items), count)
    chunks: List[List[str]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class ShardedBackend(BatchedBackend):
    """Fan the independent per-relation passes out to worker processes."""

    name = "sharded"

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        # One fallback warning per backend instance: a streaming run pushes
        # hundreds of passes through the same backend, and a host that could
        # not spawn processes for the first one will not spawn them for the
        # rest — re-warning per pass only spams stderr.
        self._warned_fallback = False

    def __repr__(self) -> str:
        return f"ShardedBackend(max_workers={self.max_workers})"

    def run_singleton_passes(
        self,
        database: Database,
        use_index: bool = False,
        block_size: Optional[int] = None,
        statistics=None,
    ) -> Iterator[TupleSet]:
        return self._run_passes_on_pool(
            database,
            statistics,
            submit_chunk=lambda executor, chunk: executor.submit(
                _singleton_passes_worker, database, chunk, use_index, block_size,
                True, active_kernel().name,
            ),
            fallback=lambda: super(ShardedBackend, self).run_singleton_passes(
                database,
                use_index=use_index,
                block_size=block_size,
                statistics=statistics,
            ),
        )

    def run_approx_passes(
        self,
        database: Database,
        join_function,
        threshold: float,
        use_index: bool = False,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """Fan the independent ``ApproxIncrementalFD`` passes out to the pool.

        Same scaffolding and deterministic merge as
        :meth:`run_singleton_passes`; an unpicklable ad-hoc join function
        degrades to the in-process schedule exactly like a host that cannot
        spawn processes.
        """
        return self._run_passes_on_pool(
            database,
            statistics,
            submit_chunk=lambda executor, chunk: executor.submit(
                _approx_passes_worker, database, chunk, join_function, threshold,
                use_index, active_kernel().name,
            ),
            fallback=lambda: super(ShardedBackend, self).run_approx_passes(
                database,
                join_function,
                threshold,
                use_index=use_index,
                statistics=statistics,
            ),
        )

    def _run_passes_on_pool(
        self, database: Database, statistics, submit_chunk, fallback
    ) -> Iterator[TupleSet]:
        """The shared fan-out scaffolding of both pass drivers.

        Chunks the relations, submits each chunk through ``submit_chunk``,
        and merges deterministically: chunks (and passes within them) in
        relation order, results in each pass's emission order, the
        earlier-relation duplicate suppression applied in the parent, every
        result re-interned against the parent's catalog.  Chunk ``i``
        streams out while chunks ``i+1..`` are still running.  Systemic
        failures (no process spawn, unpicklable arguments) surface on the
        first chunk and degrade to ``fallback()`` — the in-process schedule
        — with a warning.
        """
        # Build the catalog *before* pickling so every worker receives the
        # precomputed bitmatrices instead of rebuilding them n times.
        catalog = database.catalog()
        label_map = {(t.relation_name, t.label): t for t in database.tuples()}
        relation_names = [relation.name for relation in database.relations]
        if not relation_names:
            return  # the result over an empty database is empty; nothing to shard
        workers = min(self.max_workers, len(relation_names))

        chunks = _contiguous_chunks(relation_names, workers)
        futures = []
        try:
            try:
                executor = _shared_pool(workers)
                futures = [submit_chunk(executor, chunk) for chunk in chunks]
                # Resolve the first chunk before yielding anything: systemic
                # failures surface here, while the fallback can still take
                # over cleanly.
                first_output = futures[0].result()
            except Exception as error:
                for future in futures:
                    future.cancel()
                futures = []
                _discard_pool(workers)
                if not self._warned_fallback:
                    self._warned_fallback = True
                    warnings.warn(
                        f"sharded backend could not use a process pool ({error!r}); "
                        "falling back to in-process passes",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                yield from fallback()
                return

            earlier: set = set()
            for index, chunk in enumerate(chunks):
                chunk_output = first_output if index == 0 else futures[index].result()
                for anchor_name, (keys_list, pass_statistics) in zip(
                    chunk, chunk_output
                ):
                    for keys in keys_list:
                        if any(relation_name in earlier for relation_name, _ in keys):
                            continue
                        yield TupleSet(
                            (label_map[key] for key in keys), catalog=catalog
                        )
                    if statistics is not None:
                        statistics.merge(pass_statistics)
                    earlier.add(anchor_name)
        finally:
            # Abandoned generators (first-k retrieval) cancel chunks not yet
            # started; the shared pool itself stays warm for the next call.
            for future in futures:
                future.cancel()
