"""The sharded backend: bucket-range work stealing across a process pool.

Under the ``singletons`` initialization strategy the ``n`` ``IncrementalFD``
passes of the full-disjunction driver are completely independent, and *within*
a pass the anchor buckets are independent too: restricting Line 9 to a subset
``B ⊆ R_i`` of anchor tuples is exactly the paper's algorithm over a database
in which ``R_i`` has been split into sub-relations (two tuples of one relation
are never join consistent, so every tuple set holds at most one ``R_i`` tuple
and all pool merges are anchor-local — see
:func:`repro.core.incremental.get_next_result`).  The restricted pass produces
precisely the ``FD_i`` members anchored in ``B``, once each.

This backend therefore distributes **bucket ranges**, not whole passes:

* :func:`plan_bucket_ranges` splits every pass's anchor tuples into
  size-weighted contiguous ranges, using the catalog's per-tuple consistency
  masks as the weight — a skewed hot bucket lands in its own range instead of
  serializing the pass.  The plan depends only on the database, never on the
  worker count.
* Every range becomes one task on the long-lived
  ``concurrent.futures.ProcessPoolExecutor``.  The executor's shared task
  queue *is* the work-stealing queue: idle workers pull the next pending
  range the moment they finish one, so a straggler range never idles the
  rest of the pool.
* The database — including its cached, immutable
  :class:`~repro.relational.catalog.Catalog` snapshot with the precomputed
  bitmatrices — is pickled **once** in the parent and shipped as bytes with
  every task; workers cache the unpickled snapshot by token, so the catalog
  is rebuilt neither per task nor per worker.
* The parent consumes futures in **plan order** (relation order, then range
  order), re-interns results against its own catalog, applies the
  earlier-relation duplicate suppression, and merges statistics range by
  range in that same fixed order — so results *and* merged
  ``FDStatistics`` (``sets_scanned`` included) are byte-identical across
  worker counts and steal interleavings.

``granularity="pass"`` retains the previous whole-pass fan-out (one task per
relation chunk, output order identical to serial); the approximate driver
always uses it — without the exact Line 14 ``JCC`` test, a similarity merge
could join candidates across anchor tuples, so bucket-splitting an approx
pass is not sound.

Worker pools are long-lived: one shared pool, sized to the most recent
request — resizing discards the old pool instead of leaking it, and
:func:`shutdown_pools` releases it eagerly (the server calls it on shutdown;
interpreter exit remains the backstop).  When the host cannot spawn processes
(restricted sandboxes, unpicklable ad-hoc databases) the backend degrades to
the inherited in-process schedule with a warning rather than failing — the
schedule is a performance choice, never a correctness one.

Per-step scheduling (``next_result``) is inherited from
:class:`~repro.exec.batched.BatchedBackend`: sharding composes with bucket
batching instead of replacing it.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import warnings
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple as TupleType

from repro.relational.database import Database
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.kernels import active_kernel, set_kernel
from repro.core.scanner import make_scanner
from repro.core.tupleset import TupleSet
from repro.exec.batched import BatchedBackend

#: A result shipped across the process boundary: its member tuples' keys.
ResultKeys = FrozenSet[TupleType[str, str]]

#: How many ranges a pass is split into when no bucket dominates.  More
#: ranges than workers is the point: the surplus is what idle workers steal.
#: The plan never depends on the worker count, so results are reproducible.
TARGET_RANGES_PER_PASS = 16

#: The one long-lived worker pool, as ``(max_workers, executor)``.  Spawning
#: processes costs tens of milliseconds — paid once per size, not per call.
_POOL: Optional[TupleType[int, object]] = None


def _shared_pool(max_workers: int):
    global _POOL
    from concurrent.futures import ProcessPoolExecutor

    if _POOL is not None and _POOL[0] != max_workers:
        # A resized worker count replaces the pool rather than leaking the
        # old one alongside it.
        shutdown_pools()
    if _POOL is None:
        _POOL = (max_workers, ProcessPoolExecutor(max_workers=max_workers))
    return _POOL[1]


def _discard_pool(max_workers: Optional[int] = None) -> None:
    """Drop the shared pool after a systemic submission failure."""
    global _POOL
    if _POOL is not None and (max_workers is None or _POOL[0] == max_workers):
        pool = _POOL[1]
        _POOL = None
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools(wait: bool = False) -> None:
    """Shut down the shared worker pool (idempotent).

    Long-running hosts — the server above all — call this on shutdown so
    worker processes die with the service instead of lingering until
    interpreter exit.  The next backend call simply spawns a fresh pool.
    """
    global _POOL
    if _POOL is None:
        return
    pool = _POOL[1]
    _POOL = None
    pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pools)


#: Parent side: tokens for pre-pickled database snapshots.
_PAYLOAD_TOKENS = itertools.count(1)

#: Worker side: the latest unpickled snapshot, keyed by its token.
_WORKER_DATABASES: Dict[TupleType[int, int], Database] = {}

#: A database snapshot in transit: ``(token, blob)`` where ``blob`` is
#: either the pickle bytes or — for databases with a durable file-backed
#: mirror — a ``(mirror path, generation)`` reference the worker maps
#: instead of unpickling (zero-copy through the OS page cache).
DatabasePayload = TupleType[TupleType[int, int], object]


def _mirror_reference(database: Database) -> Optional[TupleType[str, tuple]]:
    """``(path, generation)`` when workers can map this database's mirror.

    Requires a current catalog whose packed mirror is a durable file: the
    file then carries everything a worker needs (matrices, relation
    metadata, tuple payloads).  A writable mirror is stamped with the
    database's generation right here — it is maintained in lockstep with
    the catalog, so the file is at a database-consistent point whenever the
    catalog is current.  A read-only attachment must already carry the
    matching stamp; a mismatch means the file has moved on and the pickle
    path is the only safe transport.
    """
    if not database._catalog_is_current():
        return None
    catalog = database._catalog_cache
    mirror = catalog._packed_mirror
    if mirror is None or mirror.file is None or mirror.file.ephemeral:
        return None
    handle = mirror.file
    generation = tuple(database.generation)
    if handle.readonly:
        if tuple(handle.generation) != generation:
            return None
    else:
        handle.stamp_generation(generation)
        handle.flush()
    return os.path.abspath(handle.path), generation


def _database_payload(database: Database) -> DatabasePayload:
    """Snapshot ``database`` once; every task of the call ships the result.

    Databases with a durable file-backed mirror ship a path reference —
    workers map the same pages read-only via the OS page cache instead of
    each holding a full unpickled copy.  Everything else ships the classic
    one-time pickle.
    """
    token = (os.getpid(), next(_PAYLOAD_TOKENS))
    reference = _mirror_reference(database)
    if reference is not None:
        return token, reference
    return token, pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)


def _payload_database(payload: DatabasePayload) -> Database:
    """Worker side: materialise a snapshot once, reuse it across stolen ranges."""
    token, blob = payload
    database = _WORKER_DATABASES.get(token)
    if database is None:
        # Keep at most one cached snapshot per worker: streaming runs push a
        # fresh snapshot per pass and the old ones would only pile up.
        _WORKER_DATABASES.clear()
        if isinstance(blob, bytes):
            database = pickle.loads(blob)
        else:
            from repro.relational.catalog_file import load_database

            path, generation = blob
            database = load_database(path)
            if tuple(database.generation) != tuple(generation):
                raise RuntimeError(
                    f"mirror file {path} is at generation "
                    f"{tuple(database.generation)}, task expected {tuple(generation)}"
                )
        _WORKER_DATABASES[token] = database
    return database


def _payload_probe(payload: DatabasePayload) -> float:
    """Benchmark hook: cold worker-side payload materialisation time.

    Clears the worker's snapshot cache first, so the measurement is the
    true cold-start cost of the given transport (unpickle vs. mmap attach).
    Returns seconds.
    """
    import time

    _WORKER_DATABASES.clear()
    start = time.perf_counter()
    _payload_database(payload)
    return time.perf_counter() - start


def plan_bucket_ranges(
    database: Database, target_ranges: int = TARGET_RANGES_PER_PASS
) -> List[TupleType[str, List[List[str]]]]:
    """Partition every pass's anchor tuples into size-weighted ranges.

    Returns ``[(anchor_name, [range, ...]), ...]`` in database relation
    order; each range is a contiguous run of anchor-tuple labels in scan
    order.  A tuple's weight is ``1 +`` the number of live tuples join
    consistent with it (the catalog's per-tuple consistency mask), a cheap
    proxy for how much of the pass's work its bucket attracts.  Ranges are
    packed greedily up to ``ceil(total / target_ranges)`` — so a hot bucket
    heavier than the cap is isolated in a range of its own and cannot
    serialize the whole pass behind it.

    The plan is a pure function of the database: worker count and steal
    order never influence it, which is what makes the merged output
    byte-identical across pool sizes.
    """
    catalog = database.catalog()
    live = catalog.live_mask
    plan: List[TupleType[str, List[List[str]]]] = []
    for relation in database.relations:
        tuples = list(database.relation(relation.name))
        weights = []
        for t in tuples:
            gid = catalog.id_of(t)
            weight = 1
            if gid is not None:
                weight += bin(catalog.consistent_mask(gid) & live).count("1")
            weights.append(weight)
        cap = max(1, -(-sum(weights) // max(1, target_ranges)))
        ranges: List[List[str]] = []
        current: List[str] = []
        current_weight = 0
        for t, weight in zip(tuples, weights):
            if current and current_weight + weight > cap:
                ranges.append(current)
                current, current_weight = [], 0
            current.append(t.label)
            current_weight += weight
        if current:
            ranges.append(current)
        plan.append((relation.name, ranges))
    return plan


def _bucket_range_worker(
    payload: DatabasePayload,
    anchor_name: str,
    labels: List[str],
    use_index: bool,
    block_size: Optional[int],
    kernel_name: Optional[str] = None,
    trace: bool = False,
) -> TupleType[List[ResultKeys], FDStatistics, Optional[dict]]:
    """One bucket range of one ``IncrementalFD`` pass, inside a worker.

    Runs the batched pass restricted to the range's anchor tuples (the
    ``anchor_tuples`` bucket restriction) and ships the results back as
    frozensets of ``(relation_name, label)`` keys — tiny, and unambiguous
    because labels are unique per relation.  The parent's kernel name rides
    along so workers run the same inner-loop implementation even when the
    parent selected it programmatically.

    With ``trace=True`` the range runs under a fresh worker-local
    :class:`~repro.obs.tracing.PhaseTracer` and its span log rides home as
    the third slot — ``{"pid": worker pid, "events": [...]}`` — for the
    parent to absorb during the plan-order merge.  Untraced calls carry
    ``None`` there, keeping the future result shape uniform.
    """
    if kernel_name is not None:
        set_kernel(kernel_name)
    database = _payload_database(payload)
    label_set = frozenset(labels)
    bucket = frozenset(
        t for t in database.relation(anchor_name) if t.label in label_set
    )
    scanner = make_scanner(database, block_size)
    statistics = FDStatistics()
    results: List[ResultKeys] = []

    def run() -> None:
        for result in incremental_fd(
            database,
            anchor_name,
            use_index=use_index,
            scanner=scanner,
            statistics=statistics,
            backend=BatchedBackend(),
            anchor_tuples=bucket,
        ):
            results.append(
                frozenset((t.relation_name, t.label) for t in result)
            )

    trace_payload: Optional[dict] = None
    if trace:
        from repro.obs.tracing import PhaseTracer, use_tracer

        tracer = PhaseTracer()
        with use_tracer(tracer):
            with tracer.span(
                "shard.range", "shard", anchor=anchor_name, labels=len(labels)
            ):
                run()
        trace_payload = {"pid": os.getpid(), "events": tracer.events()}
    else:
        run()
    statistics.block_reads = getattr(scanner, "block_reads", 0)
    return results, statistics, trace_payload


def _singleton_passes_worker(
    database: Database,
    anchor_names: List[str],
    use_index: bool,
    block_size: Optional[int],
    batched: bool,
    kernel_name: Optional[str] = None,
) -> List[TupleType[List[ResultKeys], FDStatistics]]:
    """A chunk of whole ``IncrementalFD`` passes (``granularity="pass"``).

    Module-level so it is picklable by ``ProcessPoolExecutor``.  Shipping a
    *chunk* of anchors per task means the database (with its O(s²)-bit
    catalog matrices) is serialized once per chunk, not once per relation.
    """
    if kernel_name is not None:
        set_kernel(kernel_name)
    backend = BatchedBackend() if batched else None
    outputs: List[TupleType[List[ResultKeys], FDStatistics]] = []
    for anchor_name in anchor_names:
        scanner = make_scanner(database, block_size)
        statistics = FDStatistics()
        results: List[ResultKeys] = []
        for result in incremental_fd(
            database,
            anchor_name,
            use_index=use_index,
            scanner=scanner,
            statistics=statistics,
            backend=backend,
        ):
            results.append(frozenset((t.relation_name, t.label) for t in result))
        statistics.block_reads = getattr(scanner, "block_reads", 0)
        outputs.append((results, statistics))
    return outputs


def _approx_passes_worker(
    database: Database,
    anchor_names: List[str],
    join_function,
    threshold: float,
    use_index: bool,
    kernel_name: Optional[str] = None,
) -> List[TupleType[List[ResultKeys], FDStatistics]]:
    """A chunk of ``ApproxIncrementalFD`` passes, run inside one worker process.

    Mirrors :func:`_singleton_passes_worker`: the join function rides along in
    the pickle (the stock similarity/aggregation classes are plain picklable
    objects) and the results come back as ``(relation_name, label)`` key sets.
    Approx passes stay whole: a similarity merge may join candidates across
    anchor tuples, so the bucket restriction is not sound for them.
    """
    from repro.core.approx import approx_incremental_fd

    if kernel_name is not None:
        set_kernel(kernel_name)
    backend = BatchedBackend()
    outputs: List[TupleType[List[ResultKeys], FDStatistics]] = []
    for anchor_name in anchor_names:
        statistics = FDStatistics()
        results: List[ResultKeys] = []
        for result in approx_incremental_fd(
            database,
            anchor_name,
            join_function,
            threshold,
            use_index=use_index,
            statistics=statistics,
            backend=backend,
        ):
            results.append(frozenset((t.relation_name, t.label) for t in result))
        outputs.append((results, statistics))
    return outputs


def _contiguous_chunks(items: List[str], count: int) -> List[List[str]]:
    """Split ``items`` into at most ``count`` contiguous, balanced chunks."""
    count = min(count, len(items))
    base, remainder = divmod(len(items), count)
    chunks: List[List[str]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class ShardedBackend(BatchedBackend):
    """Fan bucket ranges (or whole passes) out to worker processes."""

    name = "sharded"

    def __init__(self, max_workers: int = 2, granularity: str = "bucket"):
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if granularity not in ("bucket", "pass"):
            raise ValueError(
                f"granularity must be 'bucket' or 'pass', got {granularity!r}"
            )
        self.max_workers = max_workers
        self.granularity = granularity
        # One fallback warning per backend instance: a streaming run pushes
        # hundreds of passes through the same backend, and a host that could
        # not spawn processes for the first one will not spawn them for the
        # rest — re-warning per pass only spams stderr.
        self._warned_fallback = False

    def __repr__(self) -> str:
        return (
            f"ShardedBackend(max_workers={self.max_workers}, "
            f"granularity={self.granularity!r})"
        )

    def run_singleton_passes(
        self,
        database: Database,
        use_index: bool = False,
        block_size: Optional[int] = None,
        statistics=None,
    ) -> Iterator[TupleSet]:
        fallback = lambda: super(ShardedBackend, self).run_singleton_passes(  # noqa: E731
            database,
            use_index=use_index,
            block_size=block_size,
            statistics=statistics,
        )
        if self.granularity == "bucket":
            return self._run_bucket_ranges_on_pool(
                database, use_index, block_size, statistics, fallback
            )
        return self._run_passes_on_pool(
            database,
            statistics,
            submit_chunk=lambda executor, chunk: executor.submit(
                _singleton_passes_worker, database, chunk, use_index, block_size,
                True, active_kernel().name,
            ),
            fallback=fallback,
        )

    def run_approx_passes(
        self,
        database: Database,
        join_function,
        threshold: float,
        use_index: bool = False,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """Fan the independent ``ApproxIncrementalFD`` passes out to the pool.

        Always pass-grained — the starred Line 14 merge (``A(S ∪ T') ≥ τ``)
        can join candidates across anchor tuples, so the bucket restriction
        that makes exact ranges independent is not sound here.  Same
        scaffolding and deterministic merge as the pass-grained exact driver;
        an unpicklable ad-hoc join function degrades to the in-process
        schedule exactly like a host that cannot spawn processes.
        """
        return self._run_passes_on_pool(
            database,
            statistics,
            submit_chunk=lambda executor, chunk: executor.submit(
                _approx_passes_worker, database, chunk, join_function, threshold,
                use_index, active_kernel().name,
            ),
            fallback=lambda: super(ShardedBackend, self).run_approx_passes(
                database,
                join_function,
                threshold,
                use_index=use_index,
                statistics=statistics,
            ),
        )

    def _run_bucket_ranges_on_pool(
        self, database: Database, use_index, block_size, statistics, fallback
    ) -> Iterator[TupleSet]:
        """The bucket-grained schedule: one pool task per anchor-bucket range.

        All ranges of all passes are submitted up front; the executor's
        shared queue hands the next pending range to whichever worker frees
        up first (work stealing).  The parent consumes futures strictly in
        plan order — relation order, then range order — so the emitted
        sequence and the merged statistics never depend on completion order.
        Range ``i``'s results stream out while later ranges are still
        running; abandoning the generator (first-k retrieval) cancels every
        range not yet started.
        """
        catalog = database.catalog()
        label_map = {(t.relation_name, t.label): t for t in database.tuples()}
        plan = plan_bucket_ranges(database)
        tasks = [
            (anchor_name, labels)
            for anchor_name, ranges in plan
            for labels in ranges
        ]
        if not tasks:
            return  # no tuples anywhere; the full disjunction is empty
        workers = min(self.max_workers, len(tasks))

        futures = []
        try:
            try:
                executor = _shared_pool(workers)
                kernel_name = active_kernel().name
                payload = _database_payload(database)
                # Workers trace when the parent is tracing: each range runs
                # under a worker-local tracer and ships its span log home.
                from repro.obs.tracing import get_tracer

                parent_tracer = get_tracer()
                futures = [
                    executor.submit(
                        _bucket_range_worker, payload, anchor_name, labels,
                        use_index, block_size, kernel_name,
                        parent_tracer is not None,
                    )
                    for anchor_name, labels in tasks
                ]
                # Resolve the first range before yielding anything: systemic
                # failures (no process spawn, unpicklable database) surface
                # here, while the fallback can still take over cleanly.
                first_output = futures[0].result()
            except Exception as error:
                for future in futures:
                    future.cancel()
                futures = []
                _discard_pool(workers)
                if not self._warned_fallback:
                    self._warned_fallback = True
                    warnings.warn(
                        f"sharded backend could not use a process pool ({error!r}); "
                        "falling back to in-process passes",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                yield from fallback()
                return

            earlier: set = set()
            cursor = 0
            for anchor_name, ranges in plan:
                pass_statistics = (
                    FDStatistics() if statistics is not None else None
                )
                for _ in ranges:
                    keys_list, range_statistics, range_trace = (
                        first_output if cursor == 0 else futures[cursor].result()
                    )
                    if parent_tracer is not None and range_trace is not None:
                        # Worker spans join the parent's trace during the same
                        # plan-order merge the results take, attributed by
                        # range id and true worker pid.
                        parent_tracer.absorb(
                            range_trace["events"],
                            pid=range_trace["pid"],
                            range_id=cursor,
                        )
                    cursor += 1
                    for keys in keys_list:
                        if any(name in earlier for name, _ in keys):
                            continue
                        yield TupleSet(
                            (label_map[key] for key in keys), catalog=catalog
                        )
                    if pass_statistics is not None:
                        pass_statistics.merge(range_statistics)
                if statistics is not None and pass_statistics is not None:
                    statistics.merge(pass_statistics)
                earlier.add(anchor_name)
        finally:
            for future in futures:
                future.cancel()

    def _run_passes_on_pool(
        self, database: Database, statistics, submit_chunk, fallback
    ) -> Iterator[TupleSet]:
        """The pass-grained fan-out scaffolding (``granularity="pass"``/approx).

        Chunks the relations, submits each chunk through ``submit_chunk``,
        and merges deterministically: chunks (and passes within them) in
        relation order, results in each pass's emission order, the
        earlier-relation duplicate suppression applied in the parent, every
        result re-interned against the parent's catalog.  Chunk ``i``
        streams out while chunks ``i+1..`` are still running.  Systemic
        failures (no process spawn, unpicklable arguments) surface on the
        first chunk and degrade to ``fallback()`` — the in-process schedule
        — with a warning.
        """
        # Build the catalog *before* pickling so every worker receives the
        # precomputed bitmatrices instead of rebuilding them n times.
        catalog = database.catalog()
        label_map = {(t.relation_name, t.label): t for t in database.tuples()}
        relation_names = [relation.name for relation in database.relations]
        if not relation_names:
            return  # the result over an empty database is empty; nothing to shard
        workers = min(self.max_workers, len(relation_names))

        chunks = _contiguous_chunks(relation_names, workers)
        futures = []
        try:
            try:
                executor = _shared_pool(workers)
                futures = [submit_chunk(executor, chunk) for chunk in chunks]
                # Resolve the first chunk before yielding anything: systemic
                # failures surface here, while the fallback can still take
                # over cleanly.
                first_output = futures[0].result()
            except Exception as error:
                for future in futures:
                    future.cancel()
                futures = []
                _discard_pool(workers)
                if not self._warned_fallback:
                    self._warned_fallback = True
                    warnings.warn(
                        f"sharded backend could not use a process pool ({error!r}); "
                        "falling back to in-process passes",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                yield from fallback()
                return

            earlier: set = set()
            for index, chunk in enumerate(chunks):
                chunk_output = first_output if index == 0 else futures[index].result()
                for anchor_name, (keys_list, pass_statistics) in zip(
                    chunk, chunk_output
                ):
                    for keys in keys_list:
                        if any(relation_name in earlier for relation_name, _ in keys):
                            continue
                        yield TupleSet(
                            (label_map[key] for key in keys), catalog=catalog
                        )
                    if statistics is not None:
                        statistics.merge(pass_statistics)
                    earlier.add(anchor_name)
        finally:
            # Abandoned generators (first-k retrieval) cancel chunks not yet
            # started; the shared pool itself stays warm for the next call.
            for future in futures:
                future.cancel()
