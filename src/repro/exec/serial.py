"""The serial backend: the paper's reference execution, extracted.

This backend *is* the pre-existing behaviour of the drivers — the per-step
functions are exactly :func:`repro.core.incremental.get_next_result` and
:func:`repro.core.approx.approx_get_next_result`, and
:meth:`SerialBackend.run_singleton_passes` is the independent-passes loop
that used to live inline in :mod:`repro.core.full_disjunction`.  It exists as
a class so the batched and sharded backends can replace one operation at a
time while inheriting the rest.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.relational.database import Database
from repro.core.incremental import FDStatistics, get_next_result, incremental_fd
from repro.core.scanner import make_scanner
from repro.core.tupleset import TupleSet
from repro.exec.base import ExecutionBackend
from repro.obs.tracing import trace_span


class SerialBackend(ExecutionBackend):
    """One step at a time, one pass after another — the reference schedule."""

    name = "serial"

    def next_result(
        self,
        database,
        anchor,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
        anchor_tuples=None,
    ) -> TupleSet:
        return get_next_result(
            database,
            anchor,
            incomplete,
            complete,
            scanner,
            statistics,
            anchor_tuples=anchor_tuples,
        )

    def approx_next_result(
        self,
        database,
        anchor,
        join_function,
        threshold,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
    ) -> TupleSet:
        from repro.core.approx import approx_get_next_result

        return approx_get_next_result(
            database,
            anchor,
            join_function,
            threshold,
            incomplete,
            complete,
            scanner,
            statistics,
        )

    def run_singleton_passes(
        self,
        database: Database,
        use_index: bool = False,
        block_size: Optional[int] = None,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """The paper's basic driver: a fresh ``IncrementalFD`` per relation."""
        for index, relation in enumerate(database.relations):
            earlier = {r.name for r in database.relations[:index]}
            scanner = make_scanner(database, block_size)
            pass_statistics = FDStatistics() if statistics is not None else None
            # The span covers the pass's wall clock as the consumer sees it
            # (pauses between pulls included) — on a trace, that is where
            # the serving time actually went.
            with trace_span("engine.pass", "engine", anchor=relation.name):
                for result in incremental_fd(
                    database,
                    relation.name,
                    use_index=use_index,
                    scanner=scanner,
                    statistics=pass_statistics,
                    backend=self,
                ):
                    # Duplicate suppression: a result containing a tuple of
                    # an earlier relation was already produced by an earlier
                    # pass.
                    if any(result.contains_tuple_from(name) for name in earlier):
                        continue
                    yield result
            if statistics is not None and pass_statistics is not None:
                pass_statistics.block_reads = getattr(scanner, "block_reads", 0)
                statistics.merge(pass_statistics)

    def run_approx_passes(
        self,
        database: Database,
        join_function,
        threshold: float,
        use_index: bool = False,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """The Corollary 6.7 driver: a fresh ``ApproxIncrementalFD`` per relation."""
        from repro.core.approx import approx_incremental_fd

        for index, relation in enumerate(database.relations):
            earlier = {r.name for r in database.relations[:index]}
            for result in approx_incremental_fd(
                database,
                relation.name,
                join_function,
                threshold,
                use_index=use_index,
                statistics=statistics,
                backend=self,
            ):
                if any(result.contains_tuple_from(name) for name in earlier):
                    continue
                yield result
