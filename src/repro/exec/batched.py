"""The batched backend: bucket-amortized ``GetNextResult``.

The Line 7–18 loop of ``GetNextResult`` derives one candidate tuple set per
outside tuple and probes the ``Complete`` store for each (the Line 10–11
subsumption test).  With the Section 7 index, candidates sharing an anchor
tuple probe the *same* bucket — so the serial loop fetches and walks the same
bucket groups over and over.

The batched step exploits one structural fact: **``Complete`` never changes
during a single ``GetNextResult`` call** (the produced result is appended by
the driver only after the call returns).  Candidate generation (Footnote 3)
depends only on the popped-and-extended result, so the step can be split into
three exactly-equivalent phases:

1. generate every candidate in scan order and group them by anchor tuple;
2. answer all subsumption probes bucket by bucket, fetching each ``Complete``
   bucket once per *batch* instead of once per candidate
   (:meth:`repro.core.store.CompleteStore.contains_superset_batch`);
3. replay the surviving candidates in the original scan order against the
   live ``Incomplete`` pool (merges and inserts must observe each other, so
   phase 3 is deliberately sequential).

Because phase 3 runs in the serial order and phases 1–2 answer exactly the
questions the serial loop would have asked, the batched step produces the
identical result, the identical pool evolution and therefore the identical
output *sequence* — for the FIFO drivers and for the ranked/priority drivers
alike.  Only the ``bucket_probes`` work counter drops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as TupleType

from repro.relational.database import Database
from repro.relational.tuples import Tuple
from repro.core.kernels import active_kernel
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet
from repro.exec.serial import SerialBackend


def _batch_subsumption(complete, buckets: Dict[Tuple, List[TupleSet]]):
    """Answer the Line 10-11 probes for whole anchor buckets at once."""
    probe_batch = getattr(complete, "contains_superset_batch", None)
    answers: Dict[Tuple, List[bool]] = {}
    for anchor_tuple, group in buckets.items():
        if probe_batch is not None:
            answers[anchor_tuple] = probe_batch(group, anchor=anchor_tuple)
        else:
            # A store without the batch API (e.g. the reference pools) still
            # works — probe per candidate, exactly like the serial step.
            answers[anchor_tuple] = [
                complete.contains_superset(candidate, anchor=anchor_tuple)
                for candidate in group
            ]
    return answers


def _batched_candidate_phases(
    anchor, incomplete, complete, statistics, candidates, merge_union,
    jcc_merge: bool = False,
    anchor_tuples=None,
) -> None:
    """The three phases of Lines 7–18, shared by the exact and starred steps.

    ``candidates`` yields every candidate tuple set in scan order (Phase 1:
    grouped by anchor tuple); ``merge_union`` is the Line 12–15 predicate —
    given a waiting set and a candidate it returns their union when the pair
    may merge, ``None`` otherwise.  Phase 2 answers all subsumption probes
    bucket by bucket; Phase 3 replays the survivors in the original order
    against the live ``Incomplete`` pool.  When ``jcc_merge`` is true the
    merge predicate is the exact Line 14 ``JCC(S ∪ T')`` test and Phase 3
    finds the first partner through the active kernel's batched probe
    (identical first-match semantics, one call per candidate instead of one
    ``union_is_jcc`` per waiting set).
    """
    kernel = active_kernel() if jcc_merge else None
    entries: List[TupleType[TupleSet, Tuple]] = []
    buckets: Dict[Tuple, List[TupleSet]] = {}
    for candidate in candidates:
        if statistics is not None:
            statistics.candidates_generated += 1
        anchor_tuple = candidate.tuple_from(anchor)
        if anchor_tuple is None or (
            anchor_tuples is not None and anchor_tuple not in anchor_tuples
        ):
            if statistics is not None:
                statistics.candidates_without_anchor += 1
            continue
        entries.append((candidate, anchor_tuple))
        buckets.setdefault(anchor_tuple, []).append(candidate)

    # Phase 2 (Lines 10-11): one Complete probe per bucket, not per candidate.
    subsumed = _batch_subsumption(complete, buckets)

    # Phase 3 (Lines 12-18): replay survivors in scan order against the live
    # Incomplete pool.
    cursors: Dict[Tuple, int] = dict.fromkeys(buckets, 0)
    for candidate, anchor_tuple in entries:
        position = cursors[anchor_tuple]
        cursors[anchor_tuple] = position + 1
        if subsumed[anchor_tuple][position]:
            if statistics is not None:
                statistics.candidates_subsumed += 1
            continue
        merged = False
        if kernel is not None:
            waiting_list = incomplete.candidates(candidate)
            index = kernel.first_jcc_union(waiting_list, candidate)
            if index >= 0:
                waiting = waiting_list[index]
                incomplete.replace(waiting, waiting.union(candidate))
                merged = True
                if statistics is not None:
                    statistics.candidates_merged += 1
        else:
            for waiting in incomplete.candidates(candidate):
                union = merge_union(waiting, candidate)
                if union is not None:
                    incomplete.replace(waiting, union)
                    merged = True
                    if statistics is not None:
                        statistics.candidates_merged += 1
                    break
        if merged:
            continue
        incomplete.add(candidate)
        if statistics is not None:
            statistics.candidates_inserted += 1


def get_next_result_batched(
    database: Database,
    anchor: str,
    incomplete,
    complete,
    scanner: Optional[TupleScanner] = None,
    statistics=None,
    anchor_tuples=None,
) -> TupleSet:
    """``GetNextResult`` (Fig. 2) with bucket-batched ``Complete`` probes.

    Observationally identical to
    :func:`repro.core.incremental.get_next_result` — same result, same pool
    mutations in the same order, same ``sets_scanned`` — with the subsumption
    probes of Lines 10–11 amortized to one store probe per anchor bucket.
    ``anchor_tuples`` applies the bucket-range restriction of
    :func:`repro.core.incremental.get_next_result` to the Line 9 test.
    """
    if scanner is None:
        scanner = TupleScanner(database)

    # Line 1: remove a tuple set from Incomplete; Lines 2-6: extend it
    # through the active kernel (the packed kernel evaluates each scan pass
    # as one batched absorb test; the reference kernel is the serial loop).
    result = incomplete.pop()
    result = active_kernel().maximally_extend(result, scanner, statistics)

    def candidates():
        # Lines 7-8: one candidate per outside tuple (footnote 3).
        for outside in scanner.scan():
            if outside not in result:
                yield result.maximal_jcc_subset_with(outside)

    def merge_union(waiting, candidate):
        # Line 14: JCC(S ∪ T').
        if waiting.union_is_jcc(candidate):
            return waiting.union(candidate)
        return None

    _batched_candidate_phases(
        anchor, incomplete, complete, statistics, candidates(), merge_union,
        jcc_merge=True,
        anchor_tuples=anchor_tuples,
    )

    # Line 19.
    return result


def approx_get_next_result_batched(
    database: Database,
    anchor: str,
    join_function,
    threshold: float,
    incomplete,
    complete,
    scanner: Optional[TupleScanner] = None,
    statistics=None,
) -> TupleSet:
    """``ApproxGetNextResult`` (Fig. 6) with bucket-batched ``Complete`` probes.

    The starred Line 8 may emit several candidates per outside tuple
    (Example 6.3); they are bucketed exactly like the exact algorithm's.
    """
    from repro.core.approx import approx_maximally_extend

    if scanner is None:
        scanner = TupleScanner(database)

    result = incomplete.pop()
    result = approx_maximally_extend(
        result, join_function, threshold, scanner, statistics
    )

    def candidates():
        # Line 8 (starred): all maximal qualifying subsets per outside tuple.
        for outside in scanner.scan():
            if outside in result:
                continue
            yield from join_function.candidate_extensions(
                result, outside, threshold
            )

    def merge_union(waiting, candidate):
        # Line 14 (starred): merge when A(S ∪ T') ≥ τ.
        union = waiting.union(candidate)
        if union.is_connected and join_function(union) >= threshold:
            return union
        return None

    _batched_candidate_phases(
        anchor, incomplete, complete, statistics, candidates(), merge_union
    )

    return result


class BatchedBackend(SerialBackend):
    """Anchor-bucket batching of the ``GetNextResult`` probe loop.

    Pass scheduling is inherited from :class:`SerialBackend`; only the
    per-step functions change.
    """

    name = "batched"

    def next_result(
        self,
        database,
        anchor,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
        anchor_tuples=None,
    ) -> TupleSet:
        return get_next_result_batched(
            database,
            anchor,
            incomplete,
            complete,
            scanner,
            statistics,
            anchor_tuples=anchor_tuples,
        )

    def approx_next_result(
        self,
        database,
        anchor,
        join_function,
        threshold,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
    ) -> TupleSet:
        return approx_get_next_result_batched(
            database,
            anchor,
            join_function,
            threshold,
            incomplete,
            complete,
            scanner,
            statistics,
        )
