"""The execution-backend interface: *what* the engine computes vs. *how*.

The paper's algorithms are defined by two loops: the per-pass
``GetNextResult`` step (Fig. 2 / Fig. 6) and the full-disjunction driver that
runs one ``IncrementalFD`` pass per relation (Corollary 4.9).  Everything
else — candidate generation, subsumption, merging — is a property of the
*algorithm*; whether the steps run one tuple at a time, batched per anchor
bucket, or fanned out across processes is a property of the *schedule*.

:class:`ExecutionBackend` is that seam.  The drivers in
:mod:`repro.core.full_disjunction`, :mod:`repro.core.incremental`,
:mod:`repro.core.priority`, :mod:`repro.core.approx` and
:mod:`repro.core.ranked_approx` dispatch through a backend instead of
hard-coding their loops, so the same algorithm runs under any of:

* :class:`~repro.exec.serial.SerialBackend` — the paper's reference
  execution, extracted from the original driver loops;
* :class:`~repro.exec.batched.BatchedBackend` — ``GetNextResult`` groups the
  outside tuples of Lines 7–18 by anchor bucket and probes the dual-indexed
  ``Complete`` store once per bucket instead of once per tuple;
* :class:`~repro.exec.sharded.ShardedBackend` — the per-relation
  ``IncrementalFD`` passes of the ``singletons`` strategy run on a
  ``ProcessPoolExecutor``, with deterministic result and statistics merging.

All backends are *observationally equivalent*: they produce the same result
sets, and the serial and batched backends produce the identical result
sequence (batching only amortizes probes against a store that cannot change
within one ``GetNextResult`` call).  The cross-backend equivalence tests in
``tests/exec/test_backend_equivalence.py`` enforce this.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.relational.database import Database
from repro.core.tupleset import TupleSet


class ExecutionBackend:
    """How the full-disjunction engines schedule their work.

    Subclasses implement three operations.  ``next_result`` and
    ``approx_next_result`` are drop-in replacements for
    :func:`repro.core.incremental.get_next_result` and
    :func:`repro.core.approx.approx_get_next_result`; the drivers call
    whichever the active backend provides.  ``run_singleton_passes`` owns the
    scheduling of the independent per-relation passes of the ``singletons``
    initialization strategy — the one place where whole passes, not single
    steps, can be reordered or parallelised.
    """

    #: Backend name as accepted by :func:`repro.exec.resolve_backend`.
    name = "abstract"

    def next_result(
        self,
        database: Database,
        anchor: str,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
        anchor_tuples=None,
    ) -> TupleSet:
        """One ``GetNextResult`` step (Fig. 2) under this backend's schedule.

        ``anchor_tuples``, when given, restricts Line 9 to an anchor bucket
        range (see :func:`repro.core.incremental.get_next_result`).
        """
        raise NotImplementedError

    def approx_next_result(
        self,
        database: Database,
        anchor: str,
        join_function,
        threshold: float,
        incomplete,
        complete,
        scanner=None,
        statistics=None,
    ) -> TupleSet:
        """One ``ApproxGetNextResult`` step (Fig. 6) under this backend."""
        raise NotImplementedError

    def run_singleton_passes(
        self,
        database: Database,
        use_index: bool = False,
        block_size: Optional[int] = None,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """Compute ``FD(R)`` with the default singleton initialization.

        Yields every member of the full disjunction exactly once (duplicate
        suppression across passes included).  Implementations must merge
        per-pass statistics into ``statistics`` deterministically, in
        database relation order.
        """
        raise NotImplementedError

    def run_approx_passes(
        self,
        database: Database,
        join_function,
        threshold: float,
        use_index: bool = False,
        statistics=None,
    ) -> Iterator[TupleSet]:
        """Compute ``AFD(R, A, τ)`` (Corollary 6.7) under this backend's schedule.

        The approximate driver's per-relation ``ApproxIncrementalFD`` passes
        are independent exactly like the exact driver's singleton passes, so
        the backend owns their schedule too.  Yields every member of the
        approximate full disjunction exactly once, in database relation order
        with the earlier-relation duplicate suppression applied.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
