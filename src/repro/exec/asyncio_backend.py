"""The async backend: cooperative multiplexing of many query sessions.

The paper's interactivity model is a *client* loop: ask for the first ``k``
answers, maybe come back for more.  One process serving many such clients
needs their ``GetNextResult`` steps interleaved — but the steps themselves
are pure CPU work, so threads buy contention and processes buy copies.  The
natural schedule is cooperative: run one step, yield the event loop, let the
next session run one step.

:class:`AsyncBackend` is that schedule as a fourth
:class:`~repro.exec.base.ExecutionBackend`.  Its per-step functions are
inherited from :class:`~repro.exec.batched.BatchedBackend` — exactly
order-equivalent to serial, so the cross-backend equivalence suite holds
verbatim — and it adds the multiplexing surface used by the serving layer
(:mod:`repro.service`):

* :meth:`AsyncBackend.drive` — pull up to ``k`` results from one
  :class:`~repro.service.session.QuerySession`, awaiting the loop between
  steps so concurrent tasks interleave at step granularity;
* :meth:`AsyncBackend.round_robin` — drive many sessions with *strict*
  fairness: one result per session per rotation, so no session is ever more
  than one step ahead of a live peer.

Fairness is observable: the backend counts the steps it has run per session
in :attr:`AsyncBackend.steps`, which the serving benchmark (E10) and the
fairness tests read.  Because every step runs on one event loop, the schedule
is deterministic for a fixed set of sessions — like the other backends, the
*result sequence* per session is identical to a serial run.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import List, Optional, Sequence

from repro.exec.batched import BatchedBackend


class AsyncBackend(BatchedBackend):
    """Cooperative step multiplexing on one asyncio event loop.

    Pass scheduling and the per-step functions are inherited (batched, hence
    order-equivalent to serial); what this backend adds is the ``await``
    surface that lets many sessions share one loop.
    """

    name = "async"

    #: Retained per-session step counters; a long-running server churns
    #: through sessions, so the oldest labels age out past this bound.
    MAX_TRACKED_SESSIONS = 1024

    def __init__(self):
        #: Steps (results produced) per session label, for fairness checks.
        self.steps: "OrderedDict[str, int]" = OrderedDict()

    def _count(self, session) -> None:
        label = getattr(session, "name", None) or f"session-{id(session):x}"
        self.steps[label] = self.steps.get(label, 0) + 1
        self.steps.move_to_end(label)
        while len(self.steps) > self.MAX_TRACKED_SESSIONS:
            self.steps.popitem(last=False)

    async def drive(self, session, k: Optional[int] = None) -> List[object]:
        """Pull up to ``k`` results from ``session``, yielding the loop per step.

        ``None`` drains the session.  Between consecutive results control is
        handed back to the event loop (``await asyncio.sleep(0)``), so any
        number of concurrent ``drive`` tasks interleave at ``GetNextResult``
        granularity instead of hogging the loop for a whole prefix.
        """
        results: List[object] = []
        while k is None or len(results) < k:
            batch = session.next(1)
            if not batch:
                break
            results.extend(batch)
            self._count(session)
            await asyncio.sleep(0)
        return results

    async def round_robin(
        self, sessions: Sequence[object], k: Optional[int] = None
    ) -> List[List[object]]:
        """Drive ``sessions`` with strict round-robin fairness.

        Each rotation gives every unfinished session exactly one step (one
        result), so at any instant the per-session progress differs by at
        most one — the fairness property the serving tests assert.  Returns
        the per-session result lists, in ``sessions`` order.
        """
        results: List[List[object]] = [[] for _ in sessions]
        live = set(range(len(sessions)))
        while live:
            for index in sorted(live):
                if k is not None and len(results[index]) >= k:
                    live.discard(index)
                    continue
                batch = sessions[index].next(1)
                if not batch:
                    live.discard(index)
                    continue
                results[index].extend(batch)
                self._count(sessions[index])
                await asyncio.sleep(0)
        return results

    def serve_first_k(
        self, sessions: Sequence[object], k: Optional[int] = None
    ) -> List[List[object]]:
        """Synchronous wrapper: run :meth:`round_robin` on a fresh event loop."""
        return asyncio.run(self.round_robin(sessions, k))

    def __repr__(self) -> str:
        return "AsyncBackend()"
