"""Pluggable execution backends for the full-disjunction engines.

The algorithms (:mod:`repro.core`) define *what* is computed; an
:class:`~repro.exec.base.ExecutionBackend` defines *how* the work is
scheduled.  Three backends ship:

``serial``
    The paper's reference execution — one ``GetNextResult`` step at a time,
    one pass after another (:class:`~repro.exec.serial.SerialBackend`).
``batched``
    The Line 7–18 candidate loop groups outside tuples by anchor bucket and
    probes the dual-indexed ``Complete`` store once per bucket
    (:class:`~repro.exec.batched.BatchedBackend`).  Exactly
    order-equivalent to serial.
``sharded``
    Anchor-bucket ranges of the exact passes (and whole approximate passes)
    fan out to a process pool through a shared work-stealing queue; results
    and statistics merge deterministically regardless of worker count or
    steal order (:class:`~repro.exec.sharded.ShardedBackend`).  Accepts a
    worker count: ``"sharded:4"``.
``sharded-pass``
    The same pool fanning out whole per-relation passes instead of bucket
    ranges — the pre-bucket schedule, kept for comparison benchmarks and
    for workloads whose passes are already balanced.  Output order is
    identical to serial.  Accepts a worker count: ``"sharded-pass:4"``.
``async``
    Cooperative multiplexing of many query sessions' steps on one asyncio
    event loop (:class:`~repro.exec.asyncio_backend.AsyncBackend`); the
    per-step functions are the batched ones, so single-session runs are
    order-equivalent to serial and the serving layer (:mod:`repro.service`)
    gets step-granular fairness across concurrent clients.

Every engine entry point takes a ``backend`` argument resolved by
:func:`resolve_backend`, so new schedules (multi-node, GPU, …) are new
backends, not engine rewrites.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.exec.asyncio_backend import AsyncBackend
from repro.exec.base import ExecutionBackend
from repro.exec.batched import (
    BatchedBackend,
    approx_get_next_result_batched,
    get_next_result_batched,
)
from repro.exec.serial import SerialBackend
from repro.exec.sharded import ShardedBackend, plan_bucket_ranges, shutdown_pools

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "BatchedBackend",
    "ShardedBackend",
    "AsyncBackend",
    "get_next_result_batched",
    "approx_get_next_result_batched",
    "plan_bucket_ranges",
    "resolve_backend",
    "shutdown_pools",
]

#: The backend names accepted by :func:`resolve_backend` (and the CLI).
BACKENDS = ("serial", "batched", "sharded", "sharded-pass", "async")

#: Anything an engine's ``backend`` argument accepts.
BackendSpec = Union[None, str, ExecutionBackend]

_DEFAULT_WORKERS = 2


def resolve_backend(
    spec: BackendSpec = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend argument to an :class:`ExecutionBackend` instance.

    ``spec`` may be ``None`` (the serial reference execution), an existing
    backend instance (returned unchanged), or a name: ``"serial"``,
    ``"batched"``, ``"sharded"``, ``"sharded-pass"``, ``"async"`` (alias
    ``"asyncio"``).  The sharded worker count can ride along as
    ``"sharded:4"`` / ``"sharded-pass:4"`` or through the ``workers``
    argument (the suffix wins).
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, _, suffix = str(spec).partition(":")
    if suffix:
        try:
            workers = int(suffix)
        except ValueError:
            raise ValueError(
                f"invalid worker count {suffix!r} in backend spec {spec!r}"
            ) from None
    if workers is not None and workers < 1:
        raise ValueError(f"worker count must be positive, got {workers}")
    if name in ("sharded", "sharded-pass"):
        return ShardedBackend(
            max_workers=_DEFAULT_WORKERS if workers is None else workers,
            granularity="pass" if name == "sharded-pass" else "bucket",
        )
    if workers is not None:
        # A worker count on a single-process backend would be a silent no-op;
        # make the misconfiguration visible instead.
        raise ValueError(
            f"backend {name!r} runs in-process and takes no worker count"
        )
    if name == "serial":
        return SerialBackend()
    if name == "batched":
        return BatchedBackend()
    if name in ("async", "asyncio"):
        return AsyncBackend()
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )
