"""Rows flowing between physical operators."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple as TupleType

from repro.relational.nulls import NULL, is_null
from repro.core.tupleset import TupleSet


class Row:
    """One intermediate result of a physical plan.

    A row is an ``attribute -> value`` mapping (missing attributes read as
    null) plus, when it originates from a full-disjunction operator, the
    provenance tuple set it was padded from — so downstream consumers can
    still reach the source tuples, their labels, importances and
    probabilities.
    """

    __slots__ = ("_values", "_provenance")

    def __init__(self, values: Dict[str, object], provenance: Optional[TupleSet] = None):
        self._values = {
            attribute: (NULL if is_null(value) else value)
            for attribute, value in values.items()
        }
        self._provenance = provenance

    @property
    def values(self) -> Dict[str, object]:
        """The attribute values (a copy; rows are value objects)."""
        return dict(self._values)

    @property
    def provenance(self) -> Optional[TupleSet]:
        """The tuple set this row was derived from, if any."""
        return self._provenance

    @property
    def attributes(self) -> TupleType[str, ...]:
        return tuple(self._values)

    def __getitem__(self, attribute: str) -> object:
        return self._values.get(attribute, NULL)

    def get(self, attribute: str, default: object = NULL) -> object:
        return self._values.get(attribute, default)

    def is_null(self, attribute: str) -> bool:
        return is_null(self[attribute])

    def project(self, attributes: Iterable[str]) -> "Row":
        """Return a new row restricted to ``attributes`` (missing ones become null)."""
        return Row({attribute: self[attribute] for attribute in attributes}, self._provenance)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._values == other._values and self._provenance == other._provenance

    def __hash__(self) -> int:
        return hash((frozenset(self._values.items()), self._provenance))

    def __repr__(self) -> str:
        rendered = ", ".join(f"{a}={v!r}" for a, v in self._values.items())
        if self._provenance is not None:
            return f"Row({rendered}; from {self._provenance!r})"
        return f"Row({rendered})"
