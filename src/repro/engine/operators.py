"""Generic physical operators (scan, select, project, sort, limit).

Every operator follows the classic iterator contract:

* :meth:`Operator.open` — prepare for execution (recursively opens children);
* :meth:`Operator.next` — return the next :class:`~repro.engine.rows.Row`
  or ``None`` when exhausted;
* :meth:`Operator.close` — release state (recursively closes children).

Operators are also plain Python iterables (``for row in plan``), which opens
and closes them automatically, and they count the rows they produce so tests
and examples can verify how much work a ``LIMIT`` plan actually did.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from repro.relational.relation import Relation
from repro.engine.rows import Row


class Operator:
    """Base class of physical operators."""

    def __init__(self, children: Sequence["Operator"] = ()):
        self._children: List[Operator] = list(children)
        self._opened = False
        self.rows_produced = 0

    @property
    def children(self) -> List["Operator"]:
        return list(self._children)

    # -- iterator contract ------------------------------------------------ #
    def open(self) -> None:
        """Prepare the operator (and its children) for execution."""
        for child in self._children:
            child.open()
        self.rows_produced = 0
        self._opened = True

    def next(self) -> Optional[Row]:
        """Return the next row or ``None``; must be called between open and close."""
        if not self._opened:
            raise RuntimeError(f"{type(self).__name__}.next() called before open()")
        row = self._produce()
        if row is not None:
            self.rows_produced += 1
        return row

    def close(self) -> None:
        """Release the operator's state (and its children's)."""
        for child in self._children:
            child.close()
        self._opened = False

    def _produce(self) -> Optional[Row]:
        raise NotImplementedError

    # -- convenience ------------------------------------------------------ #
    def __iter__(self) -> Iterator[Row]:
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    return
                yield row
        finally:
            self.close()

    def name(self) -> str:
        """The operator's display name used by :func:`explain`."""
        return type(self).__name__


class RelationScan(Operator):
    """Scan a stored relation, producing one row per tuple."""

    def __init__(self, relation: Relation):
        super().__init__()
        self._relation = relation
        self._iterator = None

    def open(self) -> None:
        super().open()
        self._iterator = iter(self._relation)

    def _produce(self) -> Optional[Row]:
        for t in self._iterator:
            return Row(t.as_dict())
        return None

    def close(self) -> None:
        self._iterator = None
        super().close()

    def name(self) -> str:
        return f"RelationScan({self._relation.name})"


class Select(Operator):
    """Keep the child rows satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool]):
        super().__init__([child])
        self._child = child
        self._predicate = predicate

    def _produce(self) -> Optional[Row]:
        while True:
            row = self._child.next()
            if row is None:
                return None
            if self._predicate(row):
                return row


class Project(Operator):
    """Restrict child rows to the given attributes."""

    def __init__(self, child: Operator, attributes: Sequence[str]):
        super().__init__([child])
        self._child = child
        self._attributes = list(attributes)

    def _produce(self) -> Optional[Row]:
        row = self._child.next()
        if row is None:
            return None
        return row.project(self._attributes)

    def name(self) -> str:
        return f"Project({', '.join(self._attributes)})"


class Limit(Operator):
    """Stop after ``limit`` rows; the child does no further work afterwards."""

    def __init__(self, child: Operator, limit: int):
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        super().__init__([child])
        self._child = child
        self._limit = limit
        self._emitted = 0

    def open(self) -> None:
        super().open()
        self._emitted = 0

    def _produce(self) -> Optional[Row]:
        if self._emitted >= self._limit:
            return None
        row = self._child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def name(self) -> str:
        return f"Limit({self._limit})"


class Sort(Operator):
    """Materialise the child and emit its rows in sorted order.

    ``Sort`` is a blocking operator; placing it below a ``Limit`` therefore
    loses the incremental behaviour — which is exactly why the ranked
    full-disjunction scan (a *non-blocking* order-producing operator) exists.
    """

    def __init__(self, child: Operator, key: Callable[[Row], object], reverse: bool = False):
        super().__init__([child])
        self._child = child
        self._key = key
        self._reverse = reverse
        self._buffer: Optional[List[Row]] = None
        self._position = 0

    def open(self) -> None:
        super().open()
        self._buffer = None
        self._position = 0

    def _produce(self) -> Optional[Row]:
        if self._buffer is None:
            rows = []
            while True:
                row = self._child.next()
                if row is None:
                    break
                rows.append(row)
            rows.sort(key=self._key, reverse=self._reverse)
            self._buffer = rows
        if self._position >= len(self._buffer):
            return None
        row = self._buffer[self._position]
        self._position += 1
        return row


def collect(plan: Operator) -> List[Row]:
    """Execute a plan to completion and return all produced rows."""
    return list(plan)


def explain(plan: Operator, indent: int = 0) -> str:
    """Render a plan tree as an indented one-operator-per-line string."""
    lines = [("  " * indent) + plan.name()]
    for child in plan.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
