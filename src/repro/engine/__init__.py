"""A small pull-based (Volcano-style) execution engine.

The paper argues that ``IncrementalFD`` "can be integrated into a standard
query processor" (block-based execution, Section 7), and the follow-up system
paper [16] did exactly that by exposing the algorithm as a *polynomial-delay
iterator*.  This package provides that integration surface: physical operators
with ``open() / next() / close()`` semantics, so a full disjunction can be
composed lazily with selections, projections, ordering and limits — answers
keep streaming end to end, and a ``LIMIT k`` plan performs only the work the
first ``k`` answers require.

Operators produce :class:`~repro.engine.rows.Row` objects: a padded
``attribute -> value`` mapping plus the provenance tuple set the row was
assembled from (when it came from a full disjunction).
"""

from repro.engine.rows import Row
from repro.engine.operators import (
    Limit,
    Operator,
    Project,
    RelationScan,
    Select,
    Sort,
    collect,
    explain,
)
from repro.engine.fd_operators import (
    ApproximateFullDisjunctionScan,
    FullDisjunctionScan,
    RankedFullDisjunctionScan,
)

__all__ = [
    "Row",
    "Operator",
    "RelationScan",
    "Select",
    "Project",
    "Sort",
    "Limit",
    "collect",
    "explain",
    "FullDisjunctionScan",
    "RankedFullDisjunctionScan",
    "ApproximateFullDisjunctionScan",
]
