"""Full-disjunction scans: the paper's algorithms as physical operators.

These operators wrap the streaming generators of :mod:`repro.core` behind the
iterator contract of :mod:`repro.engine.operators`, which is how [16]
integrated the algorithm into a database system:

* :class:`FullDisjunctionScan` — emits the members of ``FD(R)`` with
  polynomial delay; under a ``Limit(k)`` only the work for ``k`` answers is
  performed (Theorem 4.10).
* :class:`RankedFullDisjunctionScan` — emits answers in non-increasing rank
  order for a monotonically c-determined ranking function (Theorem 5.5); an
  order-producing yet *non-blocking* operator, unlike ``Sort``.
* :class:`ApproximateFullDisjunctionScan` — emits the members of the
  ``(A, τ)``-approximate full disjunction (Theorem 6.6).

Every scan produces padded rows over the union schema of the database, with
the provenance tuple set attached.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.relational.database import Database
from repro.relational.operators import combined_schema, pad_tuple_set
from repro.core.approx import approx_full_disjunction_sets
from repro.core.approx_join import ApproximateJoinFunction
from repro.core.full_disjunction import full_disjunction_sets
from repro.core.priority import priority_incremental_fd
from repro.core.ranked_approx import ranked_approx_full_disjunction
from repro.core.ranking import RankingFunction
from repro.core.tupleset import TupleSet
from repro.engine.operators import Operator
from repro.engine.rows import Row


class _StreamingScan(Operator):
    """Common machinery of the three full-disjunction scans."""

    def __init__(self, database: Database):
        super().__init__()
        self._database = database
        self._schema = combined_schema(database.relations)
        self._stream: Optional[Iterator] = None

    @property
    def database(self) -> Database:
        return self._database

    def open(self) -> None:
        super().open()
        # Build (or reuse) the interned catalog before streaming starts, so
        # the first call to next() pays only for the algorithm, not for the
        # one-off precomputation of the join-consistency bitmatrices.
        self._database.catalog()
        self._stream = self._make_stream()

    def close(self) -> None:
        self._stream = None
        super().close()

    def _make_stream(self) -> Iterator:
        raise NotImplementedError

    def _to_row(self, tuple_set: TupleSet, score: Optional[float] = None) -> Row:
        values = pad_tuple_set(tuple_set, self._schema)
        if score is not None:
            values["_score"] = score
        return Row(values, provenance=tuple_set)


class FullDisjunctionScan(_StreamingScan):
    """Emit ``FD(R)`` one padded row at a time (polynomial delay)."""

    def __init__(
        self,
        database: Database,
        use_index: bool = True,
        initialization: str = "singletons",
        block_size: Optional[int] = None,
    ):
        super().__init__(database)
        self._use_index = use_index
        self._initialization = initialization
        self._block_size = block_size

    def _make_stream(self) -> Iterator:
        return full_disjunction_sets(
            self._database,
            use_index=self._use_index,
            initialization=self._initialization,
            block_size=self._block_size,
        )

    def _produce(self) -> Optional[Row]:
        for tuple_set in self._stream:
            return self._to_row(tuple_set)
        return None

    def name(self) -> str:
        return f"FullDisjunctionScan({', '.join(self._database.relation_names)})"


class RankedFullDisjunctionScan(_StreamingScan):
    """Emit ``FD(R)`` in ranking order; the rank is exposed as the ``_score`` column."""

    def __init__(
        self,
        database: Database,
        ranking: RankingFunction,
        threshold: Optional[float] = None,
        use_index: bool = True,
    ):
        super().__init__(database)
        ranking.require_monotonically_c_determined()
        self._ranking = ranking
        self._threshold = threshold
        self._use_index = use_index

    def _make_stream(self) -> Iterator:
        return priority_incremental_fd(
            self._database,
            self._ranking,
            threshold=self._threshold,
            use_index=self._use_index,
        )

    def _produce(self) -> Optional[Row]:
        for tuple_set, score in self._stream:
            return self._to_row(tuple_set, score)
        return None

    def name(self) -> str:
        return f"RankedFullDisjunctionScan({self._ranking.name})"


class ApproximateFullDisjunctionScan(_StreamingScan):
    """Emit ``AFD(R, A, τ)``; with a ranking also in ranking order."""

    def __init__(
        self,
        database: Database,
        join_function: ApproximateJoinFunction,
        threshold: float,
        ranking: Optional[RankingFunction] = None,
        use_index: bool = True,
    ):
        super().__init__(database)
        self._join_function = join_function
        self._threshold = threshold
        self._ranking = ranking
        self._use_index = use_index

    def _make_stream(self) -> Iterator:
        if self._ranking is None:
            return approx_full_disjunction_sets(
                self._database,
                self._join_function,
                self._threshold,
                use_index=self._use_index,
            )
        return ranked_approx_full_disjunction(
            self._database,
            self._join_function,
            self._threshold,
            self._ranking,
            use_index=self._use_index,
        )

    def _produce(self) -> Optional[Row]:
        if self._ranking is None:
            for tuple_set in self._stream:
                return self._to_row(tuple_set, self._join_function(tuple_set))
        else:
            for tuple_set, score in self._stream:
                return self._to_row(tuple_set, score)
        return None

    def name(self) -> str:
        return (
            f"ApproximateFullDisjunctionScan({self._join_function.name}, "
            f"τ={self._threshold})"
        )
