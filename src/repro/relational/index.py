"""Attribute indexes and the paper's per-relation attribute-position table.

Section 7 of the paper recommends hash indexes to speed up both the maximal
extension loop of ``GetNextResult`` (which behaves like a natural join) and
the management of the ``Complete``/``Incomplete`` lists.  This module supplies
the building blocks on the relational side:

* :class:`AttributeIndex` — a hash index from the value of an attribute to the
  tuples holding that value (nulls are never indexed, since a null can never
  participate in a join-consistent pair).
* :class:`DatabaseIndex` — one :class:`AttributeIndex` per (relation,
  attribute), plus a convenience lookup of all join-candidate tuples of a
  given tuple.
* :class:`AttributePositions` — the auxiliary structure described before
  Theorem 4.8: the rank of each attribute of each relation when attributes are
  sorted by name, allowing linear-time construction of the sorted triple-list
  representation of a singleton tuple set.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple as TupleType

from repro.relational.database import Database
from repro.relational.nulls import is_null
from repro.relational.relation import Relation
from repro.relational.tuples import Tuple


class AttributeIndex:
    """Hash index of a single relation attribute.

    Maps each non-null value of the attribute to the list of tuples holding
    that value, in relation order.
    """

    def __init__(self, relation: Relation, attribute: str):
        if attribute not in relation.schema:
            raise KeyError(f"{attribute!r} is not an attribute of {relation.name!r}")
        self._relation_name = relation.name
        self._attribute = attribute
        self._buckets: Dict[object, List[Tuple]] = defaultdict(list)
        for t in relation:
            value = t[attribute]
            if not is_null(value):
                self._buckets[value].append(t)

    @property
    def relation_name(self) -> str:
        return self._relation_name

    @property
    def attribute(self) -> str:
        return self._attribute

    def lookup(self, value: object) -> List[Tuple]:
        """Return the tuples whose attribute equals ``value`` (empty for nulls)."""
        if is_null(value):
            return []
        return list(self._buckets.get(value, ()))

    def values(self) -> Iterator[object]:
        """Iterate over the distinct indexed values."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class DatabaseIndex:
    """All attribute indexes of a database, built eagerly.

    ``join_candidates(t)`` returns, for a tuple ``t``, every tuple of *other*
    relations that agrees with ``t`` on at least one shared attribute.  Only
    such tuples can ever be join consistent and connected with a set
    containing ``t``, so the extension loops can restrict their scans to this
    candidate set.
    """

    def __init__(self, database: Database):
        self._database = database
        self._indexes: Dict[TupleType[str, str], AttributeIndex] = {}
        for relation in database:
            for attribute in relation.schema:
                self._indexes[(relation.name, attribute)] = AttributeIndex(relation, attribute)

    def index(self, relation_name: str, attribute: str) -> AttributeIndex:
        """Return the index of ``relation_name.attribute``."""
        return self._indexes[(relation_name, attribute)]

    def lookup(self, relation_name: str, attribute: str, value: object) -> List[Tuple]:
        """Return the tuples of ``relation_name`` whose ``attribute`` equals ``value``."""
        return self._indexes[(relation_name, attribute)].lookup(value)

    def join_candidates(self, t: Tuple) -> List[Tuple]:
        """Tuples of other relations sharing an equal non-null attribute value with ``t``."""
        seen: Set[Tuple] = set()
        ordered: List[Tuple] = []
        for attribute, value in t.non_null_items():
            for relation in self._database:
                if relation.name == t.relation_name:
                    continue
                if attribute not in relation.schema:
                    continue
                for candidate in self.lookup(relation.name, attribute, value):
                    if candidate not in seen:
                        seen.add(candidate)
                        ordered.append(candidate)
        return ordered


class AttributePositions:
    """Per-relation map from attribute to its rank in attribute-name order.

    The paper stores, for each relation, "the numerical position in which each
    attribute would be placed if the attributes were sorted in ascending
    order", so that a singleton tuple set can be converted to the sorted
    triple-list representation in linear time using bucket sort.
    """

    def __init__(self, database_or_relations):
        relations: Iterable[Relation]
        if isinstance(database_or_relations, Database):
            relations = database_or_relations.relations
        else:
            relations = database_or_relations
        self._positions: Dict[str, Dict[str, int]] = {
            relation.name: relation.schema.sorted_positions() for relation in relations
        }

    def position(self, relation_name: str, attribute: str) -> int:
        """Return the sorted-order rank of ``attribute`` within ``relation_name``."""
        return self._positions[relation_name][attribute]

    def sorted_attributes(self, relation_name: str) -> List[str]:
        """Return the attributes of ``relation_name`` in ascending name order."""
        positions = self._positions[relation_name]
        return sorted(positions, key=positions.__getitem__)

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._positions
