"""Databases: ordered collections of relations and their connection graph.

A set of relations is *connected* when the graph whose vertices are the
relations, with an edge between two relations that share an attribute, is
connected (Section 2).  The :class:`Database` object materialises this graph
once and answers connectivity queries about arbitrary subsets of relations,
which is the operation the algorithms perform constantly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.relational.errors import DatabaseError
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.tuples import Tuple


class Database:
    """An ordered set of relations ``R = {R_1, ..., R_n}``.

    The order of relations matters: ``IncrementalFD`` is parameterised by an
    index ``i`` and the full-disjunction driver iterates the relations in
    order, suppressing duplicates by checking earlier relations.
    """

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: List[Relation] = []
        self._by_name: Dict[str, Relation] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        self._catalog_cache = None
        self._catalog_key = None
        self.catalog_rebuilds = 0
        #: Bumped by every *non-monotone* mutation (a deletion or an in-place
        #: update) and never by appends — the epoch component of
        #: :attr:`generation` the serving layer's revalidation keys on.
        self.epoch = 0
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_relation(self, relation: Relation) -> Relation:
        """Add a relation to the database (names must be unique)."""
        if relation.name in self._by_name:
            raise DatabaseError(f"duplicate relation name {relation.name!r}")
        self._relations.append(relation)
        self._by_name[relation.name] = relation
        self._adjacency[relation.name] = set()
        for other in self._relations[:-1]:
            if relation.schema.connects_to(other.schema):
                self._adjacency[relation.name].add(other.name)
                self._adjacency[other.name].add(relation.name)
        return relation

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Build a database from relations given as positional arguments."""
        return cls(relations)

    def add_tuple(
        self,
        relation_name: str,
        values: Iterable[object],
        label: Optional[str] = None,
        importance: float = 0.0,
        probability: float = 1.0,
    ) -> Tuple:
        """Append a tuple to a relation, maintaining the catalog in place.

        This is the streaming-ingest entry point: unlike adding through
        ``database.relation(name).add(...)`` — which leaves the cached
        :class:`~repro.relational.catalog.Catalog` stale and forces a full
        rebuild on the next :meth:`catalog` call — this extends the cached
        snapshot append-only via
        :meth:`~repro.relational.catalog.Catalog.append_tuple`, so ingesting
        N tuples costs N·O(s) bitmatrix extensions and exactly one initial
        catalog build (observable as ``catalog_rebuilds``).
        """
        relation = self.relation(relation_name)
        before = self._structure_key()
        t = relation.add(
            values, label=label, importance=importance, probability=probability
        )
        if self._catalog_cache is not None:
            if self._catalog_key == before:
                self._catalog_cache.append_tuple(t)
                self._catalog_key = self._structure_key()
                self._catalog_cache.stamp_mirror_generation(self.generation)
            # A stale snapshot (tuples added behind the database's back)
            # keeps its stale key and is rebuilt on the next catalog() call.
        return t

    def _structure_key(self):
        """The catalog staleness key: relation count + total mutation version.

        Relation versions are *monotone* (every add and remove bumps one),
        so unlike a tuple count the key can never be aliased by a
        count-neutral out-of-band mutation (a direct ``Relation.remove``
        followed by an ``add``): any change moves the sum forward.
        """
        return (
            len(self._relations),
            sum(relation.version for relation in self._relations),
        )

    def _catalog_is_current(self) -> bool:
        return (
            self._catalog_cache is not None
            and self._catalog_key == self._structure_key()
        )

    def remove_tuple(self, relation_name: str, label: str) -> Tuple:
        """Delete a tuple, maintaining the catalog as an append-only tombstone.

        The non-monotone counterpart of :meth:`add_tuple`: the tuple leaves
        its relation (scans never see it again), the cached
        :class:`~repro.relational.catalog.Catalog` marks its dense id dead in
        place (no rebuild, no id reshuffling — see
        :meth:`~repro.relational.catalog.Catalog.tombstone`), and
        :attr:`epoch` is bumped so the serving layer can distinguish this
        from a monotone append.  Dead ids are reclaimed only by
        :meth:`compact`.  Returns the removed tuple.
        """
        relation = self.relation(relation_name)
        was_current = self._catalog_is_current()
        t = relation.remove(label)
        self.epoch += 1
        if was_current:
            self._catalog_cache.tombstone(t)
            self._catalog_key = self._structure_key()
            self._catalog_cache.stamp_mirror_generation(self.generation)
        return t

    def resolve_update(
        self,
        relation_name: str,
        label: str,
        values: Iterable[object],
        importance: Optional[float] = None,
        probability: Optional[float] = None,
    ):
        """Validate an in-place update; decide whether it changes anything.

        The single source of truth for update semantics, shared by
        :meth:`update_tuple` and the streaming maintainer's batch
        validation: resolves the target (raising
        :class:`~repro.relational.errors.DatabaseError` /
        :class:`~repro.relational.errors.RelationError` on unknown names),
        checks the arity against the schema (raising
        :class:`~repro.relational.errors.SchemaError`), and defaults
        ``importance``/``probability`` to the old tuple's.  Returns ``None``
        for a no-op update, else ``(old tuple, values, importance,
        probability)``.
        """
        relation = self.relation(relation_name)
        old = relation.tuple_by_label(label)
        values = tuple(values)
        if len(values) != len(relation.schema):
            from repro.relational.errors import SchemaError

            raise SchemaError(
                f"update of {label!r} in {relation_name!r} has {len(values)} "
                f"values, schema has {len(relation.schema)} attributes"
            )
        importance = old.importance if importance is None else importance
        probability = old.probability if probability is None else probability
        if (
            values == old.values
            and importance == old.importance
            and probability == old.probability
        ):
            return None
        return old, values, importance, probability

    def update_tuple(
        self,
        relation_name: str,
        label: str,
        values: Iterable[object],
        importance: Optional[float] = None,
        probability: Optional[float] = None,
    ) -> Tuple:
        """Replace a tuple's values in place (tombstone + append, one epoch).

        The old incarnation is tombstoned and a fresh tuple with the *same
        label* is appended — downstream, an update is exactly a deletion plus
        an arrival that happen in one epoch bump.  ``importance`` and
        ``probability`` default to the old tuple's values.  An update that
        changes nothing is a no-op (no epoch bump, the old tuple is
        returned).  Returns the live tuple.
        """
        resolved = self.resolve_update(
            relation_name, label, values,
            importance=importance, probability=probability,
        )
        if resolved is None:
            return self.relation(relation_name).tuple_by_label(label)
        old, values, importance, probability = resolved
        relation = self.relation(relation_name)
        was_current = self._catalog_is_current()
        relation.remove(label)
        t = relation.add(
            values, label=label, importance=importance, probability=probability
        )
        self.epoch += 1
        if was_current:
            self._catalog_cache.tombstone(old)
            self._catalog_cache.append_tuple(t)
            self._catalog_key = self._structure_key()
            self._catalog_cache.stamp_mirror_generation(self.generation)
        return t

    def compact(self):
        """Rebuild the catalog from the live tuples, reclaiming dead ids.

        The off-hot-path counterpart of the tombstone scheme: the dense id
        space is rebuilt without the tombstoned tuples (one
        ``catalog_rebuilds`` bump, so every generation-keyed cache entry and
        interned tuple set ages out).  Returns the fresh catalog.
        """
        self._catalog_cache = None
        self._catalog_key = None
        return self.catalog()

    # ------------------------------------------------------------------ #
    # durable state (storage-layer snapshot/restore hooks)
    # ------------------------------------------------------------------ #
    def save_mirror(self, path: str) -> str:
        """Persist the catalog as a sealed, generation-stamped mirror file.

        The written file (see :mod:`repro.relational.catalog_file`) carries
        the packed bitmatrices, the relation metadata, and every tuple
        payload, so :func:`~repro.relational.catalog_file.load_database`
        reconstructs an equivalent database around it — and the catalog
        keeps using the file as its packed mirror, maintaining it in place
        under further ingest.  Returns ``path``.
        """
        catalog = self.catalog()
        mirror = catalog.save_mirror(path)
        mirror.file.stamp_generation(tuple(self.generation))
        mirror.file.flush()
        return path

    def snapshot_state(self) -> dict:
        """Serialize the database (catalog included) as a JSON-ready dict.

        Tuples are listed in gid-issuance order with their dead flags, so
        :meth:`restore_state` reproduces the catalog's dense id space
        exactly — including tombstones — and anything that named tuples by
        gid (persisted result logs) stays valid.  Null cells are encoded as
        JSON ``null``.  The packed mirror is derived state and is rebuilt
        lazily on the restored side rather than serialized — except when it
        is a durable mirror *file*: then the tuple entries are recorded **by
        reference** (``tuples_ref``: path + payload prefix + dead mask)
        instead of being re-serialized, so snapshot latency stays O(1) in
        the database size.
        """
        catalog = self.catalog()
        state = {
            "relations": [
                {
                    "name": relation.name,
                    "attributes": list(relation.schema.attributes),
                    "label_prefix": relation._label_prefix,
                }
                for relation in self._relations
            ],
            "epoch": self.epoch,
            "catalog_rebuilds": self.catalog_rebuilds,
            "generation": list(self.generation),
        }
        ref = catalog.mirror_snapshot_ref()
        if ref is not None:
            state["tuples_ref"] = ref
        else:
            state["tuples"] = [
                [
                    t.relation_name,
                    t.label,
                    [None if is_null(v) else v for v in t.values],
                    t.importance,
                    t.probability,
                    dead,
                ]
                for _, t, dead in catalog.entries()
            ]
        return state

    @classmethod
    def restore_state(cls, state: dict) -> "Database":
        """Rebuild a database from :meth:`snapshot_state` output.

        Tuples are re-added in gid order through the append-only catalog
        path, so every tuple lands on the gid it held when the snapshot was
        taken.  Label reuse (an update tombstones the old incarnation and
        appends a fresh tuple under the same label) is replayed the same
        way: when a later entry reuses a still-live label, the earlier
        incarnation is tombstoned first.  The stored ``epoch`` and
        ``catalog_rebuilds`` then overwrite the counters the replay itself
        moved, and the resulting generation token must equal the stored one
        — a mismatch means the snapshot does not describe this code's
        semantics and recovery must fail rather than serve wrong streams.
        """
        database = cls()
        for spec in state["relations"]:
            database.add_relation(
                Relation(
                    spec["name"],
                    spec["attributes"],
                    label_prefix=spec["label_prefix"],
                )
            )
        # Build the (empty) catalog now so every add below extends it in
        # place and gid assignment tracks insertion order exactly.
        catalog = database.catalog()
        live_labels: Dict[str, set] = {spec["name"]: set() for spec in state["relations"]}
        entries = state.get("tuples")
        if entries is None:
            from repro.relational.catalog_file import read_snapshot_entries

            entries = read_snapshot_entries(state["tuples_ref"])
        for relation_name, label, values, importance, probability, _ in entries:
            if label in live_labels[relation_name]:
                database.remove_tuple(relation_name, label)
            database.add_tuple(
                relation_name,
                tuple(NULL if v is None else v for v in values),
                label=label,
                importance=importance,
                probability=probability,
            )
            live_labels[relation_name].add(label)
        # Tombstone sweep: entries dead in the snapshot whose gid is still
        # live (their label was never reused by a later entry).
        dead_mask = 0
        for gid, entry in enumerate(entries):
            relation_name, label, _, _, _, dead = entry
            if not dead:
                continue
            dead_mask |= 1 << gid
            if not (catalog.dead_mask >> gid) & 1:
                database.remove_tuple(relation_name, label)
        database.epoch = state["epoch"]
        database.catalog_rebuilds = state["catalog_rebuilds"]
        expected = tuple(state["generation"])
        if tuple(database.generation) != expected:
            raise DatabaseError(
                f"restored generation {database.generation} does not match "
                f"the snapshot's {expected}"
            )
        if catalog.dead_mask != dead_mask or catalog.tuple_count != len(entries):
            raise DatabaseError(
                "restored catalog id space diverged from the snapshot "
                f"({catalog.tuple_count} ids, dead mask {catalog.dead_mask:#x})"
            )
        return database

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> Sequence[Relation]:
        """The relations in database order."""
        return tuple(self._relations)

    @property
    def relation_names(self) -> List[str]:
        """The relation names in database order."""
        return [relation.name for relation in self._relations]

    def relation(self, name: str) -> Relation:
        """Return the relation with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DatabaseError(f"no relation named {name!r}") from None

    def relation_at(self, index: int) -> Relation:
        """Return the relation at a zero-based index."""
        try:
            return self._relations[index]
        except IndexError:
            raise DatabaseError(
                f"relation index {index} out of range (database has {len(self._relations)})"
            ) from None

    def index_of(self, name: str) -> int:
        """Return the zero-based position of the relation named ``name``."""
        for idx, relation in enumerate(self._relations):
            if relation.name == name:
                return idx
        raise DatabaseError(f"no relation named {name!r}")

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"Database({', '.join(self.relation_names)})"

    # ------------------------------------------------------------------ #
    # tuples
    # ------------------------------------------------------------------ #
    def tuples(self) -> Iterator[Tuple]:
        """Iterate over ``Tuples(R)``: every tuple of every relation, in order."""
        for relation in self._relations:
            yield from relation

    def tuple_count(self) -> int:
        """Return the total number of tuples in the database."""
        return sum(len(relation) for relation in self._relations)

    def total_size(self) -> int:
        """The paper's ``s``: total size of all relations (tuples + attribute cells)."""
        return sum(relation.total_size() for relation in self._relations)

    def tuple_by_label(self, label: str) -> Tuple:
        """Look up a tuple by its label across all relations."""
        for relation in self._relations:
            for t in relation:
                if t.label == label:
                    return t
        raise DatabaseError(f"no tuple labelled {label!r} in the database")

    @property
    def generation(self):
        """The structural version of this database, as a comparable token.

        ``(catalog_rebuilds, epoch, relation count, live tuple count)`` —
        any structural change moves at least one component: appends through
        :meth:`add_tuple` move the live tuple count (the catalog is
        maintained in place, no rebuild); deletions and in-place updates
        through :meth:`remove_tuple` / :meth:`update_tuple` move ``epoch``
        (and never anything but the counts — that is what lets the serving
        layer *revalidate* a cached prefix across an epoch bump instead of
        discarding it); adding a relation, compacting, or mutating behind
        the database's back forces a snapshot rebuild on the next
        :meth:`catalog` call and bumps ``catalog_rebuilds``.  Compare tokens
        taken *after* a :meth:`catalog` call so a pending lazy build cannot
        move the counter in between.
        """
        return (
            self.catalog_rebuilds,
            self.epoch,
            len(self._relations),
            self.tuple_count(),
        )

    # ------------------------------------------------------------------ #
    # interned catalog
    # ------------------------------------------------------------------ #
    def catalog(self):
        """The interned :class:`~repro.relational.catalog.Catalog` of this database.

        The catalog assigns dense relation and tuple ids and precomputes the
        join-consistency and schema-adjacency bitmatrices the bitset
        :class:`~repro.core.tupleset.TupleSet` representation runs on.  It is
        a snapshot: the cached instance is rebuilt when relations have been
        added, or when tuples have been added behind the database's back
        (tuples ingested through :meth:`add_tuple` extend the snapshot in
        place instead).  Every full build increments ``catalog_rebuilds``.
        """
        from repro.relational.catalog import Catalog

        key = self._structure_key()
        if self._catalog_cache is None or self._catalog_key != key:
            self._catalog_cache = Catalog(self)
            self._catalog_key = key
            self.catalog_rebuilds += 1
        return self._catalog_cache

    # ------------------------------------------------------------------ #
    # connection graph
    # ------------------------------------------------------------------ #
    @property
    def adjacency(self) -> Dict[str, Set[str]]:
        """The relation-connection graph as an adjacency mapping (copies)."""
        return {name: set(neighbours) for name, neighbours in self._adjacency.items()}

    def neighbours(self, name: str) -> Set[str]:
        """Relations connected to (sharing an attribute with) ``name``."""
        if name not in self._adjacency:
            raise DatabaseError(f"no relation named {name!r}")
        return set(self._adjacency[name])

    def are_connected(self, first: str, second: str) -> bool:
        """Return ``True`` when the two named relations share an attribute."""
        return second in self._adjacency.get(first, ())

    def is_connected(self, names: Optional[Iterable[str]] = None) -> bool:
        """Return ``True`` when the given relations form a connected graph.

        With no argument, the whole database is tested; this is the
        connectivity condition the paper places on the input relations.
        An empty set is considered connected; a singleton is connected.
        """
        if names is None:
            selected = set(self._by_name)
        else:
            selected = set(names)
            unknown = selected - set(self._by_name)
            if unknown:
                raise DatabaseError(f"unknown relations: {sorted(unknown)}")
        if len(selected) <= 1:
            return True
        start = next(iter(selected))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency[current]:
                if neighbour in selected and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == selected

    def connected_component(self, start: str, names: Iterable[str]) -> FrozenSet[str]:
        """Return the connected component of ``start`` within the sub-graph induced by ``names``.

        This is the operation of footnote 3: after discarding join-inconsistent
        tuples, keep only those whose relations lie in the connected component
        of ``t_b``'s relation.
        """
        selected = set(names)
        selected.add(start)
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency.get(current, ()):
                if neighbour in selected and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return frozenset(seen)

    def schema_edges(self) -> List[tuple]:
        """Return the edges of the connection graph as sorted name pairs."""
        edges = []
        for idx, first in enumerate(self._relations):
            for second in self._relations[idx + 1:]:
                if first.schema.connects_to(second.schema):
                    edges.append((first.name, second.name))
        return edges

    def validate_connected(self) -> None:
        """Raise :class:`DatabaseError` unless the whole database is connected.

        The paper defines the full disjunction for a connected set of
        relations; the algorithms still work on disconnected databases (each
        component is handled independently) but callers may want to enforce
        the paper's precondition explicitly.
        """
        if not self.is_connected():
            raise DatabaseError(
                "the database is not connected: the full disjunction is defined "
                "for a connected set of relations"
            )
