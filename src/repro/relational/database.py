"""Databases: ordered collections of relations and their connection graph.

A set of relations is *connected* when the graph whose vertices are the
relations, with an edge between two relations that share an attribute, is
connected (Section 2).  The :class:`Database` object materialises this graph
once and answers connectivity queries about arbitrary subsets of relations,
which is the operation the algorithms perform constantly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.relational.errors import DatabaseError
from repro.relational.relation import Relation
from repro.relational.tuples import Tuple


class Database:
    """An ordered set of relations ``R = {R_1, ..., R_n}``.

    The order of relations matters: ``IncrementalFD`` is parameterised by an
    index ``i`` and the full-disjunction driver iterates the relations in
    order, suppressing duplicates by checking earlier relations.
    """

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: List[Relation] = []
        self._by_name: Dict[str, Relation] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        self._catalog_cache = None
        self._catalog_key = None
        self.catalog_rebuilds = 0
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_relation(self, relation: Relation) -> Relation:
        """Add a relation to the database (names must be unique)."""
        if relation.name in self._by_name:
            raise DatabaseError(f"duplicate relation name {relation.name!r}")
        self._relations.append(relation)
        self._by_name[relation.name] = relation
        self._adjacency[relation.name] = set()
        for other in self._relations[:-1]:
            if relation.schema.connects_to(other.schema):
                self._adjacency[relation.name].add(other.name)
                self._adjacency[other.name].add(relation.name)
        return relation

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Build a database from relations given as positional arguments."""
        return cls(relations)

    def add_tuple(
        self,
        relation_name: str,
        values: Iterable[object],
        label: Optional[str] = None,
        importance: float = 0.0,
        probability: float = 1.0,
    ) -> Tuple:
        """Append a tuple to a relation, maintaining the catalog in place.

        This is the streaming-ingest entry point: unlike adding through
        ``database.relation(name).add(...)`` — which leaves the cached
        :class:`~repro.relational.catalog.Catalog` stale and forces a full
        rebuild on the next :meth:`catalog` call — this extends the cached
        snapshot append-only via
        :meth:`~repro.relational.catalog.Catalog.append_tuple`, so ingesting
        N tuples costs N·O(s) bitmatrix extensions and exactly one initial
        catalog build (observable as ``catalog_rebuilds``).
        """
        relation = self.relation(relation_name)
        t = relation.add(
            values, label=label, importance=importance, probability=probability
        )
        if self._catalog_cache is not None:
            key = (len(self._relations), self.tuple_count())
            if self._catalog_key == (len(self._relations), self.tuple_count() - 1):
                self._catalog_cache.append_tuple(t)
                self._catalog_key = key
            # A stale snapshot (tuples added behind the database's back)
            # keeps its stale key and is rebuilt on the next catalog() call.
        return t

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> Sequence[Relation]:
        """The relations in database order."""
        return tuple(self._relations)

    @property
    def relation_names(self) -> List[str]:
        """The relation names in database order."""
        return [relation.name for relation in self._relations]

    def relation(self, name: str) -> Relation:
        """Return the relation with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DatabaseError(f"no relation named {name!r}") from None

    def relation_at(self, index: int) -> Relation:
        """Return the relation at a zero-based index."""
        try:
            return self._relations[index]
        except IndexError:
            raise DatabaseError(
                f"relation index {index} out of range (database has {len(self._relations)})"
            ) from None

    def index_of(self, name: str) -> int:
        """Return the zero-based position of the relation named ``name``."""
        for idx, relation in enumerate(self._relations):
            if relation.name == name:
                return idx
        raise DatabaseError(f"no relation named {name!r}")

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"Database({', '.join(self.relation_names)})"

    # ------------------------------------------------------------------ #
    # tuples
    # ------------------------------------------------------------------ #
    def tuples(self) -> Iterator[Tuple]:
        """Iterate over ``Tuples(R)``: every tuple of every relation, in order."""
        for relation in self._relations:
            yield from relation

    def tuple_count(self) -> int:
        """Return the total number of tuples in the database."""
        return sum(len(relation) for relation in self._relations)

    def total_size(self) -> int:
        """The paper's ``s``: total size of all relations (tuples + attribute cells)."""
        return sum(relation.total_size() for relation in self._relations)

    def tuple_by_label(self, label: str) -> Tuple:
        """Look up a tuple by its label across all relations."""
        for relation in self._relations:
            for t in relation:
                if t.label == label:
                    return t
        raise DatabaseError(f"no tuple labelled {label!r} in the database")

    @property
    def generation(self):
        """The structural version of this database, as a comparable token.

        ``(catalog_rebuilds, relation count, tuple count)`` — any structural
        change moves at least one component: appends through
        :meth:`add_tuple` move the tuple count (the catalog is maintained in
        place, no rebuild), while adding a relation or adding tuples behind
        the database's back forces a snapshot rebuild on the next
        :meth:`catalog` call and bumps ``catalog_rebuilds``.  The serving
        layer's prefix cache uses this token as its invalidation contract;
        compare tokens taken *after* a :meth:`catalog` call so a pending
        lazy build cannot move the counter in between.
        """
        return (self.catalog_rebuilds, len(self._relations), self.tuple_count())

    # ------------------------------------------------------------------ #
    # interned catalog
    # ------------------------------------------------------------------ #
    def catalog(self):
        """The interned :class:`~repro.relational.catalog.Catalog` of this database.

        The catalog assigns dense relation and tuple ids and precomputes the
        join-consistency and schema-adjacency bitmatrices the bitset
        :class:`~repro.core.tupleset.TupleSet` representation runs on.  It is
        a snapshot: the cached instance is rebuilt when relations have been
        added, or when tuples have been added behind the database's back
        (tuples ingested through :meth:`add_tuple` extend the snapshot in
        place instead).  Every full build increments ``catalog_rebuilds``.
        """
        from repro.relational.catalog import Catalog

        key = (len(self._relations), self.tuple_count())
        if self._catalog_cache is None or self._catalog_key != key:
            self._catalog_cache = Catalog(self)
            self._catalog_key = key
            self.catalog_rebuilds += 1
        return self._catalog_cache

    # ------------------------------------------------------------------ #
    # connection graph
    # ------------------------------------------------------------------ #
    @property
    def adjacency(self) -> Dict[str, Set[str]]:
        """The relation-connection graph as an adjacency mapping (copies)."""
        return {name: set(neighbours) for name, neighbours in self._adjacency.items()}

    def neighbours(self, name: str) -> Set[str]:
        """Relations connected to (sharing an attribute with) ``name``."""
        if name not in self._adjacency:
            raise DatabaseError(f"no relation named {name!r}")
        return set(self._adjacency[name])

    def are_connected(self, first: str, second: str) -> bool:
        """Return ``True`` when the two named relations share an attribute."""
        return second in self._adjacency.get(first, ())

    def is_connected(self, names: Optional[Iterable[str]] = None) -> bool:
        """Return ``True`` when the given relations form a connected graph.

        With no argument, the whole database is tested; this is the
        connectivity condition the paper places on the input relations.
        An empty set is considered connected; a singleton is connected.
        """
        if names is None:
            selected = set(self._by_name)
        else:
            selected = set(names)
            unknown = selected - set(self._by_name)
            if unknown:
                raise DatabaseError(f"unknown relations: {sorted(unknown)}")
        if len(selected) <= 1:
            return True
        start = next(iter(selected))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency[current]:
                if neighbour in selected and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == selected

    def connected_component(self, start: str, names: Iterable[str]) -> FrozenSet[str]:
        """Return the connected component of ``start`` within the sub-graph induced by ``names``.

        This is the operation of footnote 3: after discarding join-inconsistent
        tuples, keep only those whose relations lie in the connected component
        of ``t_b``'s relation.
        """
        selected = set(names)
        selected.add(start)
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency.get(current, ()):
                if neighbour in selected and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return frozenset(seen)

    def schema_edges(self) -> List[tuple]:
        """Return the edges of the connection graph as sorted name pairs."""
        edges = []
        for idx, first in enumerate(self._relations):
            for second in self._relations[idx + 1:]:
                if first.schema.connects_to(second.schema):
                    edges.append((first.name, second.name))
        return edges

    def validate_connected(self) -> None:
        """Raise :class:`DatabaseError` unless the whole database is connected.

        The paper defines the full disjunction for a connected set of
        relations; the algorithms still work on disconnected databases (each
        component is handled independently) but callers may want to enforce
        the paper's precondition explicitly.
        """
        if not self.is_connected():
            raise DatabaseError(
                "the database is not connected: the full disjunction is defined "
                "for a connected set of relations"
            )
