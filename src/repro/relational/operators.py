"""Classic relational operators on :class:`~repro.relational.Relation` objects.

These operators are the substrate for the outerjoin-based baseline of
Rajaraman and Ullman [2] and for rendering full-disjunction tuple sets as
padded rows, exactly as in the last six columns of Table 2 of the paper.

All operators are pure: they return new relations and never mutate their
inputs.  Null semantics follow the paper: a null never joins with anything,
not even with another null.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.relational.errors import RelationError
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import Tuple


def select(relation: Relation, predicate: Callable[[Tuple], bool], name: Optional[str] = None) -> Relation:
    """Return the tuples of ``relation`` satisfying ``predicate``."""
    result = Relation(name or f"select({relation.name})", relation.schema)
    for t in relation:
        if predicate(t):
            result.add(t.values, importance=t.importance, probability=t.probability)
    return result


def project(relation: Relation, attributes: Sequence[str], name: Optional[str] = None) -> Relation:
    """Project ``relation`` onto ``attributes`` (duplicates are kept)."""
    schema = relation.schema.project(attributes)
    result = Relation(name or f"project({relation.name})", schema)
    for t in relation:
        result.add([t[a] for a in attributes], importance=t.importance, probability=t.probability)
    return result


def distinct(relation: Relation, name: Optional[str] = None) -> Relation:
    """Remove duplicate value rows from ``relation`` (first occurrence wins)."""
    result = Relation(name or f"distinct({relation.name})", relation.schema)
    seen = set()
    for t in relation:
        if t.values not in seen:
            seen.add(t.values)
            result.add(t.values, importance=t.importance, probability=t.probability)
    return result


def union(first: Relation, second: Relation, name: Optional[str] = None) -> Relation:
    """Set union of two relations over the same schema."""
    if first.schema != second.schema:
        raise RelationError(
            f"cannot union relations with different schemas: {first.schema} vs {second.schema}"
        )
    result = Relation(name or f"union({first.name},{second.name})", first.schema)
    seen = set()
    for relation in (first, second):
        for t in relation:
            if t.values not in seen:
                seen.add(t.values)
                result.add(t.values)
    return result


def _rows_join_consistent(left: Dict[str, object], right: Dict[str, object], shared: Iterable[str]) -> bool:
    """Join consistency of two attribute->value rows on their shared attributes.

    Following the paper, a shared attribute must carry the *same non-null*
    value on both sides.
    """
    for attribute in shared:
        lhs = left[attribute]
        rhs = right[attribute]
        if is_null(lhs) or is_null(rhs) or lhs != rhs:
            return False
    return True


def _merge_rows(left: Dict[str, object], right: Dict[str, object], schema: Schema) -> List[object]:
    """Merge two consistent rows into a single value list over ``schema``."""
    merged = []
    for attribute in schema.attributes:
        if attribute in left and not is_null(left[attribute]):
            merged.append(left[attribute])
        elif attribute in right and not is_null(right[attribute]):
            merged.append(right[attribute])
        elif attribute in left:
            merged.append(left[attribute])
        elif attribute in right:
            merged.append(right[attribute])
        else:
            merged.append(NULL)
    return merged


def natural_join(first: Relation, second: Relation, name: Optional[str] = None) -> Relation:
    """Natural join of two relations (nulls never match)."""
    schema = first.schema.union(second.schema)
    shared = first.schema.shared_attributes(second.schema)
    result = Relation(name or f"join({first.name},{second.name})", schema)
    for left in first:
        left_row = left.as_dict()
        for right in second:
            right_row = right.as_dict()
            if _rows_join_consistent(left_row, right_row, shared):
                result.add(_merge_rows(left_row, right_row, schema))
    return result


def left_outerjoin(first: Relation, second: Relation, name: Optional[str] = None) -> Relation:
    """Left outerjoin: every tuple of ``first`` survives, padded with nulls if unmatched."""
    schema = first.schema.union(second.schema)
    shared = first.schema.shared_attributes(second.schema)
    result = Relation(name or f"lojoin({first.name},{second.name})", schema)
    for left in first:
        left_row = left.as_dict()
        matched = False
        for right in second:
            right_row = right.as_dict()
            if _rows_join_consistent(left_row, right_row, shared):
                matched = True
                result.add(_merge_rows(left_row, right_row, schema))
        if not matched:
            result.add(_merge_rows(left_row, {}, schema))
    return result


def full_outerjoin(first: Relation, second: Relation, name: Optional[str] = None) -> Relation:
    """Full outerjoin: unmatched tuples of either side survive, padded with nulls."""
    schema = first.schema.union(second.schema)
    shared = first.schema.shared_attributes(second.schema)
    result = Relation(name or f"fojoin({first.name},{second.name})", schema)
    matched_right = set()
    for left in first:
        left_row = left.as_dict()
        matched = False
        for right in second:
            right_row = right.as_dict()
            if _rows_join_consistent(left_row, right_row, shared):
                matched = True
                matched_right.add(right)
                result.add(_merge_rows(left_row, right_row, schema))
        if not matched:
            result.add(_merge_rows(left_row, {}, schema))
    for right in second:
        if right not in matched_right:
            result.add(_merge_rows({}, right.as_dict(), schema))
    return result


def row_subsumes(stronger: Sequence[object], weaker: Sequence[object]) -> bool:
    """Return ``True`` when row ``stronger`` subsumes row ``weaker``.

    Row ``s`` subsumes row ``w`` (over the same schema) when ``s`` agrees with
    ``w`` on every attribute where ``w`` is non-null.  Equal rows subsume each
    other; the caller decides how to break that tie.
    """
    if len(stronger) != len(weaker):
        raise RelationError("subsumption is only defined over a common schema")
    for s_value, w_value in zip(stronger, weaker):
        if is_null(w_value):
            continue
        if is_null(s_value) or s_value != w_value:
            return False
    return True


def remove_subsumed(relation: Relation, name: Optional[str] = None) -> Relation:
    """Remove rows that are strictly subsumed by (or duplicate) another row.

    This is the "minimal union" clean-up step applied after a sequence of
    outerjoins: without it, padded partial answers that are dominated by more
    complete answers would survive.
    """
    rows = [t.values for t in relation]
    kept: List[Sequence[object]] = []
    for idx, row in enumerate(rows):
        subsumed = False
        for jdx, other in enumerate(rows):
            if idx == jdx:
                continue
            if other == row:
                # Exact duplicates: keep only the first occurrence.
                if jdx < idx:
                    subsumed = True
                    break
                continue
            if row_subsumes(other, row):
                subsumed = True
                break
        if not subsumed:
            kept.append(row)
    result = Relation(name or f"minimal({relation.name})", relation.schema)
    for row in kept:
        result.add(row)
    return result


def combined_schema(relations: Iterable[Relation]) -> Schema:
    """The union schema of several relations, in first-appearance order."""
    attributes: List[str] = []
    seen = set()
    for relation in relations:
        for attribute in relation.schema.attributes:
            if attribute not in seen:
                seen.add(attribute)
                attributes.append(attribute)
    return Schema(attributes)


def pad_tuple_set(tuples: Iterable[Tuple], schema: Schema) -> Dict[str, object]:
    """Render a tuple set as a single padded row over ``schema``.

    This is how Table 2 of the paper derives its last six columns: the natural
    join of the tuples in the set, padded with nulls on the attributes no
    tuple provides.  For a join-consistent set every member agrees on shared
    attributes, so the choice of contributor is immaterial; for approximately
    join-consistent sets (Section 6) members may disagree, and the first
    non-null value in (relation, label) order wins, which keeps the rendering
    deterministic.
    """
    row: Dict[str, object] = {attribute: NULL for attribute in schema.attributes}
    for t in sorted(tuples, key=lambda member: (member.relation_name, member.label)):
        for attribute, value in t.non_null_items():
            if is_null(row[attribute]):
                row[attribute] = value
    return row
