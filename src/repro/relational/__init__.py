"""Relational substrate used by the full-disjunction algorithms.

This package provides a small, self-contained in-memory relational layer:
null-tolerant tuples, relations, databases with their relation-connection
graph, classic operators (including the full outerjoin needed by the
Rajaraman–Ullman baseline), attribute indexes, CSV loading, and the interned
:class:`Catalog` of dense tuple/relation ids with precomputed
join-consistency and schema-adjacency bitmatrices that the bitset
:class:`~repro.core.tupleset.TupleSet` representation runs on.

The layer is deliberately independent of the algorithms in
:mod:`repro.core`; it is the "database system" substrate the paper assumes.
"""

from repro.relational.nulls import NULL, Null, is_null
from repro.relational.errors import (
    ReproError,
    SchemaError,
    RelationError,
    DatabaseError,
    CSVFormatError,
)
from repro.relational.schema import Schema
from repro.relational.tuples import Tuple
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.relational.catalog import Catalog
from repro.relational.index import AttributeIndex, AttributePositions
from repro.relational import operators
from repro.relational import csv_io

__all__ = [
    "NULL",
    "Null",
    "is_null",
    "ReproError",
    "SchemaError",
    "RelationError",
    "DatabaseError",
    "CSVFormatError",
    "Schema",
    "Tuple",
    "Relation",
    "Database",
    "Catalog",
    "AttributeIndex",
    "AttributePositions",
    "operators",
    "csv_io",
]
