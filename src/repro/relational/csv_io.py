"""Loading and saving relations as CSV files.

A relation is stored as a CSV file whose header row carries the attribute
names.  Empty cells and cells equal to ``null_token`` (default ``"⊥"``) are
read back as the null value.  An optional ``label`` column preserves tuple
labels across a round trip.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.relational.database import Database
from repro.relational.errors import CSVFormatError
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Reserved column name used to persist tuple labels.
LABEL_COLUMN = "label"

#: Default textual representation of the null value in CSV files.
DEFAULT_NULL_TOKEN = "⊥"


def load_relation(
    path: Union[str, Path],
    name: Optional[str] = None,
    null_token: str = DEFAULT_NULL_TOKEN,
) -> Relation:
    """Load a relation from a CSV file.

    Parameters
    ----------
    path:
        The CSV file to read.  The first row must be the header.
    name:
        Relation name; defaults to the file stem.
    null_token:
        Cells equal to this string (or empty cells) become null.
    """
    path = Path(path)
    name = name or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise CSVFormatError(f"{path}: empty file, expected a header row") from None
        if not header:
            raise CSVFormatError(f"{path}: empty header row")
        has_labels = header[0] == LABEL_COLUMN
        attributes = header[1:] if has_labels else header
        if not attributes:
            raise CSVFormatError(f"{path}: no attribute columns in header")
        relation = Relation(name, Schema(attributes))
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise CSVFormatError(
                    f"{path}:{line_number}: expected {len(header)} cells, got {len(row)}"
                )
            label = row[0] if has_labels else None
            cells = row[1:] if has_labels else row
            values = [NULL if cell == "" or cell == null_token else cell for cell in cells]
            relation.add(values, label=label)
    return relation


def save_relation(
    relation: Relation,
    path: Union[str, Path],
    null_token: str = DEFAULT_NULL_TOKEN,
    include_labels: bool = True,
) -> Path:
    """Write ``relation`` to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header: List[str] = list(relation.schema.attributes)
        if include_labels:
            header = [LABEL_COLUMN] + header
        writer.writerow(header)
        for t in relation:
            cells = [null_token if is_null(v) else str(v) for v in t.values]
            if include_labels:
                cells = [t.label] + cells
            writer.writerow(cells)
    return path


def load_database(
    paths: Iterable[Union[str, Path]],
    null_token: str = DEFAULT_NULL_TOKEN,
) -> Database:
    """Load several CSV files into a single database (one relation per file)."""
    database = Database()
    for path in paths:
        database.add_relation(load_relation(path, null_token=null_token))
    return database


def save_database(
    database: Database,
    directory: Union[str, Path],
    null_token: str = DEFAULT_NULL_TOKEN,
) -> List[Path]:
    """Write every relation of ``database`` to ``directory`` as ``<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for relation in database:
        written.append(
            save_relation(relation, directory / f"{relation.name}.csv", null_token=null_token)
        )
    return written
