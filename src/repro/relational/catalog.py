"""The interned tuple catalog: dense ids and precomputed bitmatrices.

The inner loops of ``GetNextResult`` (subsumption at Line 11, merge at
Line 14, maximal extension at Lines 2-6) spend their time deciding, over and
over, whether pairs of tuples are join consistent and whether sets of
relations are connected.  Both facts are properties of the *database*, not of
the tuple sets being assembled, so they can be computed once.

A :class:`Catalog` is built from a :class:`~repro.relational.database.Database`
and assigns

* each relation a dense integer id (its position in database order), and
* each tuple a dense global id (its position in database scan order),

then precomputes two bitmatrices over those ids:

* the **join-consistency matrix**: for every tuple ``t``, the bitmask of the
  tuples ``t'`` (of other relations) such that ``{t, t'}`` is join consistent.
  Tuples of relations that share no attribute are vacuously consistent;
  distinct tuples of the *same* relation are never marked consistent, because
  they can never coexist in a connected tuple set (condition (i) of the JCC
  definition) — this convention lets set-level tests reduce to single ``AND``
  operations;
* the **schema-adjacency matrix**: for every relation, the bitmask of the
  relations whose schemas share an attribute with it.

With these in hand, :class:`~repro.core.tupleset.TupleSet` represents a set as
a pair of integer bitmasks (tuple ids, relation ids) and the paper's hot-path
predicates become a handful of bitwise operations — see
:mod:`repro.core.tupleset` for the operation-by-operation mapping.

Catalogs are snapshots that support **append-only maintenance**: adding a
tuple through :meth:`Database.add_tuple
<repro.relational.database.Database.add_tuple>` extends the cached catalog in
place via :meth:`Catalog.append_tuple` — the new tuple gets the next dense id
and one row/column of the join-consistency bitmatrix is filled in, O(s) work
instead of the O(s²) rebuild.  Existing ids and masks never change, so tuple
sets interned before the append stay valid.  Any other structural change
(adding a relation, or adding tuples behind the database's back) still
invalidates the snapshot and triggers a rebuild, counted by
``Database.catalog_rebuilds``.

Deletions are append-only too: :meth:`Catalog.tombstone` marks a tuple's
dense id *dead* in a bitmask instead of compacting the id space.  Nothing
else moves — the bitmatrices, the ids, and every tuple set interned before
the deletion stay valid — and liveness questions reduce to one ``AND``
against :attr:`Catalog.dead_mask` (the store layer's retraction sweep and
the serving layer's epoch revalidation both run on exactly that check).
Dead ids are reclaimed only by an explicit rebuild
(:meth:`Database.compact <repro.relational.database.Database.compact>`).
"""

from __future__ import annotations

import os
import tempfile
import warnings
from typing import Dict, Iterable, List, Optional, Tuple as TupleType

from repro.relational.database import Database
from repro.relational.nulls import is_null
from repro.relational.tuples import Tuple


class _MirrorRows:
    """Big-int row access over an attached (file-backed) mirror.

    Stands in for the catalog's ``_consistent`` list in catalogs attached to
    a mirror file: ``rows[gid]`` unpacks one mapped row to a big int on
    demand, so code paths that want big-int masks (the reference kernel,
    parity checks, ``pair_consistent``) work unchanged while the matrix
    itself stays on disk and pages in lazily.

    Unpacking a packed row into a Python big int costs microseconds, and
    the merge loop reads the same handful of rows millions of times, so
    unpacked rows are memoised in a bounded dict.  Appends flip bits in
    *other* rows' columns (the new tuple's bit is OR'd into every
    consistent row), so the cache keys on the mirror's ``version``
    counter and drops wholesale whenever it moves.
    """

    #: Cached big ints are one machine word per 64 tuples; at the cap the
    #: cache tops out around a dozen megabytes even for ~100k-tuple runs,
    #: so it cannot dominate the out-of-core memory story.
    CACHE_ROWS = 4096

    __slots__ = ("_mirror", "_cache", "_stamp")

    def __init__(self, mirror):
        self._mirror = mirror
        self._cache = {}
        self._stamp = mirror.version

    def __len__(self) -> int:
        return self._mirror.n

    def __getitem__(self, gid: int) -> int:
        from repro.core.kernels.packed import unpack_to_int

        mirror = self._mirror
        if gid < 0:
            gid += mirror.n
        if not 0 <= gid < mirror.n:
            raise IndexError("tuple id out of range")
        cache = self._cache
        if self._stamp != mirror.version:
            cache.clear()
            self._stamp = mirror.version
        else:
            row = cache.get(gid)
            if row is not None:
                return row
        row = unpack_to_int(mirror.consistent[gid, : mirror.width])
        if len(cache) >= self.CACHE_ROWS:
            cache.clear()
        cache[gid] = row
        return row


class Catalog:
    """Dense ids and precomputed bitmatrices for one database snapshot."""

    __slots__ = (
        "_relation_ids",
        "_relation_names",
        "_relation_meta",
        "_relation_adjacency",
        "_relation_tuples",
        "_tuple_ids",
        "_tuples",
        "_tuple_relation",
        "_consistent",
        "_all_tuples_mask",
        "_dead_mask",
        "_connected_cache",
        "_packed_mirror",
        "_mirror_path",
    )

    def __init__(self, database: Database):
        relations = list(database.relations)
        self._relation_ids: Dict[str, int] = {}
        self._relation_names: List[str] = []
        for rid, relation in enumerate(relations):
            self._relation_ids[relation.name] = rid
            self._relation_names.append(relation.name)
        # Enough schema to rebuild the relations elsewhere — written into
        # mirror-file metadata so workers can reconstruct the Database shell.
        self._relation_meta = [
            (relation.name, tuple(relation.schema.attributes), relation._label_prefix)
            for relation in relations
        ]

        count = len(relations)
        adjacency = [0] * count
        for i in range(count):
            for j in range(i + 1, count):
                if relations[i].schema.connects_to(relations[j].schema):
                    adjacency[i] |= 1 << j
                    adjacency[j] |= 1 << i
        self._relation_adjacency = adjacency

        tuple_ids: Dict[Tuple, int] = {}
        tuples: List[Tuple] = []
        tuple_relation: List[int] = []
        relation_tuples = [0] * count
        for rid, relation in enumerate(relations):
            for t in relation:
                gid = len(tuples)
                tuple_ids[t] = gid
                tuples.append(t)
                tuple_relation.append(rid)
                relation_tuples[rid] |= 1 << gid
        self._tuple_ids = tuple_ids
        self._tuples = tuples
        self._tuple_relation = tuple_relation
        self._relation_tuples = relation_tuples
        self._all_tuples_mask = (1 << len(tuples)) - 1

        # Join-consistency bitmatrix.  Tuples of non-adjacent distinct
        # relations share no attribute and are vacuously join consistent;
        # tuples of adjacent relations are tested pairwise; distinct tuples of
        # one relation are never consistent (see the module docstring).
        consistent = [0] * len(tuples)
        for i in range(count):
            vacuous = 0
            for j in range(count):
                if j != i and not (adjacency[i] >> j) & 1:
                    vacuous |= relation_tuples[j]
            if vacuous:
                members = relation_tuples[i]
                while members:
                    low = members & -members
                    consistent[low.bit_length() - 1] |= vacuous
                    members ^= low
        for i in range(count):
            for j in range(i + 1, count):
                if not (adjacency[i] >> j) & 1:
                    continue
                for first in relations[i]:
                    first_id = tuple_ids[first]
                    for second in relations[j]:
                        if first.join_consistent_with(second):
                            second_id = tuple_ids[second]
                            consistent[first_id] |= 1 << second_id
                            consistent[second_id] |= 1 << first_id
        self._consistent = consistent
        self._dead_mask = 0
        self._connected_cache: Dict[int, bool] = {1: True} if count else {}
        # Columnar mirror of the bitmatrices for the packed kernel, built
        # lazily by packed_mirror() and maintained by the append/tombstone
        # hooks below.  When the mirror is file-backed, _mirror_path names
        # the file so pickled catalogs can reattach instead of rebuilding.
        self._packed_mirror = None
        self._mirror_path = None

    # ------------------------------------------------------------------ #
    # append-only maintenance
    # ------------------------------------------------------------------ #
    def append_tuple(self, t: Tuple) -> int:
        """Extend the catalog in place with one new tuple; return its id.

        The tuple receives the next dense global id, its relation's tuple
        mask and the all-tuples mask grow by one bit, and the symmetric
        join-consistency bitmatrix gains one row (the new tuple's mask) and
        one column (the new tuple's bit ORed into every consistent existing
        tuple's mask).  The schema-adjacency matrix and the connectivity memo
        are untouched — appending a tuple cannot change the relation graph.

        Raises ``KeyError`` when the tuple's relation is not catalogued and
        ``ValueError`` when the tuple already is; both indicate the caller
        should rebuild instead.  A tuple equal to a *tombstoned* one may be
        re-appended (an in-place update back to earlier values): it receives
        a fresh id and the lookup maps to the live incarnation.
        """
        rid = self._relation_ids[t.relation_name]
        existing = self._tuple_ids.get(t)
        if existing is not None and not (self._dead_mask >> existing) & 1:
            raise ValueError(f"tuple {t.label!r} is already catalogued")
        mirror = self._packed_mirror
        inline = isinstance(self._consistent, list)
        if mirror is not None and mirror.file is not None and mirror.file.readonly:
            if inline:
                # The big ints remain the source of truth; drop the
                # unwritable file-backed mirror (it rebuilds lazily, in RAM)
                # rather than fail the append.
                self._packed_mirror = None
                self._mirror_path = None
                mirror = None
            else:
                # Attached catalog: the file IS the matrix — refuse before
                # mutating anything.
                from repro.relational.catalog_file import MirrorFileError

                raise MirrorFileError(
                    f"catalog is attached read-only to {mirror.file.path}; "
                    "reopen with writable=True to append"
                )
        gid = len(self._tuples)
        bit = 1 << gid
        self._tuple_ids[t] = gid
        self._tuples.append(t)
        self._tuple_relation.append(rid)
        self._relation_tuples[rid] |= bit
        self._all_tuples_mask |= bit

        adjacency = self._relation_adjacency[rid]
        consistent = self._consistent
        mask = 0
        for j in range(len(self._relation_names)):
            if j == rid:
                continue
            # Dead tuples are skipped: nothing live ever asks about them, and
            # their own (frozen) rows are filtered by the live mask instead.
            others = self._relation_tuples[j] & ~bit & ~self._dead_mask
            if not others:
                continue
            if not (adjacency >> j) & 1:
                # Non-adjacent relations share no attribute: vacuously
                # consistent in both directions.
                mask |= others
                if inline:
                    while others:
                        low = others & -others
                        consistent[low.bit_length() - 1] |= bit
                        others ^= low
            else:
                while others:
                    low = others & -others
                    other_gid = low.bit_length() - 1
                    if t.join_consistent_with(self._tuples[other_gid]):
                        mask |= low
                        if inline:
                            consistent[other_gid] |= bit
                    others ^= low
        if inline:
            # Attached catalogs skip the big-int column updates entirely: the
            # mirror's append_row writes the same bits into the mapped words,
            # and _MirrorRows serves them back on demand.
            consistent.append(mask)
        if mirror is not None:
            payload = self.payload_entry(gid) if mirror.file is not None else None
            mirror.append_row(gid, mask, rid, payload=payload)
        return gid

    def tombstone(self, t: Tuple) -> int:
        """Mark a catalogued tuple dead in place; return its (retired) id.

        Nothing is compacted: the id stays assigned, the bitmatrices keep
        their rows, and tuple sets interned before the deletion stay valid —
        only the dead bit moves, so the whole operation is O(1).  Raises
        ``KeyError`` for an uncatalogued tuple and ``ValueError`` for one
        that is already dead.
        """
        gid = self._tuple_ids.get(t)
        if gid is None:
            raise KeyError(f"tuple {t.label!r} is not catalogued")
        bit = 1 << gid
        if self._dead_mask & bit:
            raise ValueError(f"tuple {t.label!r} is already tombstoned")
        mirror = self._packed_mirror
        if mirror is not None and mirror.file is not None and mirror.file.readonly:
            if isinstance(self._consistent, list):
                self._packed_mirror = None
                self._mirror_path = None
                mirror = None
            else:
                from repro.relational.catalog_file import MirrorFileError

                raise MirrorFileError(
                    f"catalog is attached read-only to {mirror.file.path}; "
                    "reopen with writable=True to tombstone"
                )
        self._dead_mask |= bit
        if mirror is not None:
            mirror.tombstone(gid)
        return gid

    # ------------------------------------------------------------------ #
    # the packed columnar mirror
    # ------------------------------------------------------------------ #
    def packed_mirror(self):
        """The catalog's bitmatrices as packed ``uint64`` word arrays.

        Built lazily on first use (requires NumPy) and from then on
        maintained incrementally by :meth:`append_tuple`/:meth:`tombstone`,
        so streaming appends stay O(row) on both representations.  The
        mirror never goes stale: the big ints remain the source of truth
        and every mirror mutation happens inside the same call that mutates
        them.

        The backing is chosen per :func:`~repro.relational.catalog_file.
        resolve_backing`: RAM arrays below the ``REPRO_MMAP_THRESHOLD``
        tuple count, a self-deleting temporary mirror file above it (or as
        forced by ``REPRO_MMAP=on|off``).  A failed file backing degrades to
        RAM with a warning — same contract as kernel selection.
        """
        if self._packed_mirror is None:
            from repro.core.kernels.packed import PackedMirror
            from repro.relational.catalog_file import resolve_backing

            if resolve_backing(self.tuple_count) == "mmap":
                fd, path = tempfile.mkstemp(prefix="repro-mirror-", suffix=".rpmc")
                os.close(fd)
                try:
                    self._packed_mirror = PackedMirror(
                        self, backing="mmap", path=path, delete_on_close=True
                    )
                    self._mirror_path = os.path.abspath(path)
                    return self._packed_mirror
                except Exception as error:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    warnings.warn(
                        f"mmap mirror backing failed ({error}); using RAM",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            self._packed_mirror = PackedMirror(self)
        return self._packed_mirror

    def save_mirror(self, path: str):
        """Write (and keep using) a durable mirror file at ``path``.

        The catalog's matrices and tuple payloads are packed into a sealed
        :class:`~repro.relational.catalog_file.MirrorFile`, and the written
        mirror *becomes* the catalog's packed mirror, so subsequent appends
        and tombstones maintain the file incrementally.  Returns the mirror.
        """
        from repro.core.kernels.packed import PackedMirror

        mirror = PackedMirror(self, backing="mmap", path=path)
        mirror.file.seal()
        self._packed_mirror = mirror
        self._mirror_path = os.path.abspath(path)
        return mirror

    def mirror_meta(self) -> dict:
        """The relation metadata stored in a mirror file's meta section."""
        return {
            "relations": [
                [name, list(attributes), label_prefix]
                for name, attributes, label_prefix in self._relation_meta
            ]
        }

    def payload_entry(self, gid: int) -> list:
        """Tuple ``gid`` as a JSON-ready mirror-file payload entry."""
        t = self._tuples[gid]
        return [
            t.relation_name,
            t.label,
            [None if is_null(v) else v for v in t.values],
            t.importance,
            t.probability,
        ]

    def stamp_mirror_generation(self, generation) -> None:
        """Record the owning database's generation in a writable mirror file.

        A no-op for RAM mirrors and read-only attachments.  The database
        calls this after every catalog-maintained mutation, so a mirror file
        under streaming ingest is always stamped at a database-consistent
        point and :func:`~repro.relational.catalog_file.load_database` can
        verify it.
        """
        mirror = self._packed_mirror
        if mirror is not None and mirror.file is not None and not mirror.file.readonly:
            mirror.file.stamp_generation(tuple(generation))

    def mirror_snapshot_ref(self) -> Optional[dict]:
        """A by-reference snapshot of the tuple entries, if one is possible.

        Non-``None`` only when the catalog has a *durable* file-backed
        mirror (ephemeral auto-selected temp files self-delete and must not
        be referenced).  The ref pins the payload prefix length and the dead
        mask at this moment; since the payload is append-only, the ref stays
        valid under later ingest.
        """
        mirror = self._packed_mirror
        if mirror is None or mirror.file is None or mirror.file.ephemeral:
            return None
        handle = mirror.file
        if not handle.readonly:
            handle.flush()
        return {
            "path": os.path.abspath(handle.path),
            "payload_offset": handle.payload_off,
            "payload_length": handle.payload_used,
            "count": self.tuple_count,
            "dead_mask": format(self._dead_mask, "x"),
        }

    def __getstate__(self):
        # The mirror is a derived cache of NumPy arrays: dropping it keeps
        # catalogs picklable without NumPy on the receiving side.  A RAM
        # mirror rebuilds lazily; a durable file-backed mirror ships its
        # path instead, so the receiver reattaches in O(1) rather than
        # repacking the matrices from big ints.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_packed_mirror"] = None
        mirror = self._packed_mirror
        durable = (
            mirror is not None
            and mirror.file is not None
            and not mirror.file.ephemeral
        )
        state["_mirror_path"] = mirror.path if durable else None
        if not isinstance(self._consistent, list):
            # Attached catalog: the consistency matrix lives in the file —
            # ship the reference, not a big-int copy of the bytes.
            state["_consistent"] = None
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        if self._consistent is None:
            self._reattach_mirror(required=True)
        elif self._mirror_path:
            self._reattach_mirror(required=False)

    def _reattach_mirror(self, required: bool) -> None:
        """Reopen ``_mirror_path`` read-only and attach to it.

        ``required`` is set when the pickled state shipped no consistency
        big ints (attached catalogs): failure to reattach is then an error.
        Otherwise the path is best-effort — on any failure the catalog
        falls back to the lazy RAM rebuild.
        """
        try:
            from repro.core.kernels.packed import PackedMirror
            from repro.relational.catalog_file import MirrorFile, MirrorFileError

            path = self._mirror_path
            if not path:
                raise MirrorFileError("catalog state carries no mirror path")
            handle = MirrorFile.open(path, writable=False)
            if handle.n != len(self._tuples):
                handle.close()
                raise MirrorFileError(
                    f"{path}: mirror holds {handle.n} rows, "
                    f"catalog has {len(self._tuples)}"
                )
            self._packed_mirror = PackedMirror.attached(handle)
            if self._consistent is None:
                self._consistent = _MirrorRows(self._packed_mirror)
        except Exception:
            if required:
                raise
            self._packed_mirror = None
            self._mirror_path = None

    @classmethod
    def _attach(cls, mirror_file, tuples: List[Tuple], dead_mask: int) -> "Catalog":
        """Build a catalog served directly by a mapped mirror file.

        The relation-level masks are small and unpacked to big ints; the
        O(n²)-bit consistency matrix is *not* — it stays in the file behind
        :class:`_MirrorRows` and the attached :class:`PackedMirror
        <repro.core.kernels.packed.PackedMirror>`, paging in on demand.
        ``tuples`` lists every issued gid in order (dead incarnations
        included); ``dead_mask`` is the tombstone set.
        """
        from repro.core.kernels.packed import PackedMirror
        from repro.relational.catalog_file import MirrorFileError

        if len(tuples) != mirror_file.n:
            raise MirrorFileError(
                f"{mirror_file.path}: mirror holds {mirror_file.n} rows, "
                f"caller supplied {len(tuples)} tuples"
            )
        self = object.__new__(cls)
        relations = mirror_file.meta.get("relations") or []
        self._relation_ids = {}
        self._relation_names = []
        self._relation_meta = []
        for rid, (name, attributes, label_prefix) in enumerate(relations):
            self._relation_ids[name] = rid
            self._relation_names.append(name)
            self._relation_meta.append((name, tuple(attributes), label_prefix))
        count = len(self._relation_names)
        self._relation_adjacency = [
            int.from_bytes(mirror_file.adjacency[rid].tobytes(), "little")
            for rid in range(count)
        ]
        self._relation_tuples = [
            int.from_bytes(mirror_file.relation_tuples[rid].tobytes(), "little")
            for rid in range(count)
        ]
        n = mirror_file.n
        self._tuples = list(tuples)
        self._tuple_ids = {}
        for gid, t in enumerate(self._tuples):
            self._tuple_ids[t] = gid  # later (live) incarnation wins
        self._tuple_relation = [int(mirror_file.tuple_relation[gid]) for gid in range(n)]
        self._all_tuples_mask = (1 << n) - 1
        self._dead_mask = dead_mask
        self._connected_cache = {1: True} if count else {}
        self._packed_mirror = PackedMirror.attached(mirror_file)
        self._consistent = _MirrorRows(self._packed_mirror)
        self._mirror_path = os.path.abspath(mirror_file.path)
        return self

    # ------------------------------------------------------------------ #
    # sizes and liveness
    # ------------------------------------------------------------------ #
    @property
    def rows_mapped(self) -> bool:
        """True when the consistency matrix is served from a mapped mirror.

        Big-int row reads then unpack packed words on demand (through
        :class:`_MirrorRows`) instead of indexing a resident list, which
        flips the kernels' vectorize-vs-delegate crossovers: per-pair
        big-int probes stop being cheap, so batch operations should
        prefer the packed forms even at small sizes.
        """
        return isinstance(self._consistent, _MirrorRows)

    @property
    def relation_count(self) -> int:
        """Number of catalogued relations."""
        return len(self._relation_names)

    @property
    def tuple_count(self) -> int:
        """Number of ids ever issued (live and tombstoned alike)."""
        return len(self._tuples)

    @property
    def dead_mask(self) -> int:
        """Bitmask of the tombstoned tuple ids (the tombstone set)."""
        return self._dead_mask

    @property
    def live_mask(self) -> int:
        """Bitmask of the live (not tombstoned) tuple ids."""
        return self._all_tuples_mask & ~self._dead_mask

    @property
    def tombstone_count(self) -> int:
        """Number of tombstoned ids awaiting a compacting rebuild."""
        return bin(self._dead_mask).count("1")

    @property
    def live_tuple_count(self) -> int:
        """Number of live catalogued tuples."""
        return len(self._tuples) - self.tombstone_count

    def is_tombstoned(self, t: Tuple) -> bool:
        """Whether ``t`` maps to a dead id (uncatalogued tuples are not)."""
        gid = self._tuple_ids.get(t)
        return gid is not None and bool((self._dead_mask >> gid) & 1)

    # ------------------------------------------------------------------ #
    # id assignment
    # ------------------------------------------------------------------ #
    def relation_id(self, name: str) -> int:
        """The dense id of the relation named ``name``."""
        return self._relation_ids[name]

    def relation_name(self, rid: int) -> str:
        """The name of the relation with id ``rid``."""
        return self._relation_names[rid]

    def id_of(self, t: Tuple) -> Optional[int]:
        """The global id of ``t``, or ``None`` when ``t`` is not catalogued."""
        return self._tuple_ids.get(t)

    def tuple_at(self, gid: int) -> Tuple:
        """The tuple with global id ``gid``."""
        return self._tuples[gid]

    def entries(self):
        """Yield ``(gid, tuple, dead)`` in id-issuance order.

        This is the storage layer's view of the catalog: every id ever
        issued — tombstoned ones included — in the order they were issued.
        A snapshot serialized from this order restores with identical gids,
        which is what lets persisted result logs name their members by gid
        (the packed mirror is derived state and is rebuilt lazily instead
        of being serialized; see ``__getstate__``).
        """
        dead = self._dead_mask
        for gid, t in enumerate(self._tuples):
            yield gid, t, bool((dead >> gid) & 1)

    def describe(self, t: Tuple) -> Optional[TupleType[int, int, int]]:
        """Return ``(gid, relation_bit, adjacent_relations)`` for ``t``.

        ``None`` when ``t`` is not catalogued — callers fall back to the
        uninterned representation in that case.
        """
        gid = self._tuple_ids.get(t)
        if gid is None:
            return None
        rid = self._tuple_relation[gid]
        return gid, 1 << rid, self._relation_adjacency[rid]

    # ------------------------------------------------------------------ #
    # bitmatrix access
    # ------------------------------------------------------------------ #
    def consistent_mask(self, gid: int) -> int:
        """Bitmask of the tuples join consistent with tuple ``gid`` (other relations only)."""
        return self._consistent[gid]

    def pair_consistent(self, first: int, second: int) -> bool:
        """Join consistency of a catalogued tuple pair (by global ids)."""
        return bool((self._consistent[first] >> second) & 1)

    def relation_of_tuple(self, gid: int) -> int:
        """The relation id of tuple ``gid``."""
        return self._tuple_relation[gid]

    def relation_tuples_mask(self, rid: int) -> int:
        """Bitmask of the tuples belonging to relation ``rid``."""
        return self._relation_tuples[rid]

    def adjacency_mask(self, rid: int) -> int:
        """Bitmask of the relations whose schemas share an attribute with ``rid``."""
        return self._relation_adjacency[rid]

    def tuples_in_relations(self, relation_mask: int) -> int:
        """Bitmask of all tuples whose relation bit is set in ``relation_mask``."""
        mask = 0
        while relation_mask:
            low = relation_mask & -relation_mask
            mask |= self._relation_tuples[low.bit_length() - 1]
            relation_mask ^= low
        return mask

    def relation_mask_of(self, id_mask: int) -> int:
        """Bitmask of the relations represented in the tuple bitmask ``id_mask``."""
        relation_mask = 0
        while id_mask:
            low = id_mask & -id_mask
            relation_mask |= 1 << self._tuple_relation[low.bit_length() - 1]
            id_mask ^= low
        return relation_mask

    def tuples_of_mask(self, id_mask: int) -> List[Tuple]:
        """Materialise the tuples of a tuple bitmask, in global-id order."""
        members: List[Tuple] = []
        while id_mask:
            low = id_mask & -id_mask
            members.append(self._tuples[low.bit_length() - 1])
            id_mask ^= low
        return members

    def mask_of(self, tuples: Iterable[Tuple]) -> Optional[int]:
        """The tuple bitmask of an iterable of tuples, or ``None`` if any is unknown."""
        mask = 0
        ids = self._tuple_ids
        for t in tuples:
            gid = ids.get(t)
            if gid is None:
                return None
            mask |= 1 << gid
        return mask

    # ------------------------------------------------------------------ #
    # connectivity over the relation graph
    # ------------------------------------------------------------------ #
    def relation_component(self, start_rid: int, relation_mask: int) -> int:
        """Relations reachable from ``start_rid`` within ``relation_mask`` (as a bitmask).

        ``start_rid`` is always part of the component, whether or not its bit
        is set in ``relation_mask`` (mirrors
        :meth:`Database.connected_component`).
        """
        adjacency = self._relation_adjacency
        seen = 1 << start_rid
        allowed = relation_mask | seen
        frontier = seen
        while frontier:
            reached = 0
            remaining = frontier
            while remaining:
                low = remaining & -remaining
                reached |= adjacency[low.bit_length() - 1]
                remaining ^= low
            frontier = reached & allowed & ~seen
            seen |= frontier
        return seen

    def relations_connected(self, relation_mask: int) -> bool:
        """Connectivity of the relation sub-graph induced by ``relation_mask``.

        The empty mask and singletons are connected.  Results are memoised —
        the engine asks about the same handful of masks millions of times.
        """
        if relation_mask == 0 or relation_mask & (relation_mask - 1) == 0:
            return True
        cached = self._connected_cache.get(relation_mask)
        if cached is None:
            start = (relation_mask & -relation_mask).bit_length() - 1
            cached = self.relation_component(start, relation_mask) == relation_mask
            self._connected_cache[relation_mask] = cached
        return cached
