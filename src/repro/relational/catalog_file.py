"""The on-disk catalog mirror: a versioned, memory-mappable word-array file.

The packed kernel's :class:`~repro.core.kernels.packed.PackedMirror` keeps the
catalog's bitmatrices as columnar little-endian ``uint64`` word arrays.  This
module gives those arrays a persistent home, so

* databases whose consistency matrix exceeds RAM page in on demand
  (``np.memmap`` over a shared file instead of anonymous memory) — the
  paper's "block-based reading" property at matrix scale, and
* the sharded backend ships a *path* to its workers instead of pickling the
  whole database: every worker maps the same pages through the OS page
  cache, zero-copy.

File layout (all integers little-endian)::

    [ header, 4096 bytes ]
    [ consistency matrix   row_cap x word_cap  u64 ]   one row per tuple gid
    [ tuple_relation       row_cap            i64 ]   gid -> relation id
    [ relation_tuples      max(r,1) x word_cap u64 ]   per-relation member mask
    [ adjacency            max(r,1) x r_words  u64 ]   schema adjacency mask
    [ dead mask            word_cap            u64 ]   tombstone bits
    [ meta                 JSON, 8-aligned         ]   relation names/schemas
    [ payload              JSON lines, grows       ]   one tuple entry per gid

The header records logical sizes (``n`` tuples, ``width`` words) separately
from capacities (``row_cap``, ``word_cap``), exactly like the in-RAM mirror:
streaming appends write one row and bump the logical counts; when a capacity
is exhausted the file grows by doubling (``ftruncate`` + remap) and the
sections are relaid out.  Tombstones flip bits in the dead section in place.
The payload region is append-only — one JSON line per gid, dead flags live in
the dead section, never in the payload — and is the last section, so payload
appends extend the file without moving anything.

Integrity: the header carries a CRC over itself and a running CRC over the
append-only payload, both checked on open.  ``seal()`` (the ``repro pack``
CLI and ``Catalog.save_mirror`` call it) additionally records a CRC over the
whole body and sets the SEALED flag; any later mutation clears the flag.  The
word sections mutate in place, so their checksum is only defined at seal
points — the same contract as the WAL/snapshot layer's "checksummed at rest".

Backing selection mirrors the kernel-selection machinery: ``REPRO_MMAP=on``
forces the file backing, ``off`` forces RAM, and by default the mirror goes
to a (self-deleting) file once the catalog crosses ``REPRO_MMAP_THRESHOLD``
tuples.  Without NumPy everything here degrades to the RAM/bigint path — the
module imports, the selection answers ``"ram"``, and only actually opening a
mirror file raises.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import warnings
import weakref
import zlib
from typing import List

try:  # pragma: no cover - exercised by the no-NumPy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

MAGIC = b"RPMIRR01"
FORMAT_VERSION = 1
HEADER_SIZE = 4096

#: Set by :meth:`MirrorFile.seal`; cleared by any mutation.  While set,
#: ``body_crc`` covers every byte from the end of the header through the end
#: of the used payload.
FLAG_SEALED = 1

#: magic, format, flags, n, width, row_cap, word_cap, relation_count,
#: r_words, generation (4 signed), meta_off, meta_len, payload_off,
#: payload_used, payload_cap, payload_crc, body_crc — a little-endian CRC32
#: of these packed bytes follows immediately.
_HEADER = struct.Struct("<8sII6Q4q5QII")
_HEADER_CRC = struct.Struct("<I")

#: Tuples at or above this count move an automatically-selected mirror to a
#: temporary file (override with ``REPRO_MMAP_THRESHOLD``).  At the default,
#: the consistency matrix alone is ~0.5 GiB — past the point where a second
#: in-RAM copy of the catalog's matrices starts to hurt.
DEFAULT_MMAP_THRESHOLD = 65536

_GENERATION_UNSTAMPED = (-1, -1, -1, -1)


class MirrorFileError(Exception):
    """A mirror file that cannot be created, grown, decoded, or verified."""


def mmap_threshold() -> int:
    """The automatic-selection tuple threshold (``REPRO_MMAP_THRESHOLD``)."""
    raw = os.environ.get("REPRO_MMAP_THRESHOLD", "").strip()
    if not raw:
        return DEFAULT_MMAP_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        warnings.warn(
            f"invalid REPRO_MMAP_THRESHOLD {raw!r}; "
            f"using the default ({DEFAULT_MMAP_THRESHOLD})",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_MMAP_THRESHOLD


def resolve_backing(tuple_count: int) -> str:
    """``"ram"`` or ``"mmap"`` for a mirror over ``tuple_count`` tuples.

    Mirrors the kernel-selection contract: an explicit ``REPRO_MMAP=on|off``
    wins, otherwise the size threshold decides, and a host without NumPy
    always answers ``"ram"`` (the packed mirror cannot exist there at all, so
    ``REPRO_MMAP=on`` degrades cleanly instead of failing).
    """
    if np is None:
        return "ram"
    spec = os.environ.get("REPRO_MMAP", "").strip().lower()
    if spec in ("on", "1", "true", "yes", "mmap"):
        return "mmap"
    if spec in ("off", "0", "false", "no", "ram"):
        return "ram"
    if spec and spec != "auto":
        warnings.warn(
            f"unknown REPRO_MMAP value {spec!r}; using automatic selection",
            RuntimeWarning,
            stacklevel=2,
        )
    return "mmap" if tuple_count >= mmap_threshold() else "ram"


def _encode_payload_line(entry) -> bytes:
    return json.dumps(list(entry), separators=(",", ":")).encode("utf-8") + b"\n"


def _read_header_fields(raw: bytes, path: str) -> dict:
    """Parse and verify the fixed header; raise :class:`MirrorFileError`."""
    need = _HEADER.size + _HEADER_CRC.size
    if len(raw) < need:
        raise MirrorFileError(f"{path}: truncated mirror header")
    (expected_crc,) = _HEADER_CRC.unpack_from(raw, _HEADER.size)
    if zlib.crc32(raw[: _HEADER.size]) != expected_crc:
        raise MirrorFileError(f"{path}: mirror header checksum mismatch")
    fields = _HEADER.unpack_from(raw, 0)
    (magic, fmt, flags, n, width, row_cap, word_cap, relation_count, r_words
     ) = fields[:9]
    if magic != MAGIC:
        raise MirrorFileError(f"{path}: not a catalog mirror file")
    if fmt != FORMAT_VERSION:
        raise MirrorFileError(
            f"{path}: mirror format {fmt} is not supported (expected {FORMAT_VERSION})"
        )
    generation = tuple(fields[9:13])
    meta_off, meta_len, payload_off, payload_used, payload_cap = fields[13:18]
    payload_crc, body_crc = fields[18:20]
    return {
        "flags": flags,
        "n": n,
        "width": width,
        "row_cap": row_cap,
        "word_cap": word_cap,
        "relation_count": relation_count,
        "r_words": r_words,
        "generation": generation,
        "meta_off": meta_off,
        "meta_len": meta_len,
        "payload_off": payload_off,
        "payload_used": payload_used,
        "payload_cap": payload_cap,
        "payload_crc": payload_crc,
        "body_crc": body_crc,
    }


class MirrorFile:
    """One open mirror file: header state plus mapped word-array views.

    Use :meth:`create` for a fresh file and :meth:`open` for an existing one;
    the mapped section views (``consistent``, ``relation_tuples``,
    ``adjacency``, ``dead``, ``tuple_relation``) are NumPy arrays over the
    shared mapping — mutating them mutates the file.  Callers holding views
    must rebind after :meth:`grow` or a payload extension (both remap).
    """

    def __init__(self):
        raise TypeError("use MirrorFile.create() or MirrorFile.open()")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def _blank(cls) -> "MirrorFile":
        self = object.__new__(cls)
        self.path = None
        self.readonly = False
        self.ephemeral = False
        self._handle = None
        self._map = None
        self._u8 = None
        self._finalizer = None
        return self

    @classmethod
    def create(
        cls,
        path: str,
        *,
        row_cap: int,
        word_cap: int,
        relation_count: int,
        r_words: int,
        meta: dict,
        delete_on_close: bool = False,
    ) -> "MirrorFile":
        """Create (or truncate) a mirror file with the given capacities."""
        if np is None:
            raise MirrorFileError("mirror files require NumPy")
        self = cls._blank()
        self.path = os.fspath(path)
        self.ephemeral = bool(delete_on_close)
        meta_blob = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode("utf-8")
        self.flags = 0
        self.n = 0
        self.width = 1
        self.row_cap = max(1, int(row_cap))
        self.word_cap = max(1, int(word_cap))
        self.relation_count = int(relation_count)
        self.r_words = max(1, int(r_words))
        self.generation = _GENERATION_UNSTAMPED
        self.meta_len = len(meta_blob)
        self.meta_off = self._dead_off() + self.word_cap * 8
        self.payload_off = self.meta_off + ((self.meta_len + 7) & ~7)
        self.payload_used = 0
        self.payload_cap = 4096
        self.payload_crc = 0
        self.body_crc = 0
        self._meta = meta
        self._handle = open(self.path, "w+b")
        self._handle.truncate(self.payload_off + self.payload_cap)
        self._remap()
        if meta_blob:
            self._u8[self.meta_off : self.meta_off + self.meta_len] = np.frombuffer(
                meta_blob, dtype=np.uint8
            )
        self._write_header()
        if self.ephemeral:
            self._finalizer = weakref.finalize(self, _unlink_quietly, self.path)
        return self

    @classmethod
    def open(cls, path: str, writable: bool = False) -> "MirrorFile":
        """Map an existing mirror file, verifying header and payload CRCs."""
        if np is None:
            raise MirrorFileError("mirror files require NumPy")
        self = cls._blank()
        self.path = os.fspath(path)
        self.readonly = not writable
        try:
            self._handle = open(self.path, "r+b" if writable else "rb")
        except OSError as error:
            raise MirrorFileError(f"cannot open mirror file {path!r}: {error}") from None
        raw = self._handle.read(HEADER_SIZE)
        for name, value in _read_header_fields(raw, self.path).items():
            setattr(self, name, value)
        size = os.fstat(self._handle.fileno()).st_size
        if size < self.payload_off + self.payload_used:
            raise MirrorFileError(f"{self.path}: mirror file is shorter than its header claims")
        self._remap()
        meta_blob = bytes(self._u8[self.meta_off : self.meta_off + self.meta_len])
        try:
            self._meta = json.loads(meta_blob.decode("utf-8")) if self.meta_len else {}
        except (ValueError, UnicodeDecodeError):
            raise MirrorFileError(f"{self.path}: mirror metadata is corrupt") from None
        payload = memoryview(self._map)[
            self.payload_off : self.payload_off + self.payload_used
        ]
        if zlib.crc32(payload) != self.payload_crc:
            raise MirrorFileError(f"{self.path}: payload checksum mismatch")
        return self

    # ------------------------------------------------------------------ #
    # mapping and section views
    # ------------------------------------------------------------------ #
    def _remap(self) -> None:
        access = mmap.ACCESS_READ if self.readonly else mmap.ACCESS_WRITE
        # The previous mapping, if any, is dropped by reference only: NumPy
        # views exported from it keep it alive, and both mappings share the
        # same page-cache pages, so stale views keep reading/writing the
        # same bytes until their holders rebind.
        self._map = mmap.mmap(self._handle.fileno(), 0, access=access)
        self._u8 = np.frombuffer(self._map, dtype=np.uint8)
        if self.readonly:
            self._u8 = self._u8.view()
            self._u8.flags.writeable = False
        u64 = np.dtype("<u8")
        rc, wc = self.row_cap, self.word_cap
        rows = max(self.relation_count, 1)
        offset = HEADER_SIZE
        self.consistent = self._u8[offset : offset + rc * wc * 8].view(u64).reshape(rc, wc)
        offset += rc * wc * 8
        self.tuple_relation = self._u8[offset : offset + rc * 8].view(np.dtype("<i8"))
        offset += rc * 8
        self.relation_tuples = self._u8[offset : offset + rows * wc * 8].view(u64).reshape(rows, wc)
        offset += rows * wc * 8
        self.adjacency = (
            self._u8[offset : offset + rows * self.r_words * 8]
            .view(u64)
            .reshape(rows, self.r_words)
        )
        offset += rows * self.r_words * 8
        self.dead = self._u8[offset : offset + wc * 8].view(u64)

    def _dead_off(self) -> int:
        rows = max(self.relation_count, 1)
        return (
            HEADER_SIZE
            + self.row_cap * self.word_cap * 8  # consistency matrix
            + self.row_cap * 8  # tuple_relation
            + rows * self.word_cap * 8  # relation_tuples
            + rows * self.r_words * 8  # adjacency
        )

    @property
    def meta(self) -> dict:
        return self._meta

    @property
    def sealed(self) -> bool:
        return bool(self.flags & FLAG_SEALED)

    # ------------------------------------------------------------------ #
    # header maintenance
    # ------------------------------------------------------------------ #
    def _require_writable(self) -> None:
        if self.readonly:
            raise MirrorFileError(f"{self.path}: mirror file is mapped read-only")

    def _write_header(self) -> None:
        self._require_writable()
        packed = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            self.flags,
            self.n,
            self.width,
            self.row_cap,
            self.word_cap,
            self.relation_count,
            self.r_words,
            *self.generation,
            self.meta_off,
            self.meta_len,
            self.payload_off,
            self.payload_used,
            self.payload_cap,
            self.payload_crc,
            self.body_crc,
        )
        packed += _HEADER_CRC.pack(zlib.crc32(packed))
        self._u8[: len(packed)] = np.frombuffer(packed, dtype=np.uint8)

    def mark_dirty(self) -> None:
        """In-place word mutation happened: the body CRC is no longer valid."""
        if self.flags & FLAG_SEALED:
            self.flags &= ~FLAG_SEALED
            self.body_crc = 0
            self._write_header()

    def set_counts(self, n: int, width: int) -> None:
        """Record the new logical extent after an append."""
        self.n = n
        self.width = width
        if self.flags & FLAG_SEALED:
            self.flags &= ~FLAG_SEALED
            self.body_crc = 0
        self._write_header()

    def stamp_generation(self, generation) -> None:
        """Record the producing database's generation token in the header."""
        self.generation = tuple(int(part) for part in generation)
        if len(self.generation) != 4:
            raise MirrorFileError(f"generation token must have 4 parts, got {generation!r}")
        self._write_header()

    def seal(self) -> None:
        """Checksum the whole body and mark the file clean at rest."""
        self._require_writable()
        end = self.payload_off + self.payload_used
        self.body_crc = zlib.crc32(memoryview(self._map)[HEADER_SIZE:end])
        self.flags |= FLAG_SEALED
        self._write_header()
        self.flush()

    def verify_body(self) -> bool:
        """Re-checksum a sealed body; ``True`` when intact (or unsealed)."""
        if not self.sealed:
            return True
        end = self.payload_off + self.payload_used
        return zlib.crc32(memoryview(self._map)[HEADER_SIZE:end]) == self.body_crc

    # ------------------------------------------------------------------ #
    # payload (tuple entries)
    # ------------------------------------------------------------------ #
    def append_payload(self, entry) -> bool:
        """Append one tuple entry line; ``True`` when the file was remapped."""
        self._require_writable()
        line = _encode_payload_line(entry)
        remapped = False
        if self.payload_used + len(line) > self.payload_cap:
            new_cap = self.payload_cap
            while self.payload_used + len(line) > new_cap:
                new_cap *= 2
            self._handle.truncate(self.payload_off + new_cap)
            self.payload_cap = new_cap
            self._remap()
            remapped = True
        start = self.payload_off + self.payload_used
        self._u8[start : start + len(line)] = np.frombuffer(line, dtype=np.uint8)
        self.payload_crc = zlib.crc32(line, self.payload_crc)
        self.payload_used += len(line)
        if self.flags & FLAG_SEALED:
            self.flags &= ~FLAG_SEALED
            self.body_crc = 0
        self._write_header()
        return remapped

    def payload_bytes(self) -> bytes:
        """The used payload region as bytes (one JSON line per gid)."""
        return bytes(self._u8[self.payload_off : self.payload_off + self.payload_used])

    def read_payload_entries(self) -> List[list]:
        """Decode the payload region: exactly ``n`` tuple entries, gid order."""
        lines = self.payload_bytes().splitlines()
        if len(lines) != self.n:
            raise MirrorFileError(
                f"{self.path}: payload holds {len(lines)} entries, header claims {self.n}"
            )
        return [json.loads(line) for line in lines]

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def grow(self, need_rows: int, need_words: int) -> None:
        """Double capacities until they cover the need; relay out in place.

        The logical data (``n`` rows by ``width`` words, plus the meta and
        payload bytes) is read into RAM, the file is extended, and every
        section is rewritten at its new offset — amortized exactly like the
        in-RAM mirror's capacity doubling.
        """
        self._require_writable()
        new_rows = self.row_cap
        while new_rows < need_rows:
            new_rows *= 2
        new_words = self.word_cap
        while new_words < need_words:
            new_words *= 2
        if new_rows == self.row_cap and new_words == self.word_cap:
            return
        n, width = self.n, self.width
        consistent = np.array(self.consistent[:n, :width])
        tuple_relation = np.array(self.tuple_relation[:n])
        relation_tuples = np.array(self.relation_tuples[:, :width])
        adjacency = np.array(self.adjacency)
        dead = np.array(self.dead[:width])
        meta_blob = bytes(self._u8[self.meta_off : self.meta_off + self.meta_len])
        payload = self.payload_bytes()

        self.row_cap = new_rows
        self.word_cap = new_words
        self.meta_off = self._dead_off() + self.word_cap * 8
        self.payload_off = self.meta_off + ((self.meta_len + 7) & ~7)
        while self.payload_cap < self.payload_used:
            self.payload_cap *= 2
        self._handle.truncate(self.payload_off + self.payload_cap)
        self._remap()
        # Zero the whole body: the old layout's bytes are garbage at the new
        # offsets (same cost class as allocating the doubled RAM arrays).
        self._u8[HEADER_SIZE:] = 0
        self.consistent[:n, :width] = consistent
        self.tuple_relation[:n] = tuple_relation
        self.relation_tuples[:, :width] = relation_tuples
        self.adjacency[:, :] = adjacency
        self.dead[:width] = dead
        if meta_blob:
            self._u8[self.meta_off : self.meta_off + self.meta_len] = np.frombuffer(
                meta_blob, dtype=np.uint8
            )
        if payload:
            self._u8[self.payload_off : self.payload_off + len(payload)] = np.frombuffer(
                payload, dtype=np.uint8
            )
        if self.flags & FLAG_SEALED:
            self.flags &= ~FLAG_SEALED
            self.body_crc = 0
        self._write_header()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Flush the mapping (cross-host durability; same-host readers share pages anyway)."""
        if self._map is not None and not self.readonly:
            self._map.flush()

    def release_pages(self) -> None:
        """Advise the OS to drop resident clean pages (bounds peak RSS)."""
        if self._map is None:
            return
        madvise = getattr(self._map, "madvise", None)
        dontneed = getattr(mmap, "MADV_DONTNEED", None)
        if madvise is not None and dontneed is not None:
            if not self.readonly:
                self._map.flush()
            madvise(dontneed)

    def close(self) -> None:
        """Drop the mapping and close the file (unlink when ephemeral)."""
        self.consistent = None
        self.relation_tuples = None
        self.adjacency = None
        self.dead = None
        self.tuple_relation = None
        self._u8 = None
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # exported views still alive; GC reclaims later
                pass
            self._map = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        elif self.ephemeral:
            _unlink_quietly(self.path)

    def size_bytes(self) -> int:
        """The current on-disk size of the mirror file."""
        return self.payload_off + self.payload_cap

    def __repr__(self) -> str:
        mode = "ro" if self.readonly else "rw"
        return (
            f"MirrorFile({self.path!r}, {mode}, n={self.n}, width={self.width}, "
            f"caps=({self.row_cap}x{self.word_cap}), sealed={self.sealed})"
        )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


# --------------------------------------------------------------------------- #
# whole-database attach (the worker side of the zero-copy fan-out)
# --------------------------------------------------------------------------- #

def load_database(path: str, writable: bool = False):
    """Reconstruct a light ``Database`` shell around a mirror file.

    The relations and live tuples are rebuilt in O(n) from the payload region
    (gid-issuance order, label reuse replayed exactly like
    :meth:`Database.restore_state`), while the O(n²)-bit consistency matrix is
    *attached*: the catalog serves consistency straight from the mapped words
    and never materialises the big-int matrix.  The restored generation token
    must equal the one stamped in the header — a mismatch means the file does
    not describe the database the caller expects, and attaching would produce
    wrong streams.
    """
    from repro.relational.catalog import Catalog
    from repro.relational.database import Database
    from repro.relational.nulls import NULL
    from repro.relational.relation import Relation

    handle = MirrorFile.open(path, writable=writable)
    meta = handle.meta
    relations = meta.get("relations")
    if relations is None:
        handle.close()
        raise MirrorFileError(f"{path}: mirror file carries no relation metadata")
    database = Database()
    for name, attributes, label_prefix in relations:
        database.add_relation(Relation(name, attributes, label_prefix=label_prefix))
    entries = handle.read_payload_entries()
    dead_words = bytes(np.ascontiguousarray(handle.dead[: handle.width]))
    dead_mask = int.from_bytes(dead_words, "little")
    tuples_by_gid = []
    live: dict = {}
    for gid, (relation_name, label, values, importance, probability) in enumerate(entries):
        relation = database.relation(relation_name)
        if (relation_name, label) in live:
            # Label reuse: an update tombstoned the old incarnation and
            # re-issued the label; replaying remove+add keeps scan order
            # identical to the producing database's.
            relation.remove(label)
        t = relation.add(
            tuple(NULL if v is None else v for v in values),
            label=label,
            importance=importance,
            probability=probability,
        )
        tuples_by_gid.append(t)
        live[(relation_name, label)] = gid
    for (relation_name, label), gid in live.items():
        if (dead_mask >> gid) & 1:
            database.relation(relation_name).remove(label)
    catalog = Catalog._attach(handle, tuples_by_gid, dead_mask)
    database._catalog_cache = catalog
    database._catalog_key = database._structure_key()
    generation = handle.generation
    if generation == _GENERATION_UNSTAMPED:
        handle.close()
        raise MirrorFileError(
            f"{path}: mirror file carries no generation stamp; "
            "write it with Database.save_mirror or `repro pack`"
        )
    database.catalog_rebuilds = generation[0]
    database.epoch = generation[1]
    if tuple(database.generation) != generation:
        handle.close()
        raise MirrorFileError(
            f"{path}: restored generation {tuple(database.generation)} does not "
            f"match the stamped {generation}"
        )
    return database


def read_snapshot_entries(ref: dict) -> List[list]:
    """Materialise a snapshot's by-reference tuple entries.

    ``ref`` is the ``tuples_ref`` written by ``Database.snapshot_state`` for
    a file-backed catalog: the mirror path, the payload length *at snapshot
    time*, the entry count, and the dead mask (hex) at that moment.  The
    payload region is append-only, so reading the recorded prefix of the
    file's current payload reproduces the snapshot's entries exactly even
    after later ingest; the dead flags come from the ref, not from the
    (possibly newer) dead section.  Pure file I/O — works without NumPy.
    """
    path = ref["path"]
    count = int(ref["count"])
    length = int(ref["payload_length"])
    dead_mask = int(ref.get("dead_mask") or "0", 16)
    try:
        with open(path, "rb") as handle:
            header = _read_header_fields(handle.read(HEADER_SIZE), path)
            if length > header["payload_used"]:
                raise MirrorFileError(
                    f"{path}: snapshot references {length} payload bytes, "
                    f"file holds {header['payload_used']}"
                )
            handle.seek(header["payload_off"])
            raw = handle.read(length)
    except OSError as error:
        raise MirrorFileError(f"cannot read mirror file {path!r}: {error}") from None
    if len(raw) != length:
        raise MirrorFileError(f"{path}: mirror payload is shorter than the snapshot recorded")
    lines = raw.splitlines()
    if len(lines) != count:
        raise MirrorFileError(
            f"{path}: snapshot references {count} entries, payload prefix holds {len(lines)}"
        )
    entries = []
    for gid, line in enumerate(lines):
        relation_name, label, values, importance, probability = json.loads(line)
        entries.append(
            [relation_name, label, values, importance, probability,
             bool((dead_mask >> gid) & 1)]
        )
    return entries
