"""Null-tolerant, immutable tuples.

A :class:`Tuple` knows the relation it belongs to, its label (``c1``, ``a2``
and so on, used throughout the paper to identify tuples) and its values.
Because a tuple carries its full schema, join consistency and connectivity of
tuple sets can be decided without consulting the database.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple as TupleType

from repro.relational.errors import SchemaError
from repro.relational.nulls import NULL, is_null
from repro.relational.schema import Schema


class Tuple:
    """An immutable tuple of a relation.

    Parameters
    ----------
    relation_name:
        Name of the relation the tuple belongs to.
    schema:
        The schema of that relation (``Schema(t)`` in the paper).
    values:
        The attribute values, one per schema attribute, in schema order.
        Null cells may be given as :data:`repro.relational.NULL` or ``None``.
    label:
        A short identifier used when printing tuple sets (e.g. ``"c1"``).
        Labels are assigned automatically by :class:`~repro.relational.Relation`
        when not provided.
    importance:
        Optional numeric importance ``imp(t)`` used by ranking functions
        (Section 5).  Defaults to ``0.0``.
    probability:
        Optional probability ``prob(t)`` that the tuple is correct, used by
        approximate-join functions (Section 6).  Defaults to ``1.0``.
    """

    __slots__ = (
        "_relation_name",
        "_schema",
        "_values",
        "_label",
        "_importance",
        "_probability",
        "_hash",
    )

    def __init__(
        self,
        relation_name: str,
        schema: Schema,
        values: Iterable[object],
        label: str,
        importance: float = 0.0,
        probability: float = 1.0,
    ):
        values = tuple(NULL if is_null(v) else v for v in values)
        if len(values) != len(schema):
            raise SchemaError(
                f"tuple {label!r} of {relation_name!r} has {len(values)} values "
                f"but the schema has {len(schema)} attributes"
            )
        if not (0.0 <= probability <= 1.0):
            raise SchemaError(
                f"tuple {label!r}: probability must be in [0, 1], got {probability}"
            )
        self._relation_name = relation_name
        self._schema = schema
        self._values: TupleType[object, ...] = values
        self._label = label
        self._importance = float(importance)
        self._probability = float(probability)
        self._hash = hash((relation_name, label, values))

    @property
    def relation_name(self) -> str:
        """Name of the relation this tuple belongs to."""
        return self._relation_name

    @property
    def schema(self) -> Schema:
        """``Schema(t)``: the attributes of the relation this tuple belongs to."""
        return self._schema

    @property
    def values(self) -> TupleType[object, ...]:
        """The values in schema order (nulls are :data:`NULL`)."""
        return self._values

    @property
    def label(self) -> str:
        """The tuple's display label (e.g. ``"c1"``)."""
        return self._label

    @property
    def importance(self) -> float:
        """``imp(t)``: the tuple's importance for ranking functions."""
        return self._importance

    @property
    def probability(self) -> float:
        """``prob(t)``: the tuple's probability of being correct."""
        return self._probability

    def __getitem__(self, attribute: str) -> object:
        """Return ``t[A]``, the value of attribute ``A`` (raises if A is not in the schema)."""
        return self._values[self._schema.position(attribute)]

    def get(self, attribute: str, default: object = NULL) -> object:
        """Return ``t[A]`` or ``default`` when ``A`` is not in the schema."""
        if attribute not in self._schema:
            return default
        return self._values[self._schema.position(attribute)]

    def has_attribute(self, attribute: str) -> bool:
        """Return ``True`` when ``attribute`` belongs to the tuple's schema."""
        return attribute in self._schema

    def is_null(self, attribute: str) -> bool:
        """Return ``True`` when the value of ``attribute`` is null."""
        return is_null(self[attribute])

    def non_null_items(self) -> Iterable:
        """Yield ``(attribute, value)`` pairs for the non-null attributes."""
        for attribute, value in zip(self._schema.attributes, self._values):
            if not is_null(value):
                yield attribute, value

    def items(self) -> Iterable:
        """Yield all ``(attribute, value)`` pairs in schema order."""
        return zip(self._schema.attributes, self._values)

    def as_dict(self) -> dict:
        """Return the tuple as an ``attribute -> value`` dictionary."""
        return dict(self.items())

    def join_consistent_with(self, other: "Tuple") -> bool:
        """Return ``True`` when ``{self, other}`` is join consistent.

        Two tuples are join consistent when, for every attribute common to
        their schemas, both have the same non-null value (Section 2).
        Tuples of the same relation that are distinct tuples can never belong
        to the same connected tuple set, but join consistency by itself only
        constrains shared attribute values.
        """
        shared = self._schema.shared_attributes(other._schema)
        for attribute in shared:
            mine = self[attribute]
            theirs = other[attribute]
            if is_null(mine) or is_null(theirs) or mine != theirs:
                return False
        return True

    def connects_to(self, other: "Tuple") -> bool:
        """Return ``True`` when the relations of the two tuples share an attribute."""
        return self._schema.connects_to(other._schema)

    def with_importance(self, importance: float) -> "Tuple":
        """Return a copy of the tuple with a different importance value."""
        return Tuple(
            self._relation_name,
            self._schema,
            self._values,
            self._label,
            importance=importance,
            probability=self._probability,
        )

    def with_probability(self, probability: float) -> "Tuple":
        """Return a copy of the tuple with a different probability value."""
        return Tuple(
            self._relation_name,
            self._schema,
            self._values,
            self._label,
            importance=self._importance,
            probability=probability,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self._relation_name == other._relation_name
            and self._label == other._label
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Tuple") -> bool:
        # A deterministic, human-friendly order: by relation then label.
        if not isinstance(other, Tuple):
            return NotImplemented
        return (self._relation_name, self._label) < (other._relation_name, other._label)

    def __repr__(self) -> str:
        rendered = ", ".join(f"{a}={v!r}" for a, v in self.items())
        return f"{self._label}:{self._relation_name}({rendered})"

    def __str__(self) -> str:
        return self._label


def tuple_from_mapping(
    relation_name: str,
    schema: Schema,
    mapping: Mapping[str, object],
    label: str,
    importance: float = 0.0,
    probability: float = 1.0,
) -> Tuple:
    """Build a :class:`Tuple` from an ``attribute -> value`` mapping.

    Attributes of the schema missing from the mapping become null.
    Extra keys not present in the schema raise :class:`SchemaError`.
    """
    extra = set(mapping) - set(schema.attributes)
    if extra:
        raise SchemaError(
            f"values {sorted(extra)} are not attributes of schema {schema}"
        )
    values = [mapping.get(attribute, NULL) for attribute in schema.attributes]
    return Tuple(
        relation_name,
        schema,
        values,
        label,
        importance=importance,
        probability=probability,
    )
