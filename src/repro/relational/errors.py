"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class SchemaError(ReproError):
    """Raised when a schema is malformed or a value set does not match it."""


class RelationError(ReproError):
    """Raised when a relation is constructed or used inconsistently."""


class DatabaseError(ReproError):
    """Raised when a database is malformed (e.g. duplicate relation names)."""


class CSVFormatError(ReproError):
    """Raised when a CSV file cannot be parsed into a relation."""


class RankingError(ReproError):
    """Raised when a ranking function is used outside its contract.

    For example, requesting ranked retrieval with a ranking function that is
    not monotonically c-determined.
    """


class ApproximateJoinError(ReproError):
    """Raised when an approximate-join function violates its contract."""
