"""Relation schemas.

A schema is an ordered collection of attribute names.  Two relations are
*connected* exactly when their schemas share at least one attribute
(Section 2 of the paper); the schema object exposes that test directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple as TupleType

from repro.relational.errors import SchemaError


class Schema:
    """An ordered, duplicate-free collection of attribute names.

    Parameters
    ----------
    attributes:
        The attribute names, in the column order used when rendering tuples.

    Attribute names must be non-empty strings and must be unique within the
    schema.
    """

    __slots__ = ("_attributes", "_attribute_set", "_positions")

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema must have at least one attribute")
        seen = set()
        for attribute in attrs:
            if not isinstance(attribute, str) or not attribute:
                raise SchemaError(
                    f"attribute names must be non-empty strings, got {attribute!r}"
                )
            if attribute in seen:
                raise SchemaError(f"duplicate attribute {attribute!r} in schema")
            seen.add(attribute)
        self._attributes: TupleType[str, ...] = attrs
        self._attribute_set = frozenset(attrs)
        self._positions = {attribute: idx for idx, attribute in enumerate(attrs)}

    @property
    def attributes(self) -> TupleType[str, ...]:
        """The attributes in declaration (column) order."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset:
        """The attributes as a frozenset, for O(1) membership tests."""
        return self._attribute_set

    def position(self, attribute: str) -> int:
        """Return the column position of ``attribute``.

        Raises :class:`SchemaError` if the attribute is not in the schema.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(f"attribute {attribute!r} not in schema {self}") from None

    def sorted_positions(self) -> dict:
        """Map each attribute to its rank when attributes are sorted by name.

        This is the auxiliary per-relation structure described right before
        Theorem 4.8 of the paper: it allows building the sorted triple-list
        representation of a singleton tuple set in linear time (bucket sort).
        """
        return {attribute: rank for rank, attribute in enumerate(sorted(self._attributes))}

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attribute_set

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._attributes)})"

    def shared_attributes(self, other: "Schema") -> frozenset:
        """Return the attributes common to both schemas."""
        return self._attribute_set & other._attribute_set

    def connects_to(self, other: "Schema") -> bool:
        """Return ``True`` if the two schemas share at least one attribute.

        This is the paper's notion of two relations being *connected*.
        """
        return bool(self._attribute_set & other._attribute_set)

    def project(self, attributes: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``attributes`` (kept in the given order)."""
        missing = [a for a in attributes if a not in self._attribute_set]
        if missing:
            raise SchemaError(f"cannot project on attributes not in schema: {missing}")
        return Schema(attributes)

    def union(self, other: "Schema") -> "Schema":
        """Return the schema of a (outer)join result: this schema followed by
        the attributes of ``other`` that are not already present."""
        extra = [a for a in other.attributes if a not in self._attribute_set]
        return Schema(self._attributes + tuple(extra))
