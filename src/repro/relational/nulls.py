"""The null value (⊥) used throughout the library.

The paper allows source relations to contain null values and uses ``⊥`` to
denote them.  We model the null value with a dedicated singleton rather than
``None`` so that ``None`` can never be confused with a missing attribute and
so that nulls render as ``⊥`` in tables, exactly as in the paper.
"""

from __future__ import annotations


class Null:
    """Singleton type of the null value ``⊥``.

    Nulls compare equal only to other nulls, are falsy and hashable.  The
    module-level constant :data:`NULL` is the only instance client code should
    ever use; the constructor always returns that instance.
    """

    _instance: "Null" = None

    __slots__ = ()

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __str__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __ne__(self, other: object) -> bool:
        return not isinstance(other, Null)

    def __hash__(self) -> int:
        return hash(Null)

    def __reduce__(self):
        # Pickling must preserve the singleton property.
        return (Null, ())


#: The null value ``⊥``.
NULL = Null()


def is_null(value: object) -> bool:
    """Return ``True`` if ``value`` is the null value.

    ``None`` is also treated as null so that plain Python rows (e.g. parsed
    from CSV files with missing cells) can be ingested directly.
    """
    return value is None or isinstance(value, Null)


def coalesce(value: object, default: object) -> object:
    """Return ``value`` unless it is null, in which case return ``default``."""
    return default if is_null(value) else value
