"""Relations: named collections of tuples over a fixed schema."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.relational.errors import RelationError
from repro.relational.nulls import NULL, is_null
from repro.relational.schema import Schema
from repro.relational.tuples import Tuple, tuple_from_mapping


class Relation:
    """A named relation with a fixed schema and an ordered list of tuples.

    Tuples are stored in insertion order; the order is what the algorithms
    scan when iterating over the database, so it is deterministic.

    Parameters
    ----------
    name:
        The relation name (``R_i`` in the paper); must be unique per database.
    schema:
        Either a :class:`Schema` or an iterable of attribute names.
    label_prefix:
        Prefix used when auto-generating tuple labels; defaults to the
        lower-cased first character of the relation name, matching the
        ``c1, a1, s1`` convention of the paper's examples.
    """

    def __init__(
        self,
        name: str,
        schema,
        label_prefix: Optional[str] = None,
    ):
        if not name or not isinstance(name, str):
            raise RelationError(f"relation name must be a non-empty string, got {name!r}")
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self._name = name
        self._schema = schema
        self._tuples: List[Tuple] = []
        self._labels = set()
        self._label_prefix = label_prefix or name[0].lower()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumped by every add and remove.

        Unlike the tuple *count* — which an add/remove pair leaves unchanged
        — the version never repeats, so the database's catalog staleness
        check cannot be fooled by count-neutral out-of-band mutations.
        """
        return self._version

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The relation schema."""
        return self._schema

    @property
    def attributes(self) -> tuple:
        """The schema attributes in column order."""
        return self._schema.attributes

    @property
    def tuples(self) -> Sequence[Tuple]:
        """The tuples in insertion order (read-only view)."""
        return tuple(self._tuples)

    def _next_label(self) -> str:
        label = f"{self._label_prefix}{len(self._tuples) + 1}"
        # Guard against collisions with explicitly provided labels.
        suffix = len(self._tuples) + 1
        while label in self._labels:
            suffix += 1
            label = f"{self._label_prefix}{suffix}"
        return label

    def add(
        self,
        values: Iterable[object],
        label: Optional[str] = None,
        importance: float = 0.0,
        probability: float = 1.0,
    ) -> Tuple:
        """Append a tuple given its values in schema order and return it."""
        label = label or self._next_label()
        if label in self._labels:
            raise RelationError(f"duplicate tuple label {label!r} in relation {self._name!r}")
        t = Tuple(
            self._name,
            self._schema,
            values,
            label,
            importance=importance,
            probability=probability,
        )
        self._tuples.append(t)
        self._labels.add(label)
        self._version += 1
        return t

    def add_mapping(
        self,
        mapping: Mapping[str, object],
        label: Optional[str] = None,
        importance: float = 0.0,
        probability: float = 1.0,
    ) -> Tuple:
        """Append a tuple given as an ``attribute -> value`` mapping."""
        label = label or self._next_label()
        if label in self._labels:
            raise RelationError(f"duplicate tuple label {label!r} in relation {self._name!r}")
        t = tuple_from_mapping(
            self._name,
            self._schema,
            mapping,
            label,
            importance=importance,
            probability=probability,
        )
        self._tuples.append(t)
        self._labels.add(label)
        self._version += 1
        return t

    def remove(self, label: str) -> Tuple:
        """Remove and return the tuple with the given label.

        The label becomes reusable (an in-place update re-adds under the same
        label).  Prefer :meth:`Database.remove_tuple
        <repro.relational.database.Database.remove_tuple>`, which also keeps
        the cached catalog's tombstone set in step; removing directly leaves
        the catalog stale and forces a full rebuild on its next use.
        """
        for idx, t in enumerate(self._tuples):
            if t.label == label:
                del self._tuples[idx]
                self._labels.discard(label)
                self._version += 1
                return t
        raise RelationError(
            f"no tuple labelled {label!r} in relation {self._name!r}"
        )

    def extend(self, rows: Iterable[Iterable[object]]) -> List[Tuple]:
        """Append many tuples given their value rows; return the created tuples."""
        return [self.add(row) for row in rows]

    @classmethod
    def from_rows(
        cls,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Iterable[object]],
        label_prefix: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from a schema and an iterable of value rows."""
        relation = cls(name, Schema(attributes), label_prefix=label_prefix)
        relation.extend(rows)
        return relation

    def tuple_by_label(self, label: str) -> Tuple:
        """Return the tuple with the given label (raises if absent)."""
        for t in self._tuples:
            if t.label == label:
                return t
        raise RelationError(f"no tuple labelled {label!r} in relation {self._name!r}")

    def total_size(self) -> int:
        """A size measure in the spirit of the paper's ``s``.

        Counts one unit per tuple plus one unit per attribute value (nulls
        included), so that schemas with more attributes weigh more.
        """
        return sum(1 + len(self._schema) for _ in self._tuples)

    def distinct_values(self, attribute: str) -> set:
        """Return the set of distinct non-null values of ``attribute``."""
        values = set()
        for t in self._tuples:
            value = t[attribute]
            if not is_null(value):
                values.add(value)
        return values

    def null_count(self) -> int:
        """Return the number of null cells in the relation."""
        return sum(1 for t in self._tuples for v in t.values if is_null(v))

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item: object) -> bool:
        return item in self._tuples

    def __repr__(self) -> str:
        return f"Relation({self._name!r}, {list(self._schema.attributes)!r}, {len(self)} tuples)"

    def to_rows(self) -> List[tuple]:
        """Return the relation contents as plain value rows (nulls as :data:`NULL`)."""
        return [t.values for t in self._tuples]

    def pretty(self, max_rows: Optional[int] = None) -> str:
        """Render the relation as an aligned text table (nulls shown as ``⊥``)."""
        headers = list(self._schema.attributes)
        rows = [
            [t.label] + ["⊥" if is_null(v) else str(v) for v in t.values]
            for t in (self._tuples if max_rows is None else self._tuples[:max_rows])
        ]
        headers = [""] + headers
        widths = [len(h) for h in headers]
        for row in rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        lines = [
            "  ".join(h.ljust(widths[idx]) for idx, h in enumerate(headers)),
            "  ".join("-" * widths[idx] for idx in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
        if max_rows is not None and len(self._tuples) > max_rows:
            lines.append(f"... ({len(self._tuples) - max_rows} more rows)")
        return "\n".join(lines)
