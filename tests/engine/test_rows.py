"""Tests for execution-engine rows."""

from repro.core.tupleset import TupleSet
from repro.engine.rows import Row
from repro.relational.nulls import NULL, is_null


class TestRow:
    def test_missing_attributes_read_as_null(self):
        row = Row({"A": 1})
        assert row["A"] == 1
        assert is_null(row["B"])
        assert row.get("B", "x") == "x"
        assert row.is_null("B") and not row.is_null("A")

    def test_none_values_become_null(self):
        row = Row({"A": None})
        assert row["A"] is NULL

    def test_values_returns_a_copy(self):
        row = Row({"A": 1})
        values = row.values
        values["A"] = 99
        assert row["A"] == 1

    def test_project_keeps_provenance(self, tourist_db):
        provenance = TupleSet.singleton(tourist_db.tuple_by_label("c1"))
        row = Row({"A": 1, "B": 2}, provenance=provenance)
        projected = row.project(["B", "C"])
        assert projected.attributes == ("B", "C")
        assert projected["B"] == 2 and projected.is_null("C")
        assert projected.provenance == provenance

    def test_equality_and_hash(self):
        assert Row({"A": 1}) == Row({"A": 1})
        assert Row({"A": 1}) != Row({"A": 2})
        assert len({Row({"A": 1}), Row({"A": 1})}) == 1

    def test_repr_mentions_provenance(self, tourist_db):
        provenance = TupleSet.singleton(tourist_db.tuple_by_label("c1"))
        assert "c1" in repr(Row({"A": 1}, provenance=provenance))
        assert "from" not in repr(Row({"A": 1}))
