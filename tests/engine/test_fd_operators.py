"""Tests for the full-disjunction physical operators."""

import pytest

from repro.core.approx import approx_full_disjunction
from repro.core.approx_join import MinJoin
from repro.core.full_disjunction import full_disjunction
from repro.core.priority import priority_incremental_fd
from repro.core.ranking import MaxRanking, SumRanking
from repro.engine import (
    ApproximateFullDisjunctionScan,
    FullDisjunctionScan,
    Limit,
    Project,
    RankedFullDisjunctionScan,
    Select,
    collect,
    explain,
)
from repro.relational.errors import RankingError
from repro.relational.nulls import is_null
from repro.workloads.generators import star_database
from repro.workloads.tourist import (
    TABLE2_TUPLE_SETS,
    noisy_tourist_database,
    noisy_tourist_similarity,
    tourist_importance,
)

from tests.conftest import labels_of


class TestFullDisjunctionScan:
    def test_produces_every_member_of_fd_as_padded_rows(self, tourist_db):
        rows = collect(FullDisjunctionScan(tourist_db))
        assert len(rows) == 6
        assert {row.provenance.labels() for row in rows} == set(TABLE2_TUPLE_SETS)
        by_labels = {row.provenance.labels(): row for row in rows}
        mount_logan = by_labels[frozenset({"c1", "s2"})]
        assert mount_logan["Site"] == "Mount Logan"
        assert is_null(mount_logan["Hotel"])

    def test_limit_only_does_the_necessary_work(self):
        database = star_database(spokes=5, tuples_per_relation=6, hub_domain=2, seed=1)
        scan = FullDisjunctionScan(database)
        plan = Limit(scan, 5)
        rows = collect(plan)
        assert len(rows) == 5
        assert all(row.provenance.is_jcc for row in rows)

    def test_select_on_padded_columns(self, tourist_db):
        plan = Select(
            FullDisjunctionScan(tourist_db), lambda row: row["Country"] == "UK"
        )
        rows = collect(plan)
        assert {row.provenance.labels() for row in rows} == {
            frozenset({"c2", "s3"}),
            frozenset({"c2", "s4"}),
        }

    def test_projection_keeps_provenance(self, tourist_db):
        plan = Project(FullDisjunctionScan(tourist_db), ["Country", "Site"])
        rows = collect(plan)
        assert all(row.attributes == ("Country", "Site") for row in rows)
        assert all(row.provenance is not None for row in rows)

    def test_execution_options_are_passed_through(self, tourist_db):
        rows = collect(
            FullDisjunctionScan(
                tourist_db,
                use_index=False,
                initialization="previous-results",
                block_size=2,
            )
        )
        assert {row.provenance.labels() for row in rows} == set(TABLE2_TUPLE_SETS)

    def test_explain_names_the_relations(self, tourist_db):
        rendered = explain(Limit(FullDisjunctionScan(tourist_db), 1))
        assert "FullDisjunctionScan(Climates, Accommodations, Sites)" in rendered


class TestRankedFullDisjunctionScan:
    def test_rows_arrive_in_rank_order_with_score_column(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        rows = collect(RankedFullDisjunctionScan(tourist_db, ranking))
        scores = [row["_score"] for row in rows]
        assert scores == sorted(scores, reverse=True)
        expected = [score for _, score in priority_incremental_fd(tourist_db, ranking)]
        assert scores == expected

    def test_limit_gives_top_k(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        rows = collect(Limit(RankedFullDisjunctionScan(tourist_db, ranking), 2))
        assert [row["_score"] for row in rows] == [4.0, 3.0]
        assert rows[0].provenance.labels() == frozenset({"c1", "a1"})

    def test_threshold_is_honoured(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        rows = collect(RankedFullDisjunctionScan(tourist_db, ranking, threshold=3.0))
        assert all(row["_score"] >= 3.0 for row in rows)
        assert len(rows) == 3

    def test_rejects_non_c_determined_ranking(self, tourist_db):
        with pytest.raises(RankingError):
            RankedFullDisjunctionScan(tourist_db, SumRanking(tourist_importance()))


class TestApproximateFullDisjunctionScan:
    def test_unranked_scan_matches_afd(self):
        database = noisy_tourist_database()
        amin = MinJoin(noisy_tourist_similarity())
        rows = collect(ApproximateFullDisjunctionScan(database, amin, 0.4))
        assert labels_of(row.provenance for row in rows) == labels_of(
            approx_full_disjunction(database, amin, 0.4)
        )
        assert all(row["_score"] >= 0.4 for row in rows)

    def test_ranked_scan_orders_by_rank(self):
        database = noisy_tourist_database()
        amin = MinJoin(noisy_tourist_similarity())
        ranking = MaxRanking(tourist_importance())
        rows = collect(
            ApproximateFullDisjunctionScan(database, amin, 0.4, ranking=ranking)
        )
        scores = [row["_score"] for row in rows]
        assert scores == sorted(scores, reverse=True)
        assert labels_of(row.provenance for row in rows) == labels_of(
            approx_full_disjunction(database, amin, 0.4)
        )

    def test_exact_fd_consistency(self, tourist_db):
        # With the exact-match similarity and τ = 1 the approximate scan
        # produces the ordinary full disjunction.
        from repro.core.approx_join import ExactMatchSimilarity

        rows = collect(
            ApproximateFullDisjunctionScan(
                tourist_db, MinJoin(ExactMatchSimilarity()), 1.0
            )
        )
        assert labels_of(row.provenance for row in rows) == labels_of(
            full_disjunction(tourist_db)
        )
