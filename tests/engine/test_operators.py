"""Tests for the generic physical operators."""

import pytest

from repro.engine.operators import (
    Limit,
    Project,
    RelationScan,
    Select,
    Sort,
    collect,
    explain,
)
from repro.relational.nulls import is_null


class TestRelationScan:
    def test_produces_one_row_per_tuple(self, tourist_db):
        rows = collect(RelationScan(tourist_db.relation("Climates")))
        assert len(rows) == 3
        assert rows[0]["Country"] == "Canada"

    def test_next_before_open_raises(self, tourist_db):
        scan = RelationScan(tourist_db.relation("Climates"))
        with pytest.raises(RuntimeError):
            scan.next()

    def test_reopen_restarts_the_scan(self, tourist_db):
        scan = RelationScan(tourist_db.relation("Climates"))
        assert len(collect(scan)) == 3
        assert len(collect(scan)) == 3

    def test_rows_produced_counter(self, tourist_db):
        scan = RelationScan(tourist_db.relation("Sites"))
        collect(scan)
        assert scan.rows_produced == 4
        scan.open()  # re-opening resets the counter
        scan.next()
        scan.next()
        assert scan.rows_produced == 2
        scan.close()


class TestSelectProjectLimitSort:
    def test_select_filters_rows(self, tourist_db):
        plan = Select(
            RelationScan(tourist_db.relation("Sites")),
            lambda row: row["Country"] == "UK",
        )
        rows = collect(plan)
        assert len(rows) == 2
        assert all(row["Country"] == "UK" for row in rows)

    def test_project_restricts_attributes(self, tourist_db):
        plan = Project(RelationScan(tourist_db.relation("Accommodations")), ["Hotel"])
        rows = collect(plan)
        assert all(row.attributes == ("Hotel",) for row in rows)

    def test_project_on_missing_attribute_gives_null(self, tourist_db):
        plan = Project(RelationScan(tourist_db.relation("Climates")), ["Hotel"])
        assert all(is_null(row["Hotel"]) for row in collect(plan))

    def test_limit_stops_the_child(self, tourist_db):
        scan = RelationScan(tourist_db.relation("Sites"))
        plan = Limit(scan, 2)
        plan.open()
        rows = [plan.next(), plan.next(), plan.next()]
        assert rows[2] is None
        # The child produced only the two rows the limit required.
        assert scan.rows_produced == 2
        plan.close()

    def test_limit_rejects_negative(self, tourist_db):
        with pytest.raises(ValueError):
            Limit(RelationScan(tourist_db.relation("Sites")), -1)

    def test_limit_zero(self, tourist_db):
        assert collect(Limit(RelationScan(tourist_db.relation("Sites")), 0)) == []

    def test_sort_orders_rows(self, tourist_db):
        plan = Sort(
            RelationScan(tourist_db.relation("Accommodations")),
            key=lambda row: str(row["Hotel"]),
        )
        hotels = [row["Hotel"] for row in collect(plan)]
        assert hotels == sorted(hotels)

    def test_sort_reverse(self, tourist_db):
        plan = Sort(
            RelationScan(tourist_db.relation("Climates")),
            key=lambda row: str(row["Country"]),
            reverse=True,
        )
        countries = [row["Country"] for row in collect(plan)]
        assert countries == sorted(countries, reverse=True)


class TestComposition:
    def test_select_project_limit_pipeline(self, tourist_db):
        plan = Limit(
            Project(
                Select(
                    RelationScan(tourist_db.relation("Sites")),
                    lambda row: row["Country"] == "Canada",
                ),
                ["Site"],
            ),
            1,
        )
        rows = collect(plan)
        assert len(rows) == 1
        assert rows[0].attributes == ("Site",)

    def test_explain_renders_the_tree(self, tourist_db):
        plan = Limit(
            Project(RelationScan(tourist_db.relation("Sites")), ["Site"]), 1
        )
        rendered = explain(plan)
        lines = rendered.splitlines()
        assert lines[0] == "Limit(1)"
        assert lines[1].strip() == "Project(Site)"
        assert lines[2].strip() == "RelationScan(Sites)"
