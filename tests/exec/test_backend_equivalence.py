"""Cross-backend equivalence: serial, batched and sharded schedules.

In the style of ``tests/core/test_tupleset_equivalence.py``: the execution
backends must be observationally identical to the serial reference on
randomized workloads — identical result *sets* everywhere, and identical
result *order* for the ordered drivers (the batched step is exactly
order-equivalent, and the sharded merge is deterministic in relation order).
"""

from __future__ import annotations

import pytest

from repro.core.approx import approx_full_disjunction
from repro.core.approx_join import ExactMatchSimilarity, MinJoin
from repro.core.full_disjunction import first_k, full_disjunction
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.priority import priority_incremental_fd
from repro.core.ranked_approx import ranked_approx_full_disjunction
from repro.core.ranking import MaxRanking
from repro.exec import (
    BACKENDS,
    AsyncBackend,
    BatchedBackend,
    ExecutionBackend,
    SerialBackend,
    ShardedBackend,
    resolve_backend,
)
from repro.workloads.generators import chain_database, random_database, star_database
from repro.workloads.tourist import tourist_database


def _workloads():
    yield "tourist", tourist_database()
    yield "chain", chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    )
    yield "star", star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=11)
    for seed in (0, 1, 2):
        yield f"random-{seed}", random_database(
            relations=3,
            attributes=5,
            arity=3,
            tuples_per_relation=4,
            domain_size=2,
            null_rate=0.25,
            seed=seed,
        )


WORKLOADS = list(_workloads())
WORKLOAD_IDS = [name for name, _ in WORKLOADS]

#: The in-process step-for-step backends: every single-run sequence must be
#: identical to serial (the async backend inherits the batched step).
STEP_BACKENDS = ("batched", "async")


def _labelled(results):
    return [ts.labels() for ts in results]


class TestResolveBackend:
    def test_none_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("batched"), BatchedBackend)
        assert isinstance(resolve_backend("sharded"), ShardedBackend)

    def test_instances_pass_through(self):
        backend = BatchedBackend()
        assert resolve_backend(backend) is backend

    def test_sharded_worker_suffix(self):
        backend = resolve_backend("sharded:5")
        assert backend.max_workers == 5

    def test_workers_argument(self):
        assert resolve_backend("sharded", workers=3).max_workers == 3
        # The suffix wins over the argument.
        assert resolve_backend("sharded:4", workers=3).max_workers == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("quantum")

    def test_async_resolves(self):
        assert isinstance(resolve_backend("async"), AsyncBackend)
        assert isinstance(resolve_backend("asyncio"), AsyncBackend)

    def test_worker_count_on_in_process_backends_is_rejected(self):
        with pytest.raises(ValueError, match="no worker count"):
            resolve_backend("batched", workers=8)
        with pytest.raises(ValueError, match="no worker count"):
            resolve_backend("serial:4")

    def test_bad_worker_suffix_raises(self):
        with pytest.raises(ValueError, match="invalid worker count"):
            resolve_backend("sharded:many")

    def test_every_advertised_backend_resolves(self):
        for name in BACKENDS:
            assert isinstance(resolve_backend(name), ExecutionBackend)


@pytest.mark.parametrize("backend", STEP_BACKENDS)
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
@pytest.mark.parametrize("use_index", [False, True], ids=["plain", "indexed"])
def test_batched_full_disjunction_is_order_identical(name, database, use_index, backend):
    serial = full_disjunction(database, use_index=use_index, backend="serial")
    batched = full_disjunction(database, use_index=use_index, backend=backend)
    assert _labelled(serial) == _labelled(batched)


@pytest.mark.parametrize("backend", STEP_BACKENDS)
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_batched_incremental_fd_pass_is_order_identical(name, database, backend):
    anchor = database.relation_names[0]
    serial = list(incremental_fd(database, anchor, use_index=True))
    batched = list(
        incremental_fd(database, anchor, use_index=True, backend=backend)
    )
    assert _labelled(serial) == _labelled(batched)


@pytest.mark.parametrize("backend", STEP_BACKENDS)
@pytest.mark.parametrize(
    "initialization", ["previous-results", "reduced-previous"]
)
def test_batched_reuse_strategies_match_serial(initialization, backend):
    database = chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    )
    serial = full_disjunction(
        database, use_index=True, initialization=initialization, backend="serial"
    )
    batched = full_disjunction(
        database, use_index=True, initialization=initialization, backend=backend
    )
    assert _labelled(serial) == _labelled(batched)


@pytest.mark.parametrize("backend", STEP_BACKENDS)
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_batched_priority_driver_is_order_identical(name, database, backend):
    ranking = MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 13))
    serial = list(priority_incremental_fd(database, ranking, use_index=True))
    batched = list(
        priority_incremental_fd(database, ranking, use_index=True, backend=backend)
    )
    assert [(ts.labels(), score) for ts, score in serial] == [
        (ts.labels(), score) for ts, score in batched
    ]


@pytest.mark.parametrize("backend", STEP_BACKENDS)
@pytest.mark.parametrize("use_index", [False, True], ids=["plain", "indexed"])
def test_batched_approx_driver_matches_serial(use_index, backend):
    database = chain_database(
        relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
    )
    amin = MinJoin(ExactMatchSimilarity())
    serial = approx_full_disjunction(database, amin, 0.6, use_index=use_index)
    batched = approx_full_disjunction(
        database, amin, 0.6, use_index=use_index, backend=backend
    )
    assert _labelled(serial) == _labelled(batched)


@pytest.mark.parametrize("backend", STEP_BACKENDS)
def test_batched_ranked_approx_driver_is_order_identical(backend):
    database = chain_database(
        relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
    )
    amin = MinJoin(ExactMatchSimilarity())
    ranking = MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 7))
    serial = list(
        ranked_approx_full_disjunction(database, amin, 0.6, ranking, use_index=True)
    )
    batched = list(
        ranked_approx_full_disjunction(
            database, amin, 0.6, ranking, use_index=True, backend=backend
        )
    )
    assert [(ts.labels(), score) for ts, score in serial] == [
        (ts.labels(), score) for ts, score in batched
    ]


def test_batched_probes_fewer_buckets_for_the_same_scans():
    """The batched schedule's whole point: fewer probes, same subset tests."""
    database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=4)
    serial_statistics, batched_statistics = FDStatistics(), FDStatistics()
    serial = full_disjunction(
        database, use_index=True, statistics=serial_statistics, backend="serial"
    )
    batched = full_disjunction(
        database, use_index=True, statistics=batched_statistics, backend="batched"
    )
    assert _labelled(serial) == _labelled(batched)
    assert (
        batched_statistics.extras["complete_sets_scanned"]
        == serial_statistics.extras["complete_sets_scanned"]
    )
    assert (
        batched_statistics.extras["complete_bucket_probes"]
        < serial_statistics.extras["complete_bucket_probes"]
    )


class TestShardedBackend:
    """Process fan-out: slower to spin up, so only the key checks run it."""

    def test_bucket_full_disjunction_matches_serial_sets(self):
        """Bucket granularity reorders within a pass but never the answer set."""
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )
        serial = full_disjunction(database, use_index=True, backend="serial")
        sharded = full_disjunction(database, use_index=True, backend="sharded:2")
        assert set(_labelled(serial)) == set(_labelled(sharded))
        assert len(serial) == len(sharded)

    def test_pass_granularity_is_order_identical_to_serial(self):
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )
        serial = full_disjunction(database, use_index=True, backend="serial")
        sharded = full_disjunction(
            database, use_index=True, backend="sharded-pass:2"
        )
        assert _labelled(serial) == _labelled(sharded)

    def test_statistics_merge_deterministically(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        first, second = FDStatistics(), FDStatistics()
        full_disjunction(database, use_index=True, statistics=first, backend="sharded:2")
        full_disjunction(database, use_index=True, statistics=second, backend="sharded:2")
        assert first.as_dict() == second.as_dict()
        serial = FDStatistics()
        full_disjunction(database, use_index=True, statistics=serial, backend="serial")
        # The produced-result count is schedule-independent: each bucket
        # range yields exactly its anchored FD_i members, once each.
        assert serial.results == first.results
        # Pass granularity replays the serial schedule exactly, so all its
        # algorithmic counters match serial.
        pass_grained = FDStatistics()
        full_disjunction(
            database, use_index=True, statistics=pass_grained,
            backend="sharded-pass:2",
        )
        assert serial.results == pass_grained.results
        assert serial.candidates_generated == pass_grained.candidates_generated

    def test_approx_passes_match_serial(self):
        """ROADMAP item: approx pass scheduling goes through the backend too."""
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        amin = MinJoin(ExactMatchSimilarity())
        serial = approx_full_disjunction(database, amin, 0.6, use_index=True)
        sharded = approx_full_disjunction(
            database, amin, 0.6, use_index=True, backend="sharded:2"
        )
        assert _labelled(serial) == _labelled(sharded)

    def test_first_k_abandons_remaining_passes(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=2)
        serial = full_disjunction(database, backend="serial")
        prefix = first_k(database, 3, backend="sharded-pass:2")
        assert _labelled(prefix) == _labelled(serial)[:3]
        # Bucket granularity streams a (differently ordered) prefix of the
        # same answer set.
        bucket_prefix = first_k(database, 3, backend="sharded:2")
        assert len(bucket_prefix) == 3
        full = {frozenset(labels) for labels in _labelled(serial)}
        assert all(frozenset(labels) in full for labels in _labelled(bucket_prefix))

    def test_results_are_interned_in_the_parent_catalog(self):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, seed=9
        )
        catalog = database.catalog()
        for tuple_set in full_disjunction(database, backend="sharded:2"):
            assert tuple_set.catalog is catalog

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ShardedBackend(max_workers=0)
        with pytest.raises(ValueError, match="worker count"):
            resolve_backend("sharded", workers=0)
        with pytest.raises(ValueError, match="worker count"):
            resolve_backend("sharded:-1")

    def test_empty_database_yields_nothing(self):
        from repro.relational.database import Database

        assert full_disjunction(Database(), backend="sharded") == []
        assert full_disjunction(Database(), backend="batched") == []
