"""The sharded backend over file-backed catalogs: zero-copy worker attach.

A database whose catalog mirror is a durable file ships ``(path,
generation)`` to its workers instead of a whole-database pickle; every
worker maps the same pages read-only.  The transport must be invisible:
ordered event streams and scan counters identical to the RAM-backed run
per backend, and identical across worker counts — including after
mutations, which restamp the file's generation in lockstep.
"""

from __future__ import annotations

import os

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.exec.sharded import (
    _database_payload,
    _mirror_reference,
    _payload_probe,
)
from repro.workloads.generators import chain_database

pytest.importorskip("numpy")

#: Worker counts the merged output must be byte-identical across.
WORKER_COUNTS = (1, 2, 4)


def _twin_databases(tmp_path):
    """Two identical databases: RAM-mirrored and file-mirrored."""

    def build():
        return chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )

    ram = build()
    ram.catalog().packed_mirror()
    mapped = build()
    mapped.save_mirror(str(tmp_path / "twin.rpmc"))
    return ram, mapped


def _stream(database, backend):
    statistics = FDStatistics()
    results = full_disjunction(
        database, use_index=True, statistics=statistics, backend=backend
    )
    return (
        [tuple(sorted(ts.labels())) for ts in results],
        statistics.extras.get("complete_sets_scanned", 0),
    )


def _mutate(database):
    victim = next(iter(database.relations[0]))
    database.remove_tuple(victim.relation_name, victim.label)
    relation = database.relations[-1]
    database.add_tuple(
        relation.name, [1 for _ in relation.schema], label="late-arrival"
    )


class TestPayloadTransport:
    def test_durable_mirror_ships_a_path_reference(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        path = str(tmp_path / "ref.rpmc")
        database.save_mirror(path)
        reference = _mirror_reference(database)
        assert reference is not None
        assert os.path.realpath(reference[0]) == os.path.realpath(path)
        assert reference[1] == tuple(database.generation)
        _, blob = _database_payload(database)
        assert not isinstance(blob, bytes)

    def test_plain_databases_still_ship_the_pickle(self):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        database.catalog().packed_mirror()  # RAM mirror: nothing to reference
        assert _mirror_reference(database) is None
        _, blob = _database_payload(database)
        assert isinstance(blob, bytes)

    def test_ephemeral_mirrors_ship_the_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP", "on")
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        database.catalog().packed_mirror()  # self-deleting temp file
        assert _mirror_reference(database) is None

    def test_mutation_restamps_the_reference(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        database.save_mirror(str(tmp_path / "stamp.rpmc"))
        before = _mirror_reference(database)[1]
        _mutate(database)
        database.catalog()
        after = _mirror_reference(database)
        assert after is not None
        assert after[1] == tuple(database.generation)
        assert after[1] != before

    def test_both_transports_materialise_in_a_worker(self, tmp_path):
        ram, mapped = _twin_databases(tmp_path)
        assert _payload_probe(_database_payload(ram)) > 0.0
        assert _payload_probe(_database_payload(mapped)) > 0.0


class TestShardedParity:
    def test_streams_identical_across_backings_and_worker_counts(self, tmp_path):
        ram, mapped = _twin_databases(tmp_path)
        for backend in ("serial", "batched"):
            assert _stream(mapped, backend) == _stream(ram, backend)
        sharded = {}
        for workers in WORKER_COUNTS:
            spec = f"sharded:{workers}"
            ram_stream = _stream(ram, spec)
            mapped_stream = _stream(mapped, spec)
            assert mapped_stream == ram_stream
            sharded[workers] = mapped_stream
        # The merged output is a pure function of the database: worker
        # count must never reorder it.
        assert sharded[1] == sharded[2] == sharded[4]

    def test_parity_survives_mutations(self, tmp_path):
        ram, mapped = _twin_databases(tmp_path)
        _stream(ram, "sharded:2"), _stream(mapped, "sharded:2")  # warm run
        _mutate(ram)
        _mutate(mapped)
        for backend in ("serial", "sharded:2"):
            assert _stream(mapped, backend) == _stream(ram, backend)

    def test_readonly_attached_parent_fans_out(self, tmp_path):
        """A parent that *attached* the file (load_database) can shard too:
        the stamped generation matches, so workers map the same file."""
        from repro.relational.catalog_file import load_database

        ram, mapped = _twin_databases(tmp_path)
        reader = load_database(str(tmp_path / "twin.rpmc"))
        reference = _mirror_reference(reader)
        assert reference is not None and reference[1] == tuple(reader.generation)
        assert _stream(reader, "sharded:2") == _stream(ram, "sharded:2")
