"""The sharded backend's in-process fallback: one warning per instance.

A streaming run pushes many passes through one backend; a host that cannot
spawn processes fails every one of them the same way, so the fallback
warning must fire once per backend instance, not once per pass.
"""

from __future__ import annotations

import warnings

import pytest

from repro.exec import ShardedBackend
from repro.exec import sharded as sharded_module
from repro.workloads.tourist import tourist_database

from tests.conftest import labels_of


@pytest.fixture
def broken_pool(monkeypatch):
    """Make every process-pool acquisition fail, forcing the fallback."""

    def explode(workers):
        raise OSError("process spawn is disabled on this host")

    monkeypatch.setattr(sharded_module, "_shared_pool", explode)


def test_fallback_warns_once_per_backend_instance(broken_pool):
    database = tourist_database()
    backend = ShardedBackend(max_workers=2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(3):
            results = list(
                backend.run_singleton_passes(database, use_index=True)
            )
            assert results  # the fallback still serves the full answer
    fallback_warnings = [
        w for w in caught if "process pool" in str(w.message)
    ]
    assert len(fallback_warnings) == 1, (
        f"expected one fallback warning, saw {len(fallback_warnings)}"
    )


def test_fresh_instances_warn_again(broken_pool):
    database = tourist_database()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        list(ShardedBackend(max_workers=2).run_singleton_passes(database))
        list(ShardedBackend(max_workers=2).run_singleton_passes(database))
    fallback_warnings = [
        w for w in caught if "process pool" in str(w.message)
    ]
    assert len(fallback_warnings) == 2


def test_fallback_results_match_serial(broken_pool):
    from repro.core.full_disjunction import full_disjunction_sets

    database = tourist_database()
    backend = ShardedBackend(max_workers=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        sharded = list(backend.run_singleton_passes(database, use_index=True))
    serial = list(full_disjunction_sets(database, use_index=True))
    assert labels_of(sharded) == labels_of(serial)
