"""Bucket-grained sharding: plans, determinism under stealing, pool lifecycle.

The bucket-grained schedule's contract is reproducibility: the emitted result
stream and the merged ``FDStatistics`` must be byte-identical across worker
counts *and* across arbitrary completion orders, because the range plan is a
pure
function of the database and the parent merges strictly in plan order.  The
suites here attack both axes — real pools at 1/2/4 workers, and an in-process
executor that completes tasks in adversarially shuffled orders — plus the
shared-pool lifecycle (resize must not leak the old pool; ``shutdown_pools``
is explicit and idempotent).
"""

from __future__ import annotations

import random

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.core.incremental import FDStatistics
from repro.exec import ShardedBackend, plan_bucket_ranges, shutdown_pools
from repro.exec import sharded as sharded_module
from repro.workloads.generators import random_database, skewed_chain_database
from repro.workloads.tourist import tourist_database

from tests.conftest import labels_of


def _keyed(results):
    return [frozenset((t.relation_name, t.label) for t in ts) for ts in results]


class _LazyFuture:
    """A future resolved by draining its pool; ``result`` triggers the drain."""

    def __init__(self, pool):
        self._pool = pool
        self._resolved = False
        self._value = None
        self._error = None

    def _resolve(self, value=None, error=None):
        self._resolved = True
        self._value = value
        self._error = error

    def result(self):
        if not self._resolved:
            self._pool._drain()
        if self._error is not None:
            raise self._error
        return self._value

    def cancel(self):
        return not self._resolved


class _ShuffledPool:
    """An in-process executor that completes tasks in a shuffled order.

    The first ``result()`` call runs *every* submitted task, in an order
    drawn from ``rng`` — an adversarial stand-in for work stealing, where
    any worker may finish any range first.  Running in-process also routes
    all tasks through one ``_WORKER_DATABASES`` cache, exercising the
    worker-side snapshot reuse path.
    """

    def __init__(self, rng):
        self._rng = rng
        self._pending = []

    def submit(self, fn, *args, **kwargs):
        future = _LazyFuture(self)
        self._pending.append((future, fn, args, kwargs))
        return future

    def _drain(self):
        tasks, self._pending = self._pending, []
        self._rng.shuffle(tasks)
        for future, fn, args, kwargs in tasks:
            try:
                future._resolve(value=fn(*args, **kwargs))
            except Exception as error:  # pragma: no cover - diagnostic path
                future._resolve(error=error)


def _workloads():
    yield "tourist", tourist_database()
    yield "skewed", skewed_chain_database(
        relations=3, tuples_per_relation=4, hot_relation=2, hot_factor=4, seed=1
    )
    for seed in (0, 1):
        yield f"random-{seed}", random_database(
            relations=3,
            attributes=5,
            arity=3,
            tuples_per_relation=4,
            domain_size=2,
            null_rate=0.25,
            seed=seed,
        )


WORKLOADS = list(_workloads())
WORKLOAD_IDS = [name for name, _ in WORKLOADS]


class TestPlanBucketRanges:
    def test_ranges_cover_every_anchor_tuple_once_in_scan_order(self):
        database = skewed_chain_database(
            relations=3, tuples_per_relation=5, hot_factor=6, seed=2
        )
        for anchor_name, ranges in plan_bucket_ranges(database):
            flattened = [label for labels in ranges for label in labels]
            assert flattened == [
                t.label for t in database.relation(anchor_name)
            ]

    def test_plan_is_a_pure_function_of_the_database(self):
        database = skewed_chain_database(relations=3, seed=4)
        assert plan_bucket_ranges(database) == plan_bucket_ranges(database)

    def test_hot_buckets_are_isolated(self):
        """A bucket heavier than the cap must not drag neighbours with it."""
        database = skewed_chain_database(
            relations=3, tuples_per_relation=6, hot_relation=2, hot_factor=8,
            domain_size=2, null_rate=0.0, seed=3,
        )
        plan = dict(plan_bucket_ranges(database))
        # The hot pass splits into strictly more ranges than any cold pass.
        assert len(plan["R2"]) > max(len(plan["R1"]), len(plan["R3"]))

    def test_empty_relations_yield_empty_plans(self):
        from repro.relational.database import Database
        from repro.relational.relation import Relation

        database = Database()
        database.add_relation(Relation("A", ["X", "Y"]))
        database.add_relation(Relation("B", ["Y", "Z"]))
        assert plan_bucket_ranges(database) == [("A", []), ("B", [])]


class TestDeterminismUnderStealing:
    @pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
    def test_streams_and_statistics_identical_across_worker_counts(
        self, name, database
    ):
        serial = {
            frozenset((t.relation_name, t.label) for t in ts)
            for ts in full_disjunction_sets(database, use_index=True)
        }
        streams, stats = {}, {}
        for workers in (1, 2, 4):
            statistics = FDStatistics()
            backend = ShardedBackend(max_workers=workers)
            results = list(
                backend.run_singleton_passes(
                    database, use_index=True, statistics=statistics
                )
            )
            streams[workers] = _keyed(results)
            stats[workers] = statistics.as_dict()
        assert streams[1] == streams[2] == streams[4]
        assert stats[1] == stats[2] == stats[4]
        assert set(streams[2]) == serial

    @pytest.mark.parametrize("shuffle_seed", [0, 1, 2, 3, 4])
    def test_adversarial_completion_orders_change_nothing(
        self, monkeypatch, shuffle_seed
    ):
        """Shuffled completion == in-order completion, stream and stats."""
        database = skewed_chain_database(
            relations=3, tuples_per_relation=4, hot_factor=4, seed=7
        )

        def run(rng):
            pool = _ShuffledPool(rng)
            monkeypatch.setattr(
                sharded_module, "_shared_pool", lambda workers: pool
            )
            statistics = FDStatistics()
            backend = ShardedBackend(max_workers=4)
            results = list(
                backend.run_singleton_passes(
                    database, use_index=True, statistics=statistics
                )
            )
            assert not backend._warned_fallback
            return _keyed(results), statistics.as_dict()

        class _InOrder:
            def shuffle(self, items):
                pass

        baseline_stream, baseline_stats = run(_InOrder())
        shuffled_stream, shuffled_stats = run(random.Random(shuffle_seed))
        assert shuffled_stream == baseline_stream
        assert shuffled_stats == baseline_stats
        serial = {
            frozenset((t.relation_name, t.label) for t in ts)
            for ts in full_disjunction_sets(database, use_index=True)
        }
        assert set(baseline_stream) == serial

    def test_bucket_fallback_still_serves_the_full_answer(self, monkeypatch):
        """The in-process fallback covers the bucket-grained path too."""
        import warnings

        def explode(workers):
            raise OSError("process spawn is disabled on this host")

        monkeypatch.setattr(sharded_module, "_shared_pool", explode)
        database = tourist_database()
        backend = ShardedBackend(max_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = list(backend.run_singleton_passes(database, use_index=True))
        serial = list(full_disjunction_sets(database, use_index=True))
        assert labels_of(results) == labels_of(serial)
        assert any("process pool" in str(w.message) for w in caught)


class TestPoolLifecycle:
    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_resized_worker_count_replaces_the_old_pool(self):
        database = tourist_database()
        small = ShardedBackend(max_workers=2)
        list(small.run_singleton_passes(database))
        assert sharded_module._POOL is not None
        first_size, first_executor = sharded_module._POOL

        large = ShardedBackend(max_workers=3)
        list(large.run_singleton_passes(database))
        assert sharded_module._POOL is not None
        second_size, second_executor = sharded_module._POOL
        assert second_executor is not first_executor
        # The old pool was shut down, not leaked: it refuses new work.
        with pytest.raises(RuntimeError):
            first_executor.submit(sorted, [1])

    def test_shutdown_pools_releases_and_is_idempotent(self):
        database = tourist_database()
        backend = ShardedBackend(max_workers=2)
        list(backend.run_singleton_passes(database))
        assert sharded_module._POOL is not None
        executor = sharded_module._POOL[1]
        shutdown_pools()
        assert sharded_module._POOL is None
        with pytest.raises(RuntimeError):
            executor.submit(sorted, [1])
        shutdown_pools()  # idempotent
        # The next run simply spawns a fresh pool.
        results = list(backend.run_singleton_passes(database))
        assert results
        assert sharded_module._POOL is not None
