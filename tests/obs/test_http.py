"""The HTTP sidecar: routing, content types, async callbacks, failures."""

from __future__ import annotations

import asyncio
import json

from repro.obs import MetricsRegistry, start_sidecar


async def _http_get(port: int, path: str, method: str = "GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        key, _, value = line.partition(b": ")
        headers[key.decode().lower()] = value.decode()
    return status, headers, body.decode("utf-8")


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_sidecar(metrics, health, scenario):
    sidecar = await start_sidecar(metrics, health)
    try:
        return await scenario(sidecar.port)
    finally:
        await sidecar.close()


class TestSidecar:
    def test_metrics_endpoint_serves_prometheus_text(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_pings_total", "Pings.").inc(4)

        async def scenario(port):
            return await _http_get(port, "/metrics")

        status, headers, body = _run(
            _with_sidecar(registry.render, lambda: {"status": "ok"}, scenario)
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert "repro_pings_total 4" in body

    def test_health_endpoint_serves_json(self):
        async def scenario(port):
            return await _http_get(port, "/health")

        status, headers, body = _run(
            _with_sidecar(lambda: "", lambda: {"status": "ok", "epoch": 3}, scenario)
        )
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"status": "ok", "epoch": 3}

    def test_async_callbacks_are_awaited(self):
        async def metrics():
            return "repro_async_total 1\n"

        async def health():
            return {"status": "ok"}

        async def scenario(port):
            return (
                await _http_get(port, "/metrics"),
                await _http_get(port, "/health"),
            )

        (m_status, _, m_body), (h_status, _, h_body) = _run(
            _with_sidecar(metrics, health, scenario)
        )
        assert m_status == 200 and "repro_async_total 1" in m_body
        assert h_status == 200 and json.loads(h_body)["status"] == "ok"

    def test_unknown_path_is_404_and_bad_method_is_405(self):
        async def scenario(port):
            return (
                await _http_get(port, "/nope"),
                await _http_get(port, "/metrics", method="POST"),
            )

        (nf_status, _, nf_body), (mm_status, _, _) = _run(
            _with_sidecar(lambda: "", lambda: {}, scenario)
        )
        assert nf_status == 404
        assert "/metrics" in nf_body
        assert mm_status == 405

    def test_callback_exception_becomes_a_500(self):
        def broken():
            raise RuntimeError("shard 1 is gone")

        async def scenario(port):
            return await _http_get(port, "/metrics")

        status, _, body = _run(_with_sidecar(broken, lambda: {}, scenario))
        assert status == 500
        assert "RuntimeError: shard 1 is gone" in body
