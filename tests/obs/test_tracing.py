"""The phase tracer: spans, the global hook, absorption, Chrome dumps."""

from __future__ import annotations

import json
import threading

from repro.obs import (
    NULL_SPAN,
    PhaseTracer,
    get_tracer,
    summarize_events,
    trace_instant,
    trace_span,
    use_tracer,
)


class TestSpans:
    def test_span_records_on_close_with_args(self):
        tracer = PhaseTracer(pid=7)
        with tracer.span("engine.pass", "engine", anchor="R1") as span:
            span.annotate(results=3)
        (event,) = tracer.events()
        assert event["name"] == "engine.pass"
        assert event["cat"] == "engine"
        assert event["ph"] == "X"
        assert event["pid"] == 7
        assert event["dur"] >= 0
        assert event["args"] == {"anchor": "R1", "results": 3}

    def test_double_close_records_once(self):
        tracer = PhaseTracer()
        span = tracer.span("once")
        span.close()
        span.close()
        assert len(tracer) == 1

    def test_instant_marker(self):
        tracer = PhaseTracer()
        tracer.instant("ingest", arrivals=2)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["args"] == {"arrivals": 2}

    def test_spans_are_thread_safe(self):
        tracer = PhaseTracer()

        def work():
            for _ in range(50):
                tracer.span("t").close()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 200


class TestGlobalHook:
    def test_trace_span_without_tracer_is_the_null_span(self):
        assert get_tracer() is None
        span = trace_span("anything", probes=9)
        assert span is NULL_SPAN
        span.annotate(x=1)
        span.close()
        trace_instant("nothing")  # must not raise

    def test_use_tracer_installs_and_restores(self):
        tracer = PhaseTracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with trace_span("inner", "cat", k=1):
                pass
            trace_instant("mark")
        assert get_tracer() is None
        names = [event["name"] for event in tracer.events()]
        assert names == ["inner", "mark"]

    def test_use_tracer_nests(self):
        outer, inner = PhaseTracer(), PhaseTracer()
        with use_tracer(outer):
            with use_tracer(inner):
                trace_span("deep").close()
            trace_span("shallow").close()
        assert [e["name"] for e in inner.events()] == ["deep"]
        assert [e["name"] for e in outer.events()] == ["shallow"]


class TestAbsorption:
    def test_absorb_restamps_pid_and_merges_args(self):
        worker = PhaseTracer(pid=111)
        worker.span("shard.range", "shard", labels=4).close()
        parent = PhaseTracer(pid=1)
        parent.absorb(worker.events(), pid=2222, range_id=5)
        (event,) = parent.events()
        assert event["pid"] == 2222
        assert event["args"] == {"labels": 4, "range_id": 5}

    def test_absorb_leaves_the_source_events_alone(self):
        worker = PhaseTracer(pid=3)
        worker.span("w").close()
        before = worker.events()
        PhaseTracer().absorb(before, pid=9, extra="x")
        assert worker.events() == before


class TestDump:
    def test_chrome_trace_shape_and_dump(self, tmp_path):
        tracer = PhaseTracer()
        tracer.span("phase", "cat").close()
        path = tracer.dump(str(tmp_path / "trace.json"))
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        (event,) = document["traceEvents"]
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)

    def test_summarize_events(self):
        tracer = PhaseTracer()
        for _ in range(3):
            tracer.span("a").close()
        tracer.span("b").close()
        tracer.instant("ignored")
        summary = summarize_events(tracer.events())
        assert summary["a"]["count"] == 3
        assert summary["b"]["count"] == 1
        assert "ignored" not in summary
        assert summary["a"]["max_us"] <= summary["a"]["total_us"]
