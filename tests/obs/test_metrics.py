"""The metrics registry: families, the off switch, snapshots, exposition.

The golden-file test pins the full Prometheus text page for a small registry
— HELP/TYPE lines, cumulative ``_bucket`` series with ``le`` labels,
``_sum``/``_count``, label escaping — so any formatting regression shows up
as a readable diff.  The hypothesis test checks the histogram invariant that
makes the cumulative encoding valid: bucket counts are monotone
non-decreasing in ``le`` and the ``+Inf`` count equals the observation count.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_METRIC,
    labeled_snapshot,
    merge_snapshots,
    render_snapshot,
)
from repro.obs.metrics import _format_value


class TestFamilies:
    def test_counter_counts_and_rejects_negatives(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("repro_things_total", "Things.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("repro_depth", "Depth.")
        gauge.set(4)
        gauge.dec()
        gauge.inc(0.5)
        assert gauge.value == 3.5

    def test_histogram_buckets_by_bisect(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("repro_lat", "Lat.", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0):
            histogram.observe(value)
        (sample,) = histogram.samples()
        # le=0.1 covers 0.05 and the boundary value 0.1; le=1.0 adds 0.5 and 1.0.
        assert sample["buckets"] == [[0.1, 2], [1.0, 4]]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(6.65)

    def test_histogram_rejects_bad_bounds(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.histogram("repro_bad", "Bad.", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_empty", "Empty.", buckets=())

    def test_labelled_children_are_cached(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("repro_ops_total", "Ops.", ("op",))
        family.labels(op="open").inc()
        family.labels(op="open").inc()
        family.labels(op="next").inc()
        assert family.labels(op="open").value == 2
        with pytest.raises(ValueError):
            family.labels(verb="open")
        with pytest.raises(ValueError):
            family.inc()  # labelled family has no solo child

    def test_family_getters_are_idempotent_but_type_strict(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("repro_shared_total", "Shared.")
        again = registry.counter("repro_shared_total", "ignored second help")
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("repro_shared_total", "Now a gauge?")

    def test_default_latency_buckets_are_log_spaced(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(50.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestOffSwitch:
    def test_disabled_registry_hands_out_the_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("repro_a_total", "A.") is NULL_METRIC
        assert registry.gauge("repro_b", "B.") is NULL_METRIC
        assert registry.histogram("repro_c", "C.") is NULL_METRIC
        assert registry.render() == ""
        assert registry.snapshot() == {"families": []}

    def test_null_metric_accepts_the_whole_api(self):
        child = NULL_METRIC.labels(op="open", shard=3)
        child.inc()
        child.dec()
        child.set(7)
        child.observe(0.2)
        assert child is NULL_METRIC

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert not MetricsRegistry().enabled
        monkeypatch.setenv("REPRO_METRICS", "on")
        assert MetricsRegistry().enabled


GOLDEN_PAGE = """\
# HELP repro_queue_depth Requests in flight.
# TYPE repro_queue_depth gauge
repro_queue_depth 2
# HELP repro_request_latency_seconds Latency by op.
# TYPE repro_request_latency_seconds histogram
repro_request_latency_seconds_bucket{op="open",le="0.01"} 1
repro_request_latency_seconds_bucket{op="open",le="0.1"} 2
repro_request_latency_seconds_bucket{op="open",le="1"} 2
repro_request_latency_seconds_bucket{op="open",le="+Inf"} 3
repro_request_latency_seconds_sum{op="open"} 2.555
repro_request_latency_seconds_count{op="open"} 3
# HELP repro_requests_total Total requests. Weird help: backslash \\\\ newline \\n done.
# TYPE repro_requests_total counter
repro_requests_total{op="open"} 2
repro_requests_total{op="say \\"hi\\"\\n\\\\now"} 1
"""


class TestExposition:
    def test_golden_page(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter(
            "repro_requests_total",
            "Total requests. Weird help: backslash \\ newline \n done.",
            ("op",),
        )
        requests.labels(op="open").inc(2)
        requests.labels(op='say "hi"\n\\now').inc()
        registry.gauge("repro_queue_depth", "Requests in flight.").set(2)
        latency = registry.histogram(
            "repro_request_latency_seconds",
            "Latency by op.",
            ("op",),
            buckets=(0.01, 0.1, 1.0),
        )
        for value in (0.005, 0.05, 2.5):
            latency.labels(op="open").observe(value)
        assert registry.render() == GOLDEN_PAGE

    def test_every_family_gets_help_and_type_lines(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_one_total", "One.")
        registry.histogram("repro_two_seconds", "Two.", buckets=(1.0,))
        page = registry.render()
        for name, kind in (
            ("repro_one_total", "counter"),
            ("repro_two_seconds", "histogram"),
        ):
            assert f"# HELP {name} " in page
            assert f"# TYPE {name} {kind}" in page

    def test_unobserved_labelless_families_render_at_zero(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_quiet_total", "Quiet.")
        assert "repro_quiet_total 0" in registry.render()

    def test_format_value(self):
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        assert _format_value(math.nan) == "NaN"


class TestSnapshots:
    def test_labeled_merge_render_round_trip(self):
        shard0 = MetricsRegistry(enabled=True)
        shard0.counter("repro_cache_hits_total", "Hits.").inc(3)
        shard1 = MetricsRegistry(enabled=True)
        shard1.counter("repro_cache_hits_total", "Hits.").inc(5)
        merged = merge_snapshots(
            [
                labeled_snapshot(shard0.snapshot(), shard=0),
                labeled_snapshot(shard1.snapshot(), shard=1),
            ]
        )
        page = render_snapshot(merged)
        assert 'repro_cache_hits_total{shard="0"} 3' in page
        assert 'repro_cache_hits_total{shard="1"} 5' in page
        # one family, two samples — not a silent sum
        assert page.count("# TYPE repro_cache_hits_total counter") == 1

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry(enabled=True)
        registry.histogram("repro_h", "H.", ("op",), buckets=(0.5,)).labels(
            op="x"
        ).observe(0.1)
        json.dumps(registry.snapshot())  # must not raise


@settings(max_examples=50, deadline=None)
@given(
    observations=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e4,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=200,
    )
)
def test_histogram_buckets_are_monotone_cumulative(observations):
    """Cumulative bucket counts never decrease and +Inf equals the count."""
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("repro_prop_seconds", "Prop.")
    for value in observations:
        histogram.observe(value)
    (sample,) = histogram.samples()
    running = [count for _, count in sample["buckets"]]
    assert running == sorted(running)
    assert sample["count"] == len(observations)
    # the largest finite bucket absorbs everything at or below its bound
    below_max = sum(1 for v in observations if v <= sample["buckets"][-1][0])
    assert running[-1] == below_max if running else True
    # the rendered page repeats the invariant, +Inf last and largest
    page = registry.render()
    bucket_lines = [
        line
        for line in page.splitlines()
        if line.startswith("repro_prop_seconds_bucket")
    ]
    rendered = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert rendered == sorted(rendered)
    assert rendered[-1] == len(observations)
