"""Tests for relations."""

import pytest

from repro.relational.errors import RelationError
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class TestRelationConstruction:
    def test_accepts_schema_or_attribute_list(self):
        by_list = Relation("R", ["A", "B"])
        by_schema = Relation("S", Schema(["A", "B"]))
        assert by_list.attributes == by_schema.attributes == ("A", "B")

    def test_rejects_empty_name(self):
        with pytest.raises(RelationError):
            Relation("", ["A"])

    def test_from_rows(self):
        relation = Relation.from_rows("R", ["A", "B"], [["x", 1], ["y", 2]])
        assert len(relation) == 2
        assert relation.tuples[0]["A"] == "x"


class TestAddingTuples:
    def test_auto_labels_follow_prefix(self):
        relation = Relation("Climates", ["Country"], label_prefix="c")
        first = relation.add(["Canada"])
        second = relation.add(["UK"])
        assert first.label == "c1" and second.label == "c2"

    def test_default_prefix_is_first_letter(self):
        relation = Relation("Sites", ["Site"])
        assert relation.add(["Louvre"]).label == "s1"

    def test_explicit_labels_and_collision(self):
        relation = Relation("R", ["A"])
        relation.add(["x"], label="t1")
        with pytest.raises(RelationError):
            relation.add(["y"], label="t1")

    def test_auto_label_skips_taken_labels(self):
        relation = Relation("R", ["A"], label_prefix="r")
        relation.add(["x"], label="r1")
        t = relation.add(["y"])
        assert t.label != "r1"

    def test_add_mapping_fills_nulls(self):
        relation = Relation("R", ["A", "B"])
        t = relation.add_mapping({"A": "x"})
        assert t["B"] is NULL

    def test_extend(self):
        relation = Relation("R", ["A"])
        created = relation.extend([["x"], ["y"], ["z"]])
        assert len(created) == 3 and len(relation) == 3

    def test_importance_and_probability_are_stored(self):
        relation = Relation("R", ["A"])
        t = relation.add(["x"], importance=2.5, probability=0.4)
        assert t.importance == 2.5 and t.probability == 0.4


class TestRelationQueries:
    @pytest.fixture
    def relation(self):
        relation = Relation("Sites", ["Country", "City"], label_prefix="s")
        relation.add(["Canada", "London"], label="s1")
        relation.add(["Canada", NULL], label="s2")
        relation.add(["UK", "London"], label="s3")
        return relation

    def test_tuple_by_label(self, relation):
        assert relation.tuple_by_label("s2")["City"] is NULL

    def test_tuple_by_label_missing_raises(self, relation):
        with pytest.raises(RelationError):
            relation.tuple_by_label("zz")

    def test_distinct_values_skip_nulls(self, relation):
        assert relation.distinct_values("City") == {"London"}
        assert relation.distinct_values("Country") == {"Canada", "UK"}

    def test_null_count(self, relation):
        assert relation.null_count() == 1

    def test_total_size_counts_tuples_and_cells(self, relation):
        # 3 tuples, 2 attributes each: 3 * (1 + 2)
        assert relation.total_size() == 9

    def test_iteration_and_membership(self, relation):
        labels = [t.label for t in relation]
        assert labels == ["s1", "s2", "s3"]
        assert relation.tuple_by_label("s1") in relation

    def test_to_rows_and_pretty(self, relation):
        rows = relation.to_rows()
        assert rows[0] == ("Canada", "London")
        rendered = relation.pretty()
        assert "⊥" in rendered and "s2" in rendered

    def test_pretty_with_max_rows(self, relation):
        rendered = relation.pretty(max_rows=1)
        assert "more rows" in rendered
