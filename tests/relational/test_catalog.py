"""Tests of the interned tuple catalog and its precomputed bitmatrices."""

from __future__ import annotations

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.workloads.generators import random_database
from repro.workloads.tourist import tourist_database


class TestIdAssignment:
    def test_dense_relation_ids_follow_database_order(self, tourist_db):
        catalog = tourist_db.catalog()
        assert [catalog.relation_name(rid) for rid in range(catalog.relation_count)] == (
            tourist_db.relation_names
        )
        for rid, name in enumerate(tourist_db.relation_names):
            assert catalog.relation_id(name) == rid

    def test_dense_tuple_ids_follow_scan_order(self, tourist_db):
        catalog = tourist_db.catalog()
        for gid, t in enumerate(tourist_db.tuples()):
            assert catalog.id_of(t) == gid
            assert catalog.tuple_at(gid) == t
        assert catalog.tuple_count == tourist_db.tuple_count()

    def test_unknown_tuple_is_not_catalogued(self, tourist_db, two_relation_db):
        catalog = tourist_db.catalog()
        foreign = next(iter(two_relation_db.tuples()))
        assert catalog.id_of(foreign) is None
        assert catalog.describe(foreign) is None
        assert catalog.mask_of([foreign]) is None

    def test_mask_roundtrip(self, tourist_db):
        catalog = tourist_db.catalog()
        members = [tourist_db.tuple_by_label(label) for label in ("c1", "a2", "s1")]
        mask = catalog.mask_of(members)
        assert catalog.tuples_of_mask(mask) == sorted(members, key=catalog.id_of)


class TestBitmatrices:
    def test_adjacency_matches_database_graph(self, tourist_db):
        catalog = tourist_db.catalog()
        for name in tourist_db.relation_names:
            rid = catalog.relation_id(name)
            adjacent = {
                catalog.relation_name(other)
                for other in range(catalog.relation_count)
                if (catalog.adjacency_mask(rid) >> other) & 1
            }
            assert adjacent == tourist_db.neighbours(name)

    def test_consistency_matrix_matches_pairwise_test(self, tourist_db):
        catalog = tourist_db.catalog()
        tuples = list(tourist_db.tuples())
        for first in tuples:
            for second in tuples:
                expected = (
                    first != second
                    and first.relation_name != second.relation_name
                    and first.join_consistent_with(second)
                )
                actual = catalog.pair_consistent(
                    catalog.id_of(first), catalog.id_of(second)
                )
                assert actual == expected, f"({first!r}, {second!r})"

    def test_consistency_matrix_on_random_database(self):
        database = random_database(
            relations=3, tuples_per_relation=4, null_rate=0.3, seed=5
        )
        catalog = database.catalog()
        tuples = list(database.tuples())
        for first in tuples:
            for second in tuples:
                expected = (
                    first != second
                    and first.relation_name != second.relation_name
                    and first.join_consistent_with(second)
                )
                assert (
                    catalog.pair_consistent(catalog.id_of(first), catalog.id_of(second))
                    == expected
                )


class TestConnectivity:
    def _mask(self, catalog, names):
        mask = 0
        for name in names:
            mask |= 1 << catalog.relation_id(name)
        return mask

    def test_relations_connected_matches_database(self, tourist_db):
        catalog = tourist_db.catalog()
        names = tourist_db.relation_names
        subsets = [
            [],
            [names[0]],
            names[:2],
            names[1:],
            names,
        ]
        for subset in subsets:
            assert catalog.relations_connected(self._mask(catalog, subset)) == (
                tourist_db.is_connected(subset)
            )

    def test_relation_component_matches_database(self, tourist_db):
        catalog = tourist_db.catalog()
        names = tourist_db.relation_names
        for start in names:
            for subset in (names, names[:2], [start]):
                expected = tourist_db.connected_component(start, subset)
                component = catalog.relation_component(
                    catalog.relation_id(start), self._mask(catalog, subset)
                )
                produced = {
                    catalog.relation_name(rid)
                    for rid in range(catalog.relation_count)
                    if (component >> rid) & 1
                }
                assert produced == expected


class TestCaching:
    def test_catalog_is_cached_per_snapshot(self, tourist_db):
        assert tourist_db.catalog() is tourist_db.catalog()

    def test_catalog_rebuilds_after_tuple_added(self, tourist_db):
        before = tourist_db.catalog()
        tourist_db.relation("Climates").add(["Peru", "arid"])
        after = tourist_db.catalog()
        assert after is not before
        assert after.tuple_count == before.tuple_count + 1

    def test_catalog_rebuilds_after_relation_added(self, tourist_db):
        before = tourist_db.catalog()
        extra = Relation("Extra", ["Country", "Visa"], label_prefix="x")
        extra.add(["France", "no"])
        tourist_db.add_relation(extra)
        after = tourist_db.catalog()
        assert after is not before
        assert after.relation_count == before.relation_count + 1

    def test_direct_construction_equals_cached(self, tourist_db):
        direct = Catalog(tourist_db)
        cached = tourist_db.catalog()
        assert direct.tuple_count == cached.tuple_count
        assert direct.relation_count == cached.relation_count
