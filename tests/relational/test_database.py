"""Tests for databases and their relation-connection graph."""

import pytest

from repro.relational.database import Database
from repro.relational.errors import DatabaseError
from repro.relational.relation import Relation


def relation(name, attributes, rows=()):
    return Relation.from_rows(name, attributes, rows)


@pytest.fixture
def chain_db():
    """R1(A,B) - R2(B,C) - R3(C,D): a path in the connection graph."""
    return Database(
        [
            relation("R1", ["A", "B"], [["a", "b"]]),
            relation("R2", ["B", "C"], [["b", "c"]]),
            relation("R3", ["C", "D"], [["c", "d"]]),
        ]
    )


class TestDatabaseConstruction:
    def test_duplicate_relation_names_rejected(self):
        database = Database([relation("R", ["A"])])
        with pytest.raises(DatabaseError):
            database.add_relation(relation("R", ["B"]))

    def test_relations_keep_insertion_order(self, chain_db):
        assert chain_db.relation_names == ["R1", "R2", "R3"]

    def test_from_relations(self):
        database = Database.from_relations(relation("X", ["A"]), relation("Y", ["A"]))
        assert len(database) == 2


class TestDatabaseAccess:
    def test_relation_by_name_and_index(self, chain_db):
        assert chain_db.relation("R2").name == "R2"
        assert chain_db.relation_at(0).name == "R1"
        assert chain_db.index_of("R3") == 2

    def test_unknown_relation_raises(self, chain_db):
        with pytest.raises(DatabaseError):
            chain_db.relation("Nope")
        with pytest.raises(DatabaseError):
            chain_db.relation_at(9)
        with pytest.raises(DatabaseError):
            chain_db.index_of("Nope")

    def test_contains_and_iteration(self, chain_db):
        assert "R1" in chain_db and "Zed" not in chain_db
        assert [r.name for r in chain_db] == ["R1", "R2", "R3"]

    def test_tuples_and_counts(self, chain_db):
        assert chain_db.tuple_count() == 3
        assert len(list(chain_db.tuples())) == 3
        assert chain_db.total_size() == 3 * (1 + 2)

    def test_tuple_by_label_returns_first_match_across_relations(self, chain_db):
        # All three relations auto-label their single tuple "r1"; the lookup
        # scans relations in database order.
        t = chain_db.tuple_by_label("r1")
        assert t.relation_name == "R1"

    def test_tuple_by_label_missing_raises(self, chain_db):
        with pytest.raises(DatabaseError):
            chain_db.tuple_by_label("nope")


class TestConnectionGraph:
    def test_adjacency_of_chain(self, chain_db):
        adjacency = chain_db.adjacency
        assert adjacency["R1"] == {"R2"}
        assert adjacency["R2"] == {"R1", "R3"}
        assert adjacency["R3"] == {"R2"}

    def test_neighbours_and_are_connected(self, chain_db):
        assert chain_db.neighbours("R2") == {"R1", "R3"}
        assert chain_db.are_connected("R1", "R2")
        assert not chain_db.are_connected("R1", "R3")

    def test_neighbours_of_unknown_relation_raises(self, chain_db):
        with pytest.raises(DatabaseError):
            chain_db.neighbours("Nope")

    def test_whole_database_connectivity(self, chain_db):
        assert chain_db.is_connected()
        chain_db.validate_connected()

    def test_subset_connectivity(self, chain_db):
        assert chain_db.is_connected({"R1", "R2"})
        assert not chain_db.is_connected({"R1", "R3"})
        assert chain_db.is_connected({"R2"})
        assert chain_db.is_connected(set())

    def test_subset_connectivity_with_unknown_name_raises(self, chain_db):
        with pytest.raises(DatabaseError):
            chain_db.is_connected({"R1", "Nope"})

    def test_disconnected_database_detected(self):
        database = Database(
            [relation("R1", ["A"]), relation("R2", ["B"])]
        )
        assert not database.is_connected()
        with pytest.raises(DatabaseError):
            database.validate_connected()

    def test_connected_component(self, chain_db):
        component = chain_db.connected_component("R1", {"R1", "R2"})
        assert component == {"R1", "R2"}
        component = chain_db.connected_component("R1", {"R1", "R3"})
        assert component == {"R1"}

    def test_schema_edges(self, chain_db):
        assert chain_db.schema_edges() == [("R1", "R2"), ("R2", "R3")]


class TestGeneration:
    """The structural version token the serving layer's cache keys on."""

    def test_stable_across_reads(self, chain_db):
        chain_db.catalog()
        token = chain_db.generation
        chain_db.catalog()
        list(chain_db.tuples())
        assert chain_db.generation == token

    def test_streamed_append_moves_only_the_tuple_count(self, chain_db):
        chain_db.catalog()
        rebuilds, epoch, relations, tuples = chain_db.generation
        chain_db.add_tuple("R1", ["x", "y"])
        assert chain_db.generation == (rebuilds, epoch, relations, tuples + 1)

    def test_adding_a_relation_moves_the_token(self, chain_db):
        chain_db.catalog()
        before = chain_db.generation
        chain_db.add_relation(relation("R4", ["D", "E"], [["d", "e"]]))
        chain_db.catalog()
        after = chain_db.generation
        assert after != before
        assert after[0] == before[0] + 1  # a full snapshot rebuild happened

    def test_out_of_band_append_moves_the_token_via_a_rebuild(self, chain_db):
        chain_db.catalog()
        before = chain_db.generation
        chain_db.relation("R1").add(["p", "q"])  # behind the database's back
        chain_db.catalog()
        after = chain_db.generation
        assert after != before
        assert after[0] == before[0] + 1
