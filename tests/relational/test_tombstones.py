"""Tombstone deletions, in-place updates, epochs and compaction."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.errors import RelationError, SchemaError
from repro.relational.relation import Relation


def _chain_db():
    database = Database()
    first = Relation("R1", ["A", "B"])
    second = Relation("R2", ["B", "C"])
    for row in range(3):
        first.add([f"a{row}", f"b{row}"])
        second.add([f"b{row}", f"c{row}"])
    database.add_relation(first)
    database.add_relation(second)
    return database


class TestRelationRemove:
    def test_remove_returns_the_tuple_and_frees_the_label(self):
        database = _chain_db()
        relation = database.relation("R1")
        removed = relation.remove("r2")
        assert removed.label == "r2"
        assert len(relation) == 2
        assert all(t.label != "r2" for t in relation)
        replacement = relation.add(["x", "y"], label="r2")
        assert replacement.label == "r2"

    def test_remove_unknown_label_raises(self):
        with pytest.raises(RelationError, match="r9"):
            _chain_db().relation("R1").remove("r9")


class TestDatabaseRemoveTuple:
    def test_tombstones_in_place_without_a_rebuild(self):
        database = _chain_db()
        catalog = database.catalog()
        rebuilds = database.catalog_rebuilds
        removed = database.remove_tuple("R1", "r2")
        assert database.catalog() is catalog
        assert database.catalog_rebuilds == rebuilds
        assert catalog.is_tombstoned(removed)
        assert catalog.tombstone_count == 1
        assert catalog.live_tuple_count == database.tuple_count() == 5
        # Ids are retired, not reclaimed: the catalog still knows the tuple.
        assert catalog.id_of(removed) is not None
        assert catalog.tuple_count == 6

    def test_epoch_bumps_only_on_non_monotone_mutations(self):
        database = _chain_db()
        database.catalog()
        assert database.epoch == 0
        database.add_tuple("R1", ["p", "q"])
        assert database.epoch == 0
        database.remove_tuple("R1", "r1")
        assert database.epoch == 1
        database.update_tuple("R2", "r1", ["bX", "cX"])
        assert database.epoch == 2

    def test_scans_never_see_a_removed_tuple(self):
        database = _chain_db()
        database.catalog()
        database.remove_tuple("R2", "r3")
        labels = [t.label for t in database.relation("R2")]
        assert labels == ["r1", "r2"]

    def test_removal_without_a_built_catalog_just_removes(self):
        database = _chain_db()
        database.remove_tuple("R1", "r1")
        catalog = database.catalog()  # first build: dead tuple never catalogued
        assert catalog.tombstone_count == 0
        assert catalog.tuple_count == 5

    def test_removal_on_a_stale_catalog_forces_a_rebuild(self):
        database = _chain_db()
        database.catalog()
        database.relation("R1").add(["z", "z"])  # behind the database's back
        database.remove_tuple("R1", "r1")
        rebuilds = database.catalog_rebuilds
        catalog = database.catalog()
        assert database.catalog_rebuilds == rebuilds + 1
        assert catalog.tombstone_count == 0

    def test_count_neutral_out_of_band_mutation_cannot_alias_the_snapshot(self):
        # Regression: remove + add behind the database's back nets the tuple
        # count to zero; the version-keyed staleness check must still rebuild.
        database = _chain_db()
        stale = database.catalog()
        removed = database.relation("R1").remove("r1")
        fresh_tuple = database.relation("R1").add(["q", "q"])
        rebuilds = database.catalog_rebuilds
        catalog = database.catalog()
        assert catalog is not stale
        assert database.catalog_rebuilds == rebuilds + 1
        assert catalog.id_of(fresh_tuple) is not None
        assert catalog.id_of(removed) is None


class TestDatabaseUpdateTuple:
    def test_update_is_tombstone_plus_append_under_the_same_label(self):
        database = _chain_db()
        catalog = database.catalog()
        old = database.relation("R1").tuple_by_label("r1")
        fresh = database.update_tuple("R1", "r1", ["aX", "bX"])
        assert database.catalog() is catalog  # maintained in place
        assert fresh.label == "r1" and fresh.values == ("aX", "bX")
        assert catalog.is_tombstoned(old)
        assert not catalog.is_tombstoned(fresh)
        assert catalog.id_of(fresh) > catalog.id_of(old)

    def test_update_preserves_importance_unless_overridden(self):
        database = Database()
        relation = Relation("R1", ["A"])
        relation.add(["x"], importance=3.0, probability=0.5)
        database.add_relation(relation)
        database.catalog()
        fresh = database.update_tuple("R1", "r1", ["y"])
        assert fresh.importance == 3.0 and fresh.probability == 0.5
        fresh = database.update_tuple("R1", "r1", ["z"], importance=7.0)
        assert fresh.importance == 7.0

    def test_noop_update_changes_nothing(self):
        database = _chain_db()
        database.catalog()
        old = database.relation("R1").tuple_by_label("r1")
        same = database.update_tuple("R1", "r1", old.values)
        assert same is old
        assert database.epoch == 0

    def test_update_back_to_original_values_re_appends_the_dead_twin(self):
        database = _chain_db()
        catalog = database.catalog()
        original = database.relation("R1").tuple_by_label("r1").values
        database.update_tuple("R1", "r1", ["aX", "bX"])
        database.update_tuple("R1", "r1", original)
        assert database.catalog() is catalog
        live = database.relation("R1").tuple_by_label("r1")
        assert live.values == original
        assert not catalog.is_tombstoned(live)
        assert database.epoch == 2

    def test_update_arity_mismatch_raises_before_mutating(self):
        database = _chain_db()
        database.catalog()
        with pytest.raises(SchemaError, match="schema has 2"):
            database.update_tuple("R1", "r1", ["only-one"])
        assert database.epoch == 0
        assert database.relation("R1").tuple_by_label("r1") is not None


class TestGenerationAndCompaction:
    def test_generation_components(self):
        database = _chain_db()
        database.catalog()
        rebuilds, epoch, relations, tuples = database.generation
        database.add_tuple("R1", ["n", "n"])
        assert database.generation == (rebuilds, epoch, relations, tuples + 1)
        database.remove_tuple("R1", "r1")
        assert database.generation == (rebuilds, epoch + 1, relations, tuples)
        database.update_tuple("R2", "r2", ["u", "u"])
        assert database.generation == (rebuilds, epoch + 2, relations, tuples)

    def test_compact_reclaims_dead_ids_with_one_rebuild(self):
        database = _chain_db()
        catalog = database.catalog()
        database.remove_tuple("R1", "r1")
        database.update_tuple("R2", "r2", ["u", "u"])
        assert catalog.tombstone_count == 2
        rebuilds = database.catalog_rebuilds
        compacted = database.compact()
        assert compacted is not catalog
        assert database.catalog_rebuilds == rebuilds + 1
        assert compacted.tombstone_count == 0
        assert compacted.tuple_count == database.tuple_count() == 5
        # Equivalent fresh build: every live tuple catalogued, none dead.
        for t in database.tuples():
            assert compacted.id_of(t) is not None

    def test_catalog_masks_partition_on_deletion(self):
        database = _chain_db()
        catalog = database.catalog()
        all_mask = catalog.live_mask
        assert catalog.dead_mask == 0
        removed = database.remove_tuple("R1", "r3")
        gid = catalog.id_of(removed)
        assert catalog.dead_mask == 1 << gid
        assert catalog.live_mask == all_mask & ~(1 << gid)

    def test_double_tombstone_raises(self):
        database = _chain_db()
        catalog = database.catalog()
        removed = database.remove_tuple("R1", "r1")
        with pytest.raises(ValueError, match="already tombstoned"):
            catalog.tombstone(removed)
