"""Tests for the relational operators (join, outerjoin, subsumption, padding)."""

import pytest

from repro.relational import operators
from repro.relational.errors import RelationError
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.core.tupleset import TupleSet
from repro.workloads.tourist import tourist_database


def rows_of(relation):
    """Set-of-rows view for order-insensitive comparisons."""
    return {t.values for t in relation}


@pytest.fixture
def left():
    return Relation.from_rows("L", ["K", "A"], [["k1", "a1"], ["k2", "a2"], [NULL, "a3"]])


@pytest.fixture
def right():
    return Relation.from_rows("R", ["K", "B"], [["k1", "b1"], ["k1", "b1b"], ["k3", "b3"]])


class TestSelectProjectDistinctUnion:
    def test_select(self, left):
        chosen = operators.select(left, lambda t: t["A"] == "a2")
        assert rows_of(chosen) == {("k2", "a2")}

    def test_project(self, left):
        projected = operators.project(left, ["A"])
        assert projected.attributes == ("A",)
        assert rows_of(projected) == {("a1",), ("a2",), ("a3",)}

    def test_distinct(self):
        relation = Relation.from_rows("D", ["A"], [["x"], ["x"], ["y"]])
        assert len(operators.distinct(relation)) == 2

    def test_union_requires_same_schema(self, left, right):
        with pytest.raises(RelationError):
            operators.union(left, right)

    def test_union_removes_duplicates(self):
        first = Relation.from_rows("U1", ["A"], [["x"], ["y"]])
        second = Relation.from_rows("U2", ["A"], [["y"], ["z"]])
        assert rows_of(operators.union(first, second)) == {("x",), ("y",), ("z",)}


class TestNaturalJoin:
    def test_matching_rows_combine(self, left, right):
        joined = operators.natural_join(left, right)
        assert joined.attributes == ("K", "A", "B")
        assert ("k1", "a1", "b1") in rows_of(joined)
        assert ("k1", "a1", "b1b") in rows_of(joined)

    def test_nulls_never_join(self, left, right):
        joined = operators.natural_join(left, right)
        assert all(not is_null(row[0]) for row in rows_of(joined))

    def test_unmatched_rows_are_dropped(self, left, right):
        joined = operators.natural_join(left, right)
        assert all(row[0] == "k1" for row in rows_of(joined))

    def test_join_without_shared_attributes_is_empty(self):
        first = Relation.from_rows("F", ["A"], [["x"]])
        second = Relation.from_rows("G", ["B"], [["y"]])
        # No shared attribute: _rows_join_consistent is vacuously true, so the
        # natural join degenerates to a cross product — the classic semantics.
        joined = operators.natural_join(first, second)
        assert rows_of(joined) == {("x", "y")}


class TestOuterjoins:
    def test_left_outerjoin_preserves_left(self, left, right):
        joined = operators.left_outerjoin(left, right)
        padded = [row for row in rows_of(joined) if is_null(row[2])]
        # k2 and the null-key row are unmatched, hence padded.
        assert len(padded) == 2
        assert len(joined) == 4  # 2 matches for k1 + 2 padded

    def test_full_outerjoin_preserves_both_sides(self, left, right):
        joined = operators.full_outerjoin(left, right)
        values = rows_of(joined)
        assert ("k2", "a2", NULL) in values
        assert ("k3", NULL, "b3") in values
        assert ("k1", "a1", "b1") in values
        # every source tuple appears in some result row
        assert len(joined) == 2 + 2 + 1  # two k1 matches, two padded left, one padded right

    def test_full_outerjoin_schema_is_union(self, left, right):
        joined = operators.full_outerjoin(left, right)
        assert joined.attributes == ("K", "A", "B")


class TestSubsumption:
    def test_row_subsumes(self):
        assert operators.row_subsumes(("a", "b"), ("a", NULL))
        assert operators.row_subsumes(("a", "b"), ("a", "b"))
        assert not operators.row_subsumes(("a", NULL), ("a", "b"))
        assert not operators.row_subsumes(("x", "b"), ("a", "b"))

    def test_row_subsumes_requires_same_length(self):
        with pytest.raises(RelationError):
            operators.row_subsumes(("a",), ("a", "b"))

    def test_remove_subsumed(self):
        relation = Relation.from_rows(
            "S",
            ["A", "B"],
            [["a", "b"], ["a", NULL], ["c", NULL], ["a", "b"]],
        )
        cleaned = operators.remove_subsumed(relation)
        assert rows_of(cleaned) == {("a", "b"), ("c", NULL)}
        assert len(cleaned) == 2  # the duplicate ("a","b") is kept once


class TestPadding:
    def test_combined_schema_order(self, left, right):
        schema = operators.combined_schema([left, right])
        assert schema.attributes == ("K", "A", "B")

    def test_pad_tuple_set_reproduces_table2_row(self):
        database = tourist_database()
        c1 = database.tuple_by_label("c1")
        s2 = database.tuple_by_label("s2")
        schema = operators.combined_schema(database.relations)
        row = operators.pad_tuple_set(TupleSet.of(c1, s2), schema)
        assert row["Country"] == "Canada"
        assert row["Climate"] == "diverse"
        assert row["Site"] == "Mount Logan"
        assert is_null(row["City"]) and is_null(row["Hotel"]) and is_null(row["Stars"])

    def test_pad_empty_tuple_set_is_all_null(self):
        schema = Schema(["A", "B"])
        row = operators.pad_tuple_set([], schema)
        assert all(is_null(v) for v in row.values())
