"""Tests for CSV loading and saving."""

import pytest

from repro.relational import csv_io
from repro.relational.errors import CSVFormatError
from repro.relational.nulls import NULL, is_null
from repro.relational.relation import Relation
from repro.workloads.tourist import tourist_database


class TestSaveAndLoadRelation:
    def test_round_trip_preserves_values_nulls_and_labels(self, tmp_path):
        relation = Relation("Sites", ["Country", "City"], label_prefix="s")
        relation.add(["Canada", NULL], label="s1")
        relation.add(["UK", "London"], label="s2")
        path = csv_io.save_relation(relation, tmp_path / "sites.csv")

        loaded = csv_io.load_relation(path)
        assert loaded.name == "sites"
        assert loaded.attributes == ("Country", "City")
        assert [t.label for t in loaded] == ["s1", "s2"]
        assert loaded.tuple_by_label("s1").is_null("City")
        assert loaded.tuple_by_label("s2")["City"] == "London"

    def test_load_without_label_column(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("A,B\nx,\ny,z\n", encoding="utf-8")
        relation = csv_io.load_relation(path, name="Plain")
        assert relation.name == "Plain"
        assert len(relation) == 2
        assert relation.tuples[0]["B"] is NULL

    def test_custom_null_token(self, tmp_path):
        path = tmp_path / "custom.csv"
        path.write_text("A,B\nx,NA\n", encoding="utf-8")
        relation = csv_io.load_relation(path, null_token="NA")
        assert relation.tuples[0].is_null("B")

    def test_save_without_labels(self, tmp_path):
        relation = Relation.from_rows("R", ["A"], [["x"]])
        path = csv_io.save_relation(relation, tmp_path / "r.csv", include_labels=False)
        assert path.read_text(encoding="utf-8").splitlines()[0] == "A"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(CSVFormatError):
            csv_io.load_relation(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\nx\n", encoding="utf-8")
        with pytest.raises(CSVFormatError):
            csv_io.load_relation(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("A,B\nx,y\n\nz,w\n", encoding="utf-8")
        assert len(csv_io.load_relation(path)) == 2


class TestSaveAndLoadDatabase:
    def test_database_round_trip(self, tmp_path):
        database = tourist_database()
        paths = csv_io.save_database(database, tmp_path / "tourist")
        assert len(paths) == 3

        reloaded = csv_io.load_database(sorted(paths))
        assert set(reloaded.relation_names) == set(database.relation_names)
        # Null cells survive the round trip (the Hilton's Stars, s2's City).
        assert reloaded.relation("Accommodations").tuple_by_label("a3").is_null("Stars")
        assert reloaded.relation("Sites").tuple_by_label("s2").is_null("City")

    def test_round_trip_preserves_full_disjunction(self, tmp_path):
        from repro.core import full_disjunction

        database = tourist_database()
        paths = csv_io.save_database(database, tmp_path / "tourist")
        reloaded = csv_io.load_database(sorted(paths))
        original = {ts.labels() for ts in full_disjunction(database)}
        recovered = {ts.labels() for ts in full_disjunction(reloaded)}
        # Values loaded from CSV are strings (Stars "4" vs 4), which does not
        # change which tuple sets are join consistent here.
        assert recovered == original
