"""Append-only catalog maintenance vs. from-scratch rebuilds.

``Database.add_tuple`` must leave the cached catalog *equivalent* to a fresh
``Catalog(database)`` after every single arrival: same relation ids, a
bijection between tuple ids, and bitmatrices that map under that bijection
(arrival order and scan order may assign different dense ids — a fresh build
numbers relation-major — so equality is checked up to the id bijection, and
literally when the orders coincide).
"""

from __future__ import annotations

import random

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.relational.catalog import Catalog
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.workloads.generators import chain_database, random_database, star_database


def _permute_mask(mask, mapping):
    permuted = 0
    while mask:
        low = mask & -mask
        permuted |= 1 << mapping[low.bit_length() - 1]
        mask ^= low
    return permuted


def assert_catalogs_equivalent(appended: Catalog, rebuilt: Catalog, database: Database):
    """The appended catalog must match a rebuild up to the tuple-id bijection."""
    assert appended.relation_count == rebuilt.relation_count
    assert appended.tuple_count == rebuilt.tuple_count == database.tuple_count()
    mapping = {}
    for t in database.tuples():
        appended_gid = appended.id_of(t)
        rebuilt_gid = rebuilt.id_of(t)
        assert appended_gid is not None and rebuilt_gid is not None
        mapping[appended_gid] = rebuilt_gid
        assert appended.relation_of_tuple(appended_gid) == rebuilt.relation_of_tuple(
            rebuilt_gid
        )
    assert sorted(mapping.values()) == list(range(rebuilt.tuple_count))
    for rid in range(appended.relation_count):
        assert appended.adjacency_mask(rid) == rebuilt.adjacency_mask(rid)
        assert _permute_mask(
            appended.relation_tuples_mask(rid), mapping
        ) == rebuilt.relation_tuples_mask(rid)
    for gid in range(appended.tuple_count):
        assert _permute_mask(
            appended.consistent_mask(gid), mapping
        ) == rebuilt.consistent_mask(mapping[gid])


def _fresh_copy(database: Database) -> Database:
    """The same contents, built from scratch (fresh catalog, fresh ids)."""
    copy = Database()
    for relation in database.relations:
        fresh = Relation(relation.name, relation.schema)
        for t in relation:
            fresh.add(t.values, label=t.label)
        copy.add_relation(fresh)
    return copy


def _arrival_pool(rng, database, count):
    """Random arrivals drawn from each relation's existing value shapes."""
    arrivals = []
    names = database.relation_names
    for _ in range(count):
        name = rng.choice(names)
        relation = database.relation(name)
        values = [
            rng.choice([None, f"v{rng.randrange(3)}"])
            for _ in relation.schema.attributes
        ]
        arrivals.append((name, values))
    return arrivals


@pytest.mark.parametrize(
    "factory,seed",
    [
        (lambda: chain_database(relations=3, tuples_per_relation=3, domain_size=3,
                                null_rate=0.2, seed=1), 10),
        (lambda: star_database(spokes=3, tuples_per_relation=3, hub_domain=2,
                               seed=2), 20),
        (lambda: random_database(relations=3, attributes=5, arity=3,
                                 tuples_per_relation=3, domain_size=2,
                                 null_rate=0.2, seed=3), 30),
    ],
    ids=["chain", "star", "random"],
)
def test_randomized_streaming_ingest_matches_rebuild(factory, seed):
    database = factory()
    rng = random.Random(seed)
    appended = database.catalog()
    assert database.catalog_rebuilds == 1
    for relation_name, values in _arrival_pool(rng, database, 12):
        database.add_tuple(relation_name, values)
        # The cached snapshot was extended, not invalidated...
        assert database.catalog() is appended
        assert database.catalog_rebuilds == 1
        # ...and is equivalent to a from-scratch rebuild after every arrival.
        assert_catalogs_equivalent(appended, Catalog(database), database)
        # The engines see identical result sets through either catalog.
        streamed = {ts.labels() for ts in full_disjunction(database, use_index=True)}
        rebuilt = {ts.labels() for ts in full_disjunction(_fresh_copy(database))}
        assert streamed == rebuilt


def test_interned_sets_survive_appends():
    database = chain_database(relations=3, tuples_per_relation=3, domain_size=2, seed=4)
    catalog = database.catalog()
    before = full_disjunction(database, use_index=True)
    masks = [(ts.id_mask, ts.relation_mask) for ts in before]
    database.add_tuple("R2", ["v0", "v1", "p_new"])
    # Appending never renumbers: masks taken before the arrival are unchanged
    # and still decode to the same tuples.
    for tuple_set, (id_mask, relation_mask) in zip(before, masks):
        assert tuple_set.id_mask == id_mask
        assert tuple_set.relation_mask == relation_mask
        assert set(catalog.tuples_of_mask(id_mask)) == set(tuple_set.tuples)


def test_adding_behind_the_databases_back_still_rebuilds():
    database = chain_database(relations=2, tuples_per_relation=3, domain_size=2, seed=5)
    first = database.catalog()
    assert database.catalog_rebuilds == 1
    # Bypassing add_tuple leaves the snapshot stale; the next catalog() call
    # notices and rebuilds, exactly as before this feature existed.
    database.relation("R1").add(["v0", "v1", "p_direct"])
    second = database.catalog()
    assert second is not first
    assert database.catalog_rebuilds == 2
    assert second.tuple_count == database.tuple_count()


def test_adding_a_relation_still_rebuilds():
    database = chain_database(relations=2, tuples_per_relation=3, domain_size=2, seed=6)
    database.catalog()
    database.add_relation(Relation("R3", ["A2", "A3"]))
    database.catalog()
    assert database.catalog_rebuilds == 2


def test_append_rejects_unknown_relation_and_duplicates():
    database = chain_database(relations=2, tuples_per_relation=2, domain_size=2, seed=7)
    catalog = database.catalog()
    existing = next(iter(database.relation("R1")))
    with pytest.raises(ValueError, match="already catalogued"):
        catalog.append_tuple(existing)
    foreign = Relation("X", ["A0"])
    stray = foreign.add(["v0"])
    with pytest.raises(KeyError):
        catalog.append_tuple(stray)
