"""The on-disk catalog mirror: format, attach, growth, and corruption.

``catalog_file.MirrorFile`` is the persistent home of the packed mirror's
word arrays.  Its contract: ``Database.save_mirror`` followed by
``load_database`` reproduces an observationally identical database (same
tuples, same masks, same FD stream); the file survives in-place mutation
and capacity-doubling growth; and any corruption — header, payload, or a
sealed body — is rejected on open rather than silently served.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.relational.catalog_file import (
    DEFAULT_MMAP_THRESHOLD,
    MirrorFile,
    MirrorFileError,
    load_database,
    mmap_threshold,
    read_snapshot_entries,
    resolve_backing,
)
from repro.relational.database import Database
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import tourist_database

np = pytest.importorskip("numpy")


def _stream(database, backend="serial"):
    statistics = FDStatistics()
    results = full_disjunction(
        database, use_index=True, statistics=statistics, backend=backend
    )
    return (
        [tuple(sorted(ts.labels())) for ts in results],
        statistics.extras.get("complete_sets_scanned", 0),
    )


def _mutate(database, rng, steps):
    for step in range(steps):
        roll = rng.random()
        live = list(database.tuples())
        if roll < 0.25 and live:
            victim = rng.choice(live)
            database.remove_tuple(victim.relation_name, victim.label)
        elif roll < 0.4 and live:
            victim = rng.choice(live)
            values = [rng.choice([1, 2, 3, None]) for _ in victim.values]
            database.update_tuple(victim.relation_name, victim.label, values)
        else:
            relation = rng.choice(database.relations)
            values = [rng.choice([1, 2, 3, None]) for _ in relation.schema]
            database.add_tuple(relation.name, values, label=f"mut{step}")


# --------------------------------------------------------------------- #
# save / load round-trip
# --------------------------------------------------------------------- #
class TestRoundTrip:
    def test_load_database_reproduces_tuples_and_masks(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "tourist.rpmc")
        assert database.save_mirror(path) == path
        clone = load_database(path)
        assert clone.relation_names == database.relation_names
        assert {
            (t.relation_name, t.label, t.values) for t in clone.tuples()
        } == {(t.relation_name, t.label, t.values) for t in database.tuples()}
        original, attached = database.catalog(), clone.catalog()
        assert attached.tuple_count == original.tuple_count
        for gid in range(original.tuple_count):
            assert attached.consistent_mask(gid) == original.consistent_mask(gid)
            assert attached.relation_of_tuple(gid) == original.relation_of_tuple(gid)
        assert attached.dead_mask == original.dead_mask

    def test_attached_database_streams_identically(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )
        path = str(tmp_path / "chain.rpmc")
        database.save_mirror(path)
        clone = load_database(path)
        assert _stream(clone) == _stream(database)
        assert _stream(clone, backend="batched") == _stream(database, backend="batched")

    def test_attached_catalog_serves_consistency_from_the_file(self, tmp_path):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=11)
        path = str(tmp_path / "star.rpmc")
        database.save_mirror(path)
        clone = load_database(path)
        catalog = clone.catalog()
        # The big-int matrix is never materialised: rows are unpacked from
        # the mapped words on demand.
        assert not isinstance(catalog._consistent, list)
        assert len(catalog._consistent) == catalog.tuple_count
        assert catalog._consistent[0] == catalog.consistent_mask(0)
        assert catalog._consistent[-1] == catalog.consistent_mask(catalog.tuple_count - 1)
        with pytest.raises(IndexError):
            catalog._consistent[catalog.tuple_count]

    def test_dead_tuples_round_trip_as_tombstones(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.1, seed=3
        )
        victim = next(iter(database.relations[0]))
        database.remove_tuple(victim.relation_name, victim.label)
        path = str(tmp_path / "dead.rpmc")
        database.save_mirror(path)
        clone = load_database(path)
        live = {(t.relation_name, t.label) for t in clone.tuples()}
        assert (victim.relation_name, victim.label) not in live
        assert clone.catalog().dead_mask == database.catalog().dead_mask
        assert _stream(clone) == _stream(database)

    def test_save_keeps_the_file_as_the_live_mirror(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=5
        )
        path = str(tmp_path / "live.rpmc")
        database.save_mirror(path)
        catalog = database.catalog()
        mirror = catalog.packed_mirror()
        assert mirror.backing == "mmap"
        assert os.path.abspath(mirror.path) == os.path.abspath(path)
        # Further ingest maintains the file in place, not a RAM copy.
        import random

        _mutate(database, random.Random(13), steps=12)
        assert catalog.packed_mirror() is mirror
        handle = MirrorFile.open(path)
        try:
            assert handle.n == catalog.tuple_count
        finally:
            handle.close()


# --------------------------------------------------------------------- #
# writable attach + growth
# --------------------------------------------------------------------- #
class TestWritableAttach:
    def test_ingest_through_capacity_doubling_round_trips(self, tmp_path):
        import random

        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=9
        )
        path = str(tmp_path / "grow.rpmc")
        database.save_mirror(path)
        before = MirrorFile.open(path)
        row_cap, word_cap = before.row_cap, before.word_cap
        before.close()

        writer = load_database(path, writable=True)
        _mutate(writer, random.Random(31), steps=150)
        writer.catalog()  # flush catalog maintenance before reopening
        assert writer.tuple_count() > row_cap  # growth genuinely happened

        clone = load_database(path)
        assert _stream(clone) == _stream(writer)
        handle = clone.catalog().packed_mirror().file
        assert handle.row_cap > row_cap or handle.word_cap > word_cap

    def test_readonly_attach_rejects_ingest(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "ro.rpmc")
        database.save_mirror(path)
        reader = load_database(path)
        relation = reader.relations[0]
        with pytest.raises(MirrorFileError, match="writable=True"):
            reader.add_tuple(
                relation.name, [None for _ in relation.schema], label="nope"
            )

    def test_two_writers_are_a_contract_violation_not_silent(self, tmp_path):
        """The single-writer contract: a second writable attach sees stale
        counts once the first writer appends — reopening after the writer is
        done is the supported flow, and it verifies."""
        database = tourist_database()
        path = str(tmp_path / "single.rpmc")
        database.save_mirror(path)
        writer = load_database(path, writable=True)
        relation = writer.relations[0]
        writer.add_tuple(relation.name, [None for _ in relation.schema], label="w1")
        reopened = load_database(path)
        assert reopened.tuple_count() == writer.tuple_count()


# --------------------------------------------------------------------- #
# integrity: seal, verify, corruption
# --------------------------------------------------------------------- #
class TestIntegrity:
    def _saved(self, tmp_path, name="f.rpmc"):
        database = tourist_database()
        path = str(tmp_path / name)
        database.save_mirror(path)
        return path

    def test_save_mirror_seals_and_the_body_verifies(self, tmp_path):
        path = self._saved(tmp_path)
        handle = MirrorFile.open(path)
        try:
            assert handle.sealed
            assert handle.verify_body()
        finally:
            handle.close()

    def test_mutation_clears_the_seal(self, tmp_path):
        path = self._saved(tmp_path)
        writer = load_database(path, writable=True)
        relation = writer.relations[0]
        writer.add_tuple(relation.name, [None for _ in relation.schema], label="x")
        handle = MirrorFile.open(path)
        try:
            assert not handle.sealed
            assert handle.verify_body()  # unsealed bodies vacuously verify
        finally:
            handle.close()

    def test_flipped_header_byte_is_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(16)
            byte = handle.read(1)
            handle.seek(16)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(MirrorFileError, match="header checksum"):
            MirrorFile.open(path)

    def test_flipped_payload_byte_is_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        handle = MirrorFile.open(path)
        offset = handle.payload_off
        handle.close()
        with open(path, "r+b") as raw:
            raw.seek(offset + 2)
            byte = raw.read(1)
            raw.seek(offset + 2)
            raw.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(MirrorFileError, match="payload checksum"):
            MirrorFile.open(path)

    def test_flipped_matrix_word_fails_seal_verification(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as raw:
            raw.seek(4100)  # inside the consistency matrix
            byte = raw.read(1)
            raw.seek(4100)
            raw.write(bytes([byte[0] ^ 0x01]))
        handle = MirrorFile.open(path)  # word sections carry no open-time CRC
        try:
            assert handle.sealed
            assert not handle.verify_body()
        finally:
            handle.close()

    def test_wrong_magic_is_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-mirror.rpmc")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 8192)
        with pytest.raises(MirrorFileError):
            MirrorFile.open(path)

    def test_truncated_file_is_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(64)
        with pytest.raises(MirrorFileError, match="truncated"):
            MirrorFile.open(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(MirrorFileError, match="cannot open"):
            MirrorFile.open(str(tmp_path / "absent.rpmc"))

    def test_unstamped_file_cannot_be_attached(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "unstamped.rpmc")
        # Catalog.save_mirror alone writes matrices but no generation stamp;
        # only Database.save_mirror (or `repro pack`) stamps.
        database.catalog().save_mirror(path)
        with pytest.raises(MirrorFileError, match="generation stamp"):
            load_database(path)

    def test_stale_generation_stamp_is_rejected(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "stale.rpmc")
        database.save_mirror(path)
        handle = MirrorFile.open(path, writable=True)
        handle.stamp_generation((9, 9, 9, 9))
        handle.close()
        with pytest.raises(MirrorFileError, match="does not match the stamped"):
            load_database(path)


# --------------------------------------------------------------------- #
# backing selection
# --------------------------------------------------------------------- #
class TestBackingSelection:
    def test_forced_on_and_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP", "on")
        assert resolve_backing(1) == "mmap"
        monkeypatch.setenv("REPRO_MMAP", "off")
        assert resolve_backing(10**9) == "ram"

    def test_threshold_decides_in_auto_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_MMAP", raising=False)
        monkeypatch.setenv("REPRO_MMAP_THRESHOLD", "100")
        assert mmap_threshold() == 100
        assert resolve_backing(99) == "ram"
        assert resolve_backing(100) == "mmap"

    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_MMAP_THRESHOLD", raising=False)
        assert mmap_threshold() == DEFAULT_MMAP_THRESHOLD

    def test_invalid_settings_warn_and_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP_THRESHOLD", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_MMAP_THRESHOLD"):
            assert mmap_threshold() == DEFAULT_MMAP_THRESHOLD
        monkeypatch.setenv("REPRO_MMAP", "sometimes")
        monkeypatch.setenv("REPRO_MMAP_THRESHOLD", str(10**9))
        with pytest.warns(RuntimeWarning, match="REPRO_MMAP"):
            assert resolve_backing(1) == "ram"

    def test_auto_selection_builds_an_ephemeral_file_mirror(self, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP", "on")
        database = tourist_database()
        catalog = database.catalog()
        mirror = catalog.packed_mirror()
        assert mirror.backing == "mmap"
        path = mirror.path
        assert os.path.exists(path)
        assert mirror.file.ephemeral
        mirror.file.close()
        assert not os.path.exists(path)  # self-deleting temp file


# --------------------------------------------------------------------- #
# snapshot by-reference tuples
# --------------------------------------------------------------------- #
class TestSnapshotReference:
    def test_file_backed_snapshot_records_a_reference(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=7
        )
        path = str(tmp_path / "snap.rpmc")
        database.save_mirror(path)
        state = database.snapshot_state()
        assert "tuples" not in state
        ref = state["tuples_ref"]
        assert os.path.abspath(ref["path"]) == os.path.abspath(path)
        assert ref["count"] == database.tuple_count()

    def test_restore_state_materialises_the_reference(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=7
        )
        database.save_mirror(str(tmp_path / "snap.rpmc"))
        state = database.snapshot_state()
        restored = Database.restore_state(state)
        assert {
            (t.relation_name, t.label, t.values) for t in restored.tuples()
        } == {(t.relation_name, t.label, t.values) for t in database.tuples()}
        assert _stream(restored) == _stream(database)

    def test_reference_prefix_survives_later_ingest(self, tmp_path):
        """The payload is append-only: a snapshot taken before more ingest
        still restores its exact prefix from the grown file."""
        import random

        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=7
        )
        database.save_mirror(str(tmp_path / "snap.rpmc"))
        state = database.snapshot_state()
        frozen = {(t.relation_name, t.label) for t in database.tuples()}
        _mutate(database, random.Random(5), steps=10)
        database.catalog()
        restored = Database.restore_state(state)
        assert {(t.relation_name, t.label) for t in restored.tuples()} == frozen

    def test_reference_to_a_missing_file_raises(self):
        with pytest.raises(MirrorFileError, match="cannot read"):
            read_snapshot_entries(
                {"path": "/nonexistent/mirror.rpmc", "count": 0,
                 "payload_length": 0, "dead_mask": "0"}
            )

    def test_reference_longer_than_the_file_raises(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "short.rpmc")
        database.save_mirror(path)
        ref = database.snapshot_state()["tuples_ref"]
        ref = dict(ref, payload_length=int(ref["payload_length"]) + 4096)
        with pytest.raises(MirrorFileError, match="payload"):
            read_snapshot_entries(ref)

    def test_ephemeral_mirrors_never_go_by_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP", "on")
        database = tourist_database()
        database.catalog().packed_mirror()  # ephemeral temp-file mirror
        state = database.snapshot_state()
        assert "tuples_ref" not in state
        assert "tuples" in state  # inline entries: the temp file may vanish


# --------------------------------------------------------------------- #
# pickling file-backed catalogs
# --------------------------------------------------------------------- #
class TestPickleReattach:
    def test_durable_mirror_reattaches_on_unpickle(self, tmp_path):
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=7
        )
        path = str(tmp_path / "pickled.rpmc")
        database.save_mirror(path)
        catalog = database.catalog()
        clone = pickle.loads(pickle.dumps(catalog))
        mirror = clone._packed_mirror
        assert mirror is not None  # no lazy rebuild: O(1) reattach
        assert mirror.backing == "mmap"
        assert os.path.abspath(mirror.path) == os.path.abspath(path)
        assert mirror.file.readonly
        for gid in range(catalog.tuple_count):
            assert clone.consistent_mask(gid) == catalog.consistent_mask(gid)

    def test_stale_path_falls_back_to_lazy_rebuild(self, tmp_path):
        database = tourist_database()
        path = str(tmp_path / "vanishing.rpmc")
        database.save_mirror(path)
        catalog = database.catalog()
        blob = pickle.dumps(catalog)
        os.unlink(path)
        clone = pickle.loads(blob)
        assert clone._packed_mirror is None
        assert clone._mirror_path is None
        # The inline matrix survived the pickle, so everything still works.
        rebuilt = clone.packed_mirror()
        assert rebuilt.n == catalog.tuple_count
