"""Tests for the null value ``⊥``."""

import pickle

from repro.relational.nulls import NULL, Null, coalesce, is_null


class TestNullSingleton:
    def test_constructor_returns_the_singleton(self):
        assert Null() is NULL

    def test_repr_is_bottom(self):
        assert repr(NULL) == "⊥"
        assert str(NULL) == "⊥"

    def test_null_is_falsy(self):
        assert not NULL
        assert bool(NULL) is False

    def test_nulls_compare_equal_to_each_other(self):
        assert NULL == Null()
        assert not (NULL != Null())

    def test_null_not_equal_to_other_values(self):
        assert NULL != 0
        assert NULL != ""
        assert NULL != "⊥"
        assert not (NULL == 0)

    def test_null_is_hashable_and_stable(self):
        assert hash(NULL) == hash(Null())
        assert len({NULL, Null()}) == 1

    def test_pickle_round_trip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestIsNull:
    def test_null_and_none_are_null(self):
        assert is_null(NULL)
        assert is_null(None)

    def test_other_values_are_not_null(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null("⊥")
        assert not is_null(False)


class TestCoalesce:
    def test_returns_value_when_not_null(self):
        assert coalesce(5, 0) == 5
        assert coalesce("", "x") == ""

    def test_returns_default_when_null(self):
        assert coalesce(NULL, "fallback") == "fallback"
        assert coalesce(None, 3) == 3
