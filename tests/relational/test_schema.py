"""Tests for relation schemas."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.schema import Schema


class TestSchemaConstruction:
    def test_preserves_attribute_order(self):
        schema = Schema(["Country", "City", "Hotel"])
        assert schema.attributes == ("Country", "City", "Hotel")

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            Schema(["A", "B", "A"])

    def test_rejects_non_string_attributes(self):
        with pytest.raises(SchemaError):
            Schema(["A", 7])

    def test_rejects_empty_attribute_name(self):
        with pytest.raises(SchemaError):
            Schema(["A", ""])


class TestSchemaAccess:
    def test_contains_and_len_and_iter(self):
        schema = Schema(["A", "B"])
        assert "A" in schema and "B" in schema and "C" not in schema
        assert len(schema) == 2
        assert list(schema) == ["A", "B"]

    def test_position(self):
        schema = Schema(["A", "B", "C"])
        assert schema.position("B") == 1

    def test_position_of_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).position("Z")

    def test_equality_and_hash(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])
        assert Schema(["A", "B"]) != Schema(["B", "A"])
        assert hash(Schema(["A", "B"])) == hash(Schema(["A", "B"]))

    def test_sorted_positions(self):
        schema = Schema(["City", "Country", "Site"])
        assert schema.sorted_positions() == {"City": 0, "Country": 1, "Site": 2}

    def test_sorted_positions_unsorted_declaration(self):
        schema = Schema(["Site", "Country", "City"])
        assert schema.sorted_positions() == {"City": 0, "Country": 1, "Site": 2}


class TestSchemaConnectivity:
    def test_shared_attributes(self):
        first = Schema(["Country", "Climate"])
        second = Schema(["Country", "City", "Hotel"])
        assert first.shared_attributes(second) == {"Country"}

    def test_connects_to(self):
        first = Schema(["Country", "Climate"])
        second = Schema(["Country", "City"])
        third = Schema(["Site", "City"])
        assert first.connects_to(second)
        assert second.connects_to(third)
        assert not first.connects_to(third)


class TestSchemaDerivation:
    def test_project_keeps_requested_order(self):
        schema = Schema(["A", "B", "C"])
        assert schema.project(["C", "A"]).attributes == ("C", "A")

    def test_project_on_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).project(["B"])

    def test_union_appends_new_attributes(self):
        first = Schema(["A", "B"])
        second = Schema(["B", "C"])
        assert first.union(second).attributes == ("A", "B", "C")
